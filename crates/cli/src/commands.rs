//! Subcommand implementations for the `imap` binary.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use imap_bench::cells::CellSpec;
use imap_bench::exec::{run_sweep, SweepCell, SweepConfig, SweepReport};
use imap_bench::falsify::{parse_fault, probe_policy, replay_scenario, ProbeConfig};
use imap_bench::matrix::run_matrix;
use imap_bench::spec::ExperimentSpec;
use imap_bench::{CellCache, VictimCache};
use imap_core::attacks::gradient::GradientAttack;
use imap_core::eval::{eval_under_attack_with, record_attack_eval, AttackEval, Attacker};
use imap_core::regularizer::{RegularizerConfig, RegularizerKind};
use imap_core::threat::PerturbationEnv;
use imap_core::{ImapConfig, ImapTrainer};
use imap_defense::{train_victim_resilient, DefenseMethod, VictimBudget};
use imap_env::{build_task, Env, EnvFactory, EnvRng, TaskId};
use imap_harness::{
    merge_ledger_files, write_rows, JobStatus, LeaseBoard, LeaseConfig, LeaseError, MergeError,
    ShardSpec, SingleStatus, StatusConfig,
};
use imap_rl::checkpoint::{self, read_checkpoint, write_checkpoint, CheckpointError, StateDict};
use imap_rl::{
    cancel_after, granted_actors, CancelToken, GaussianPolicy, PpoConfig, Progress,
    ResilienceConfig, SampleOptions, TrainConfig,
};
use imap_telemetry::{RunManifest, Telemetry};
use rand::SeedableRng;

use crate::args::{ArgError, Args};

/// Top-level CLI errors.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing / validation failed.
    Args(ArgError),
    /// An unknown subcommand or enum value.
    Unknown(String),
    /// File I/O failed.
    Io(std::io::Error),
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// A policy/checkpoint file failed to read, verify, or restore.
    Checkpoint(CheckpointError),
    /// A training/evaluation step failed.
    Nn(imap_nn::NnError),
    /// Folding per-shard ledgers failed (fingerprint mismatch, conflicting
    /// rows, missing cells, ...).
    Merge(MergeError),
    /// Talking to a shard lease board failed.
    Lease(LeaseError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Unknown(s) => write!(f, "{s}"),
            CliError::Io(e) => write!(f, "io: {e}"),
            CliError::Json(e) => write!(f, "json: {e}"),
            CliError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            CliError::Nn(e) => write!(f, "training: {e}"),
            CliError::Merge(e) => write!(f, "merge: {e}"),
            CliError::Lease(e) => write!(f, "lease: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}
impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> Self {
        CliError::Checkpoint(e)
    }
}
impl From<imap_nn::NnError> for CliError {
    fn from(e: imap_nn::NnError) -> Self {
        CliError::Nn(e)
    }
}
impl From<MergeError> for CliError {
    fn from(e: MergeError) -> Self {
        CliError::Merge(e)
    }
}
impl From<LeaseError> for CliError {
    fn from(e: LeaseError) -> Self {
        CliError::Lease(e)
    }
}

/// Parses a task name (as printed by `list-tasks`) through the registry:
/// case-insensitive, with near-miss suggestions and the valid-name list in
/// the error.
pub fn parse_task(name: &str) -> Result<TaskId, CliError> {
    TaskId::resolve(name).map_err(CliError::Unknown)
}

/// Parses a defense-method name through the registry (wire codes like
/// `atla-sa`, labels like `WocaR`; case-insensitive with suggestions).
pub fn parse_method(name: &str) -> Result<DefenseMethod, CliError> {
    DefenseMethod::resolve(name).map_err(CliError::Unknown)
}

/// Parses a regularizer short name.
pub fn parse_regularizer(name: &str) -> Result<RegularizerKind, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "sc" => Ok(RegularizerKind::StateCoverage),
        "pc" => Ok(RegularizerKind::PolicyCoverage),
        "r" => Ok(RegularizerKind::Risk),
        "d" => Ok(RegularizerKind::Divergence),
        other => Err(CliError::Unknown(format!(
            "unknown regularizer '{other}' (sc|pc|r|d)"
        ))),
    }
}

/// Loads a policy from the versioned `IMAP-CKPT` envelope (kind `policy`).
///
/// Truncated, corrupted, or wrong-kind files surface as
/// [`CliError::Checkpoint`] with the failing check named.
pub fn load_policy(path: &str) -> Result<GaussianPolicy, CliError> {
    let d = read_checkpoint(Path::new(path), "policy")?;
    let obs_dim = d.get_u64("arch.obs_dim")? as usize;
    let action_dim = d.get_u64("arch.action_dim")? as usize;
    let hidden: Vec<usize> = d
        .get_vec("arch.hidden")?
        .iter()
        .map(|&v| v as usize)
        .collect();
    // Architecture only; every parameter is overwritten from the file.
    let mut policy = GaussianPolicy::new(
        obs_dim,
        action_dim,
        &hidden,
        -0.5,
        &mut EnvRng::seed_from_u64(0),
    )?;
    checkpoint::load_policy_into(&mut policy, &d, "policy")?;
    Ok(policy)
}

/// Saves a policy as a versioned, checksummed `IMAP-CKPT` envelope
/// (atomic tmp+rename write).
pub fn save_policy(path: &str, policy: &GaussianPolicy) -> Result<(), CliError> {
    let mut d = StateDict::new();
    d.put_u64("arch.obs_dim", policy.obs_dim() as u64);
    d.put_u64("arch.action_dim", policy.action_dim() as u64);
    let layers = policy.mlp.layers();
    let hidden: Vec<f64> = layers[..layers.len() - 1]
        .iter()
        .map(|l| l.output_dim() as f64)
        .collect();
    d.put_vec("arch.hidden", hidden);
    checkpoint::put_policy(&mut d, "policy", policy);
    write_checkpoint(Path::new(path), "policy", &d)?;
    Ok(())
}

/// Assembles the [`ResilienceConfig`] from the shared
/// `--checkpoint-dir`/`--checkpoint-every`/`--resume`/`--time-limit` flags.
///
/// `--time-limit <secs>` arms a background timer that trips the same
/// cooperative [`CancelToken`] the sweep supervisor uses: the trainer
/// unwinds cleanly at the next heartbeat check (checkpoints, if enabled,
/// stay valid for `--resume`).
fn resilience_from_args(args: &Args) -> Result<ResilienceConfig, CliError> {
    let progress = match args.optional("time-limit") {
        Some(_) => {
            let secs: f64 = args.get_or("time-limit", 0.0)?;
            if secs <= 0.0 || secs.is_nan() {
                return Err(CliError::Unknown(format!(
                    "--time-limit must be a positive number of seconds, got {:?}",
                    args.optional("time-limit").unwrap_or_default()
                )));
            }
            let token = CancelToken::new();
            cancel_after(token.clone(), std::time::Duration::from_secs_f64(secs));
            Progress::supervised(token)
        }
        // The status board reads heartbeats off this handle, so it must be
        // live (never cancelled) even without a time limit.
        None if args.optional("status-interval").is_some() => {
            Progress::supervised(CancelToken::new())
        }
        None => Progress::null(),
    };
    Ok(ResilienceConfig {
        checkpoint_dir: args.optional("checkpoint-dir").map(PathBuf::from),
        checkpoint_every: args.get_or("checkpoint-every", 1usize)?,
        resume: args.has_switch("resume"),
        progress,
        ..ResilienceConfig::default()
    })
}

/// Resolves the *requested* rollout-actor count: `--actors`, falling back
/// to the `IMAP_ACTORS` environment variable, then `1`. A request above 1
/// selects actor-mode sampling; the thread count is separately clamped
/// against the shared `IMAP_MAX_PARALLEL` nested-parallelism budget
/// ([`granted_actors`]) so `--jobs × --actors` never oversubscribes the
/// host. Sampling is bitwise-identical at any granted count, so the clamp
/// only changes speed — never output bytes.
fn actors_from_args(args: &Args) -> Result<usize, CliError> {
    match args.optional("actors") {
        Some(_) => args.get_or("actors", 1usize),
        None => Ok(std::env::var("IMAP_ACTORS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1)),
    }
    .map(|requested: usize| requested.max(1))
    .map_err(CliError::from)
}

/// Builds the sweep execution policy for `bench-matrix`/`probe-policy`
/// from the recognized flags plus the `IMAP_*` environment. The flags are
/// lifted explicitly (rather than passing raw argv to the generic
/// [`SweepConfig::from_sources`] scanner) because these commands own
/// additional flags — `--spec`, `--out`, `--cache`, ... — that the scanner
/// would warn about as unrecognized.
fn sweep_from_args(args: &Args) -> Result<SweepConfig, CliError> {
    let mut cfg =
        SweepConfig::from_sources(std::iter::empty::<String>(), |key| std::env::var(key).ok());
    if args.optional("jobs").is_some() {
        let jobs: usize = args.get_or("jobs", cfg.jobs)?;
        cfg.jobs = jobs.max(1);
    }
    if args.optional("status-interval").is_some() {
        let secs: f64 = args.get_or("status-interval", cfg.status_interval.as_secs_f64())?;
        if secs >= 0.0 && !secs.is_nan() {
            cfg.status_interval = std::time::Duration::from_secs_f64(secs);
        }
    }
    if let Some(raw) = args.optional("shard") {
        cfg.shard = Some(ShardSpec::parse(raw).map_err(CliError::Unknown)?);
    }
    cfg.fail_fast = cfg.fail_fast || args.has_switch("fail-fast");
    cfg.isolate = cfg.isolate || args.has_switch("isolate");
    cfg.resume = cfg.resume || args.has_switch("resume");
    Ok(cfg)
}

/// Opens the victim/cell caches: rooted at `--cache <dir>` when given
/// (cells under `<dir>/cells`), the workspace default otherwise.
fn caches_from_args(args: &Args) -> (Arc<VictimCache>, Arc<CellCache>) {
    match args.optional("cache") {
        Some(dir) => {
            let root = PathBuf::from(dir);
            let cells = root.join("cells");
            (
                Arc::new(VictimCache::open_at(root)),
                Arc::new(CellCache::open_at(cells)),
            )
        }
        None => (Arc::new(VictimCache::open()), Arc::new(CellCache::open())),
    }
}

/// Builds the falsification config for `probe-policy` from its flags,
/// defaulting each knob to [`ProbeConfig::default`]. `--fault` is
/// validated through the registry so a typo reports the valid names.
fn probe_config_from_args(args: &Args) -> Result<ProbeConfig, CliError> {
    let defaults = ProbeConfig::default();
    Ok(ProbeConfig {
        scenarios: args.get_or("scenarios", defaults.scenarios)?,
        threshold: match args.optional("threshold") {
            Some(_) => Some(args.get_or("threshold", 0.0)?),
            None => None,
        },
        max_burn: args.get_or("burn", defaults.max_burn)?,
        max_warmup: args.get_or("warmup", defaults.max_warmup)?,
        amplitude: args.get_or("amplitude", defaults.amplitude)?,
        max_steps: match args.optional("steps") {
            Some(_) => Some(args.get_or("steps", 0usize)?),
            None => None,
        },
        fault: match args.optional("fault") {
            Some(name) => {
                parse_fault(name).map_err(CliError::Unknown)?;
                Some(name.to_string())
            }
            None => None,
        },
        fault_at: args.get_or("fault-at", defaults.fault_at)?,
    })
}

fn print_eval(label: &str, task: TaskId, eval: &AttackEval) {
    if task.is_sparse() {
        println!(
            "{label}: score {:.2} ± {:.2} (success rate {:.0}%, {} episodes)",
            eval.sparse,
            eval.sparse_std,
            100.0 * eval.success_rate,
            eval.episodes
        );
    } else {
        println!(
            "{label}: reward {:.1} ± {:.1} ({} episodes)",
            eval.victim_return, eval.victim_return_std, eval.episodes
        );
    }
}

const USAGE: &str = "imap — black-box adversarial policy learning (IMAP reproduction)

USAGE:
  imap list-tasks
  imap train-victim --task <task> [--method ppo|atla|sa|atla-sa|radial|wocar]
                    [--budget quick|full] [--seed N] [--actors N]
                    [--telemetry <dir>] [--trace] [--status-interval <secs>]
                    [--checkpoint-dir <dir>] [--checkpoint-every N] [--resume]
                    [--time-limit <secs>]
                    --out <victim.policy>
  imap attack       --task <task> --victim <victim.policy>
                    [--regularizer sc|pc|r|d] [--br] [--baseline]
                    [--iters N] [--steps N] [--seed N] [--eps E]
                    [--actors N] [--telemetry <dir>] [--trace]
                    [--status-interval <secs>]
                    [--checkpoint-dir <dir>] [--checkpoint-every N] [--resume]
                    [--time-limit <secs>]
                    --out <adversary.policy>
  imap eval         --task <task> --victim <victim.policy>
                    [--adversary <adversary.policy> | --random | --mad | --fgsm]
                    [--episodes N] [--eps E] [--seed N] [--telemetry <dir>]
                    [--trace]
  imap bench-matrix --spec <experiment.toml> --out <dir>
                    [--seed N] [--jobs N] [--cache <dir>] [--trace]
                    [--fail-fast] [--status-interval <secs>]
                    [--isolate] [--resume] [--shard i/N]
  imap probe-policy --task <task> [--victim <victim.policy>]
                    [--scenarios N] [--threshold X]
                    [--fault nan_obs|nan_reward] [--fault-at K]
                    [--burn N] [--warmup N] [--amplitude A] [--steps N]
                    [--seed N] [--out <dir>] [--jobs N] [--trace]
                    [--fail-fast] [--status-interval <secs>]
                    [--isolate] [--resume]
  imap merge-ledgers --out <merged.jsonl> --inputs <a.jsonl,b.jsonl,...>
  imap sweep-coordinate --dir <shared-dir> [--stale-secs S]
                    [--max-attempts N] [--watch-secs W]
  imap serve        --root <dir> [--addr HOST:PORT] [--tenant-cap N]
                    [--store <dir>]
  imap submit       --root <dir> --kind train|attack|eval|bench-matrix|cell
                    [--spec <experiment.toml>] [--tenant <name>]
                    [--seed N] [--jobs N] [--isolate]
                    [--mode <fault>] [--steps N] [--stall-secs S]
                    [--wait [--timeout SECS]] [--addr HOST:PORT]
  imap jobs         --root <dir> [--addr HOST:PORT]
  imap cancel       --root <dir> --id <job> [--addr HOST:PORT]
  imap shutdown     --root <dir> [--addr HOST:PORT]

`bench-matrix` runs a TOML experiment spec — an env x victim x attack grid
with optional budget overrides and a [probe] falsification stage — through
the sweep harness (sharding, isolation, resume, and the ledger all apply)
and writes one machine-readable report.json into --out. Grid names resolve
through the task/defense/attack registries, case-insensitively, with
near-miss suggestions on typos. The committed example spec
crates/bench/examples/specs/table1.toml reproduces the Table 1 grid.

`probe-policy` hunts failure episodes (NaN observations/rewards, early
termination, reward below --threshold) against a victim policy by seeded
random search over initial-state mutations of the task's reset
distribution. Every failure is recorded as a replayable (task, seed,
mutation) counterexample — and immediately replayed, byte-identically, as
a second sweep stage. --fault plants a scripted environment fault
(nan_obs | nan_reward) at step --fault-at for harness self-tests. Without
--victim a fresh seed-deterministic policy of the task's architecture is
probed.

`merge-ledgers` folds per-shard sweep ledgers into one: every input must
carry the same sweep-spec fingerprints (a mismatch refuses to merge and
exits 2), bit-identical duplicate rows dedupe, conflicting rows are a hard
error, and rows come out in canonical grid order — byte-identical to the
ledger of an uninterrupted single-host run (DESIGN.md §14).

`serve` runs the attack-evaluation daemon: a line-delimited JSON protocol
on a loopback socket (endpoint published atomically in <root>/endpoint)
accepting concurrent train/attack/eval/bench-matrix/cell jobs. Jobs
execute through the same sweep harness as `bench-matrix` — isolation,
watchdogs, retries, ledgers — against one shared content-addressed
checkpoint store, so identical work across jobs and tenants is trained
once and resolved from the store everywhere else. Each job streams live
telemetry, `state.json`, and `events.jsonl` into its own directory under
<root> for clients to tail. `--tenant-cap` bounds each tenant's
concurrently running jobs (default: the IMAP_MAX_PARALLEL budget).

`submit`/`jobs`/`cancel`/`shutdown` are the thin clients: submit one job
(optionally `--wait`-ing for the terminal state; exits nonzero unless it
lands in `done`), list every accepted job, cancel one (queued jobs cancel
immediately; running ones are cancelled cooperatively, then killed), and
drain the daemon.

`sweep-coordinate` watches a shard lease board: claimed leases whose worker
heartbeat went stale are reopened (with exponential reclaim backoff), or
parked in failed/ once the per-shard attempt cap `--max-attempts` (default
3) is exhausted. `--stale-secs` (default 30) sets the heartbeat-age cutoff.
With `--watch-secs W` it polls until the board drains or W seconds pass;
without, it makes a single reclaim pass and exits.

`--telemetry <dir>` writes manifest.json, metrics.jsonl (one JSON metric row
per line, timing rows included), and report.json (metric + timing rollup)
into <dir>, and prints a one-line wall-time summary on exit.

`--trace` additionally records every span (training iterations, sampler
actors, kernel stages) into trace.json — openable in Perfetto or
chrome://tracing — plus a spans.jsonl twin. Tracing never changes trained
bytes (DESIGN.md §12).

`--status-interval <secs>` (with `--telemetry`) snapshots live run state —
heartbeat age, beat count, wall time — into status.json at that cadence.

`--checkpoint-dir <dir>` periodically snapshots the full trainer state
(every `--checkpoint-every` iterations, default 1) as versioned,
checksummed `.ckpt` files; `--resume` restores the latest one and
continues, reproducing the uninterrupted run bitwise.

`--time-limit <secs>` cancels training cooperatively after the given
wall-clock budget (the run exits with a 'training cancelled by
supervisor' error; checkpoints written so far remain resumable).

`--actors N` (default 1, or the IMAP_ACTORS environment variable) samples
each rollout with N parallel actor threads. The request is clamped against
the IMAP_MAX_PARALLEL nested-parallelism budget; training output is
bitwise-identical at any actor count, so the clamp only changes speed.
ATLA-family victims always sample serially.
";

/// Builds the run's telemetry handle: a JSONL sink rooted at the
/// `--telemetry` directory (with span tracing when `--trace` is also
/// given), or the free disabled handle without the flag.
fn telemetry_from_args(
    args: &Args,
    variant: &str,
    task: &str,
    seed: u64,
    config: serde_json::Value,
) -> Result<Telemetry, CliError> {
    match args.optional("telemetry") {
        Some(dir) => {
            let run_id = format!("{variant}-{task}-seed{seed}");
            let manifest = RunManifest::new(&run_id, task, variant, seed).with_config(config);
            Ok(Telemetry::jsonl_opts(
                dir,
                &manifest,
                args.has_switch("trace"),
            )?)
        }
        None => Ok(Telemetry::null()),
    }
}

/// Spawns the live `status.json` writer for `--status-interval <secs>`:
/// a background thread snapshotting the run's heartbeat state into the
/// telemetry directory until dropped. `None` without the flag, without a
/// telemetry directory, or at interval 0.
fn status_from_args(
    args: &Args,
    tel: &Telemetry,
    label: &str,
    progress: &Progress,
) -> Result<Option<SingleStatus>, CliError> {
    if args.optional("status-interval").is_none() {
        return Ok(None);
    }
    let secs: f64 = args.get_or("status-interval", 2.0)?;
    if secs <= 0.0 || secs.is_nan() {
        return Ok(None);
    }
    let Some(dir) = tel.out_dir() else {
        eprintln!("warning: --status-interval needs --telemetry <dir>; status disabled");
        return Ok(None);
    };
    let cfg = StatusConfig {
        path: dir.join("status.json"),
        interval: std::time::Duration::from_secs_f64(secs),
        tty: std::io::IsTerminal::is_terminal(&std::io::stderr()),
        meta: imap_harness::StatusMeta::default(),
    };
    Ok(Some(SingleStatus::spawn(
        cfg,
        tel.run_id(),
        label,
        progress.clone(),
    )))
}

/// Flushes the sink — timing rows, `report.json`, and (with `--trace`)
/// `trace.json`/`spans.jsonl` — and prints the one-line wall-time summary.
fn finish_telemetry(tel: &Telemetry) {
    if let Some(summary) = tel.finish() {
        eprintln!("{summary}");
    }
}

/// Dispatches a parsed command line; returns the process exit code.
pub fn dispatch(args: &Args) -> Result<(), CliError> {
    match args.command() {
        Some("list-tasks") => {
            println!("{:<24} {:<18} {:>6}", "task", "kind", "eps");
            for t in TaskId::ALL {
                let s = t.spec();
                println!("{:<24} {:<18?} {:>6}", s.name, s.kind, s.eps);
            }
            Ok(())
        }
        Some("train-victim") => {
            let task = parse_task(args.required("task")?)?;
            let method_arg = args.optional("method").unwrap_or("ppo");
            let method = parse_method(method_arg)?;
            let seed: u64 = args.get_or("seed", 17)?;
            let budget_arg = args.optional("budget").unwrap_or("quick");
            let mut budget = match budget_arg {
                "full" => VictimBudget::full(),
                _ => VictimBudget::quick(),
            };
            budget.actors = actors_from_args(args)?;
            let out = args.required("out")?;
            let tel = telemetry_from_args(
                args,
                method_arg,
                task.spec().name,
                seed,
                serde_json::json!({
                    "command": "train-victim",
                    "budget": budget_arg,
                    "iterations": budget.iterations,
                    "steps_per_iter": budget.steps_per_iter,
                    "actors": budget.actors,
                }),
            )?;
            eprintln!(
                "training {} victim on {}...",
                method.name(),
                task.spec().name
            );
            let resilience = resilience_from_args(args)?;
            let _status = status_from_args(args, &tel, task.spec().name, &resilience.progress)?;
            let victim = train_victim_resilient(&tel, task, method, &budget, seed, &resilience)?;
            save_policy(out, &victim)?;
            let mut rng = EnvRng::seed_from_u64(seed ^ 0xc11);
            let eval = eval_under_attack_with(
                &tel,
                build_task(task),
                &victim,
                Attacker::None,
                task.spec().eps,
                20,
                &mut rng,
            )?;
            print_eval("clean", task, &eval);
            println!("saved victim to {out}");
            finish_telemetry(&tel);
            Ok(())
        }
        Some("attack") => {
            let task = parse_task(args.required("task")?)?;
            let victim = load_policy(args.required("victim")?)?;
            let seed: u64 = args.get_or("seed", 17)?;
            let eps: f64 = args.get_or("eps", task.spec().eps)?;
            let iters: usize = args.get_or("iters", 40)?;
            let steps: usize = args.get_or("steps", 2048)?;
            let actors = actors_from_args(args)?;
            let out = args.required("out")?;

            let baseline = args.has_switch("baseline");
            let br = args.has_switch("br");
            let kind = if baseline {
                None
            } else {
                Some(parse_regularizer(
                    args.optional("regularizer").unwrap_or("pc"),
                )?)
            };
            let variant = match kind {
                None => "sa-rl".to_string(),
                Some(k) => format!(
                    "imap-{}{}",
                    k.short_name().to_ascii_lowercase(),
                    if br { "+br" } else { "" }
                ),
            };
            let tel = telemetry_from_args(
                args,
                &variant,
                task.spec().name,
                seed,
                serde_json::json!({
                    "command": "attack",
                    "iterations": iters,
                    "steps_per_iter": steps,
                    "eps": eps,
                    "actors": actors,
                }),
            )?;
            // With `--actors > 1` the adversary samples its threat-model MDP
            // through the actor pool: each actor rebuilds the same
            // PerturbationEnv (task + frozen victim snapshot) per episode.
            let sampling = if actors > 1 {
                let factory_victim = victim.clone();
                SampleOptions {
                    actors: granted_actors(actors),
                    env_factory: Some(EnvFactory::new(move || {
                        Box::new(PerturbationEnv::new(
                            build_task(task),
                            factory_victim.clone(),
                            eps,
                        )) as Box<dyn Env>
                    })),
                    ..SampleOptions::default()
                }
            } else {
                SampleOptions::default()
            };
            let resilience = resilience_from_args(args)?;
            let _status = status_from_args(args, &tel, task.spec().name, &resilience.progress)?;
            let train = TrainConfig {
                iterations: iters,
                steps_per_iter: steps,
                hidden: vec![32, 32],
                seed,
                ppo: PpoConfig {
                    entropy_coef: 0.001,
                    ..PpoConfig::default()
                },
                telemetry: tel.clone(),
                resilience,
                sampling,
                ..TrainConfig::default()
            };
            let cfg = match kind {
                None => {
                    eprintln!("training SA-RL baseline...");
                    ImapConfig::baseline(train)
                }
                Some(kind) => {
                    let mut cfg = ImapConfig::imap(train, RegularizerConfig::new(kind));
                    if br {
                        cfg = cfg.with_br(5.0);
                    }
                    eprintln!(
                        "training IMAP-{}{}...",
                        kind.short_name(),
                        if br { "+BR" } else { "" }
                    );
                    cfg
                }
            };
            let mut env = PerturbationEnv::new(build_task(task), victim.clone(), eps);
            let outcome = ImapTrainer::new(cfg).train(&mut env, None)?;
            save_policy(out, &outcome.policy)?;
            let mut rng = EnvRng::seed_from_u64(seed ^ 0xa77);
            let eval = eval_under_attack_with(
                &tel,
                build_task(task),
                &victim,
                Attacker::Policy(&outcome.policy),
                eps,
                20,
                &mut rng,
            )?;
            print_eval("attacked", task, &eval);
            println!("saved adversary to {out}");
            finish_telemetry(&tel);
            Ok(())
        }
        Some("eval") => {
            let task = parse_task(args.required("task")?)?;
            let victim = load_policy(args.required("victim")?)?;
            let seed: u64 = args.get_or("seed", 17)?;
            let eps: f64 = args.get_or("eps", task.spec().eps)?;
            let episodes: usize = args.get_or("episodes", 50)?;
            let mut rng = EnvRng::seed_from_u64(seed ^ 0xe7);

            let variant = if args.optional("adversary").is_some() {
                "policy"
            } else if args.has_switch("random") {
                "random"
            } else if args.has_switch("mad") {
                "mad"
            } else if args.has_switch("fgsm") {
                "fgsm"
            } else {
                "none"
            };
            let tel = telemetry_from_args(
                args,
                variant,
                task.spec().name,
                seed,
                serde_json::json!({
                    "command": "eval",
                    "episodes": episodes,
                    "eps": eps,
                }),
            )?;
            let eval = if let Some(path) = args.optional("adversary") {
                let adversary = load_policy(path)?;
                eval_under_attack_with(
                    &tel,
                    build_task(task),
                    &victim,
                    Attacker::Policy(&adversary),
                    eps,
                    episodes,
                    &mut rng,
                )?
            } else if args.has_switch("random") {
                eval_under_attack_with(
                    &tel,
                    build_task(task),
                    &victim,
                    Attacker::Random,
                    eps,
                    episodes,
                    &mut rng,
                )?
            } else if args.has_switch("mad") || args.has_switch("fgsm") {
                let attack = if args.has_switch("mad") {
                    GradientAttack::mad(eps)
                } else {
                    GradientAttack::fgsm(eps)
                };
                let eval = {
                    let _t = tel.span("eval_episodes");
                    attack.evaluate(build_task(task), &victim, episodes, &mut rng)?
                };
                record_attack_eval(
                    &tel,
                    "eval",
                    &[("attacker", variant), ("mode", "gradient")],
                    &eval,
                );
                eval
            } else {
                eval_under_attack_with(
                    &tel,
                    build_task(task),
                    &victim,
                    Attacker::None,
                    eps,
                    episodes,
                    &mut rng,
                )?
            };
            print_eval("result", task, &eval);
            finish_telemetry(&tel);
            Ok(())
        }
        Some("merge-ledgers") => {
            let out = args.required("out")?;
            let inputs: Vec<PathBuf> = args
                .required("inputs")?
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| PathBuf::from(s.trim()))
                .collect();
            let rows = merge_ledger_files(&inputs)?;
            write_rows(Path::new(out), &rows)?;
            println!(
                "merged {} row(s) from {} ledger(s) into {out}",
                rows.len(),
                inputs.len()
            );
            Ok(())
        }
        Some("sweep-coordinate") => {
            let dir = args.required("dir")?;
            let stale: f64 = args.get_or("stale-secs", 30.0)?;
            let max_attempts: u32 = args.get_or("max-attempts", 3u32)?;
            let watch: f64 = args.get_or("watch-secs", 0.0)?;
            let mut cfg = LeaseConfig::new(dir, "coordinator");
            cfg.stale_after = std::time::Duration::from_secs_f64(stale.max(0.0));
            cfg.max_attempts = max_attempts;
            let board = LeaseBoard::new(cfg);
            let deadline =
                std::time::Instant::now() + std::time::Duration::from_secs_f64(watch.max(0.0));
            // Sub-staleness polling so a freshly-dead worker is noticed
            // within one cutoff period, bounded for tiny test cutoffs.
            let poll = std::time::Duration::from_secs_f64((stale / 2.0).clamp(0.05, 5.0));
            loop {
                let report = board.reclaim_stale()?;
                for r in &report.reclaimed {
                    let worker = r.worker.as_deref().unwrap_or("<unknown>");
                    if r.parked {
                        println!(
                            "parked shard {} in failed/ after {} attempt(s) (last worker {worker})",
                            r.shard, r.attempts
                        );
                    } else {
                        println!(
                            "reclaimed shard {} from stale worker {worker} (attempt {})",
                            r.shard, r.attempts
                        );
                    }
                }
                let counts = board.counts()?;
                println!(
                    "leases: {} open, {} claimed ({} live), {} done, {} failed",
                    counts.open, counts.claimed, report.live, counts.done, counts.failed
                );
                if counts.open == 0 && counts.claimed == 0 {
                    println!("board drained");
                    break;
                }
                if std::time::Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(poll);
            }
            Ok(())
        }
        Some("bench-matrix") => {
            let spec_path = args.required("spec")?;
            let text = std::fs::read_to_string(spec_path)?;
            let spec = ExperimentSpec::parse(&text)
                .map_err(|e| CliError::Unknown(format!("{spec_path}: {e}")))?;
            let out = PathBuf::from(args.required("out")?);
            std::fs::create_dir_all(&out)?;
            // The spec's own seed pins the run; otherwise `--seed`, then
            // `IMAP_SEED`, then the default 17.
            let seed = match spec.seed {
                Some(s) => s,
                None => args.get_or("seed", imap_bench::base_seed())?,
            };
            let sweep = sweep_from_args(args)?;
            let (victims, cells) = caches_from_args(args);
            let run_id = format!("bench-matrix-{}-seed{seed}", spec.name);
            let manifest = RunManifest::new(&run_id, "suite", "bench-matrix", seed).with_config(
                serde_json::json!({
                    "command": "bench-matrix",
                    "spec": spec_path,
                    "budget": spec.budget.name,
                    "fingerprint": spec.fingerprint(),
                }),
            );
            // Telemetry under a subdirectory: the sink writes its own
            // report.json rollup there, leaving `<out>/report.json` to the
            // matrix report.
            let tel =
                Telemetry::jsonl_opts(out.join("telemetry"), &manifest, args.has_switch("trace"))?;
            let mut report = SweepReport::default();
            let matrix = {
                let _t = tel.span("sweep");
                run_matrix(&tel, &spec, &sweep, seed, &victims, &cells, &mut report)
            };
            let json = serde_json::to_string(&matrix)?;
            let report_path = out.join("report.json");
            std::fs::write(&report_path, format!("{json}\n"))?;
            println!(
                "bench-matrix {} (fingerprint {}): {} attack cell(s), {} probe row(s)",
                matrix.experiment,
                matrix.fingerprint,
                matrix.rows.len(),
                matrix.probe.len(),
            );
            println!("{}", report.summary_line());
            finish_telemetry(&tel);
            if report.failed() {
                std::process::exit(report.exit_code());
            }
            Ok(())
        }
        Some("probe-policy") => {
            let task = parse_task(args.required("task")?)?;
            let name = task.spec().name;
            let seed: u64 = args.get_or("seed", 17)?;
            let victim = match args.optional("victim") {
                Some(path) => load_policy(path)?,
                None => {
                    // No checkpoint: probe a fresh (untrained) policy of
                    // the task's architecture — enough for fault hunting
                    // and smoke tests, and fully seed-deterministic.
                    let (obs, act) = task.spec().dims();
                    GaussianPolicy::new(
                        obs,
                        act,
                        &[32, 32],
                        -0.5,
                        &mut EnvRng::seed_from_u64(seed),
                    )?
                }
            };
            let cfg = probe_config_from_args(args)?;
            let sweep = sweep_from_args(args)?;
            let out = args.optional("out").map(PathBuf::from);
            let tel = match &out {
                Some(dir) => {
                    std::fs::create_dir_all(dir)?;
                    let run_id = format!("probe-policy-{name}-seed{seed}");
                    let manifest = RunManifest::new(&run_id, name, "probe-policy", seed)
                        .with_config(serde_json::json!({
                            "command": "probe-policy",
                            "scenarios": cfg.scenarios,
                            "fault": cfg.fault.clone().unwrap_or_default(),
                        }));
                    Telemetry::jsonl_opts(
                        dir.join("telemetry"),
                        &manifest,
                        args.has_switch("trace"),
                    )?
                }
                None => Telemetry::null(),
            };

            // Stage 1: the seeded scenario search, as an ordinary sweep
            // cell so `--isolate`/`--resume`/`--shard` and the ledger
            // apply unchanged.
            let mut report = SweepReport::default();
            let search = {
                let victim = victim.clone();
                let cfg = cfg.clone();
                let spec = CellSpec::probe(task, &victim, &cfg);
                SweepCell::new(
                    format!("probe {name}"),
                    &[("task", name), ("stage", "probe")],
                    seed,
                    move |ctx| {
                        probe_policy(task, &victim, &cfg, ctx.seed, &ctx.progress)
                            .map_err(|context| imap_nn::NnError::Numeric { context })
                    },
                )
                .isolated(&spec)
            };
            let statuses = run_sweep(&tel, &sweep, vec![search], &mut report, |_, _| {});
            let outcome = match statuses.into_iter().next() {
                Some(JobStatus::Ok(outcome)) => outcome,
                other => {
                    let detail = match other {
                        Some(JobStatus::Error { message, .. }) => message,
                        Some(JobStatus::Timeout { attempts }) => {
                            format!("stalled after {attempts} attempt(s)")
                        }
                        Some(JobStatus::Skipped { reason }) => format!("skipped: {reason}"),
                        _ => "no status".into(),
                    };
                    eprintln!("probe cell did not complete: {detail}");
                    finish_telemetry(&tel);
                    std::process::exit(report.exit_code().max(1));
                }
            };

            println!(
                "probe {name}: {} scenario(s), {} failure(s)",
                outcome.scenarios,
                outcome.failures.len()
            );
            for (i, cx) in outcome.failures.iter().enumerate() {
                println!(
                    "counterexample {}: seed={:016x} failure={} steps={} checksum={}",
                    i + 1,
                    cx.seed,
                    cx.failure,
                    cx.steps,
                    cx.checksum
                );
            }

            // Stage 2: replay every counterexample from its (task, seed,
            // mutation) row — the cell seed is the scenario seed, so a
            // correct replay reproduces the recorded failure byte for
            // byte.
            let mut mismatches = 0usize;
            if !outcome.failures.is_empty() {
                let replay_cells: Vec<_> = outcome
                    .failures
                    .iter()
                    .enumerate()
                    .map(|(i, cx)| {
                        let victim_c = victim.clone();
                        let cfg_c = cfg.clone();
                        let mutation = cx.mutation;
                        let spec = CellSpec::probe_replay(&victim, &cfg, cx);
                        SweepCell::new(
                            format!("replay {} {name}", i + 1),
                            &[("task", name), ("stage", "replay")],
                            cx.seed,
                            move |ctx| {
                                replay_scenario(
                                    task,
                                    &victim_c,
                                    &cfg_c,
                                    ctx.seed,
                                    &mutation,
                                    &ctx.progress,
                                )
                                .map_err(|context| imap_nn::NnError::Numeric { context })
                            },
                        )
                        .isolated(&spec)
                    })
                    .collect();
                let replays = run_sweep(&tel, &sweep, replay_cells, &mut report, |_, _| {});
                for (i, (cx, status)) in outcome.failures.iter().zip(&replays).enumerate() {
                    match status.ok() {
                        Some(replayed) => {
                            let identical =
                                serde_json::to_string(replayed)? == serde_json::to_string(cx)?;
                            if identical {
                                println!(
                                    "replay {}: checksum={} byte-identical",
                                    i + 1,
                                    replayed.checksum
                                );
                            } else {
                                mismatches += 1;
                                println!(
                                    "replay {}: MISMATCH (recorded checksum {}, replayed {})",
                                    i + 1,
                                    cx.checksum,
                                    replayed.checksum
                                );
                            }
                        }
                        None => {
                            mismatches += 1;
                            println!("replay {}: did not complete ({})", i + 1, status.name());
                        }
                    }
                }
            }

            if let Some(dir) = &out {
                let json = serde_json::to_string(&outcome)?;
                std::fs::write(dir.join("probe.json"), format!("{json}\n"))?;
            }
            println!("{}", report.summary_line());
            finish_telemetry(&tel);
            if report.failed() || mismatches > 0 {
                std::process::exit(report.exit_code().max(1));
            }
            // A probe that *found* counterexamples is a failing check by
            // default, so CI gates on it without parsing the output;
            // `--allow-findings` opts back into exit 0 for exploratory
            // runs that expect (and archive) findings.
            if !outcome.failures.is_empty() && !args.has_switch("allow-findings") {
                eprintln!(
                    "probe-policy: {} counterexample(s) found (pass --allow-findings to exit 0)",
                    outcome.failures.len()
                );
                std::process::exit(1);
            }
            Ok(())
        }
        Some("serve") => crate::service::cmd_serve(args),
        Some("submit") => crate::service::cmd_submit(args),
        Some("jobs") => crate::service::cmd_jobs(args),
        Some("cancel") => crate::service::cmd_cancel(args),
        Some("shutdown") => crate::service::cmd_shutdown(args),
        Some(other) => Err(CliError::Unknown(format!(
            "unknown command '{other}'\n\n{USAGE}"
        ))),
        None => Err(CliError::Unknown(USAGE.to_string())),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use imap_defense::train_victim;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn policy_file_roundtrips_bitwise() {
        let dir = std::env::temp_dir().join("imap-cli-policy-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.policy");
        let mut policy =
            GaussianPolicy::new(5, 3, &[8, 4], -0.5, &mut EnvRng::seed_from_u64(2)).unwrap();
        policy.norm.update(&[0.3, -0.1, 0.0, 1.0, 2.0]);
        policy.norm.freeze();
        save_policy(path.to_str().unwrap(), &policy).unwrap();
        let loaded = load_policy(path.to_str().unwrap()).unwrap();
        assert_eq!(policy.params(), loaded.params());
        assert!(loaded.norm.is_frozen());
        assert_eq!(policy.norm.mean_raw(), loaded.norm.mean_raw());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_policy_file_is_a_checkpoint_error() {
        let dir = std::env::temp_dir().join("imap-cli-policy-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Garbage content.
        let garbage = dir.join("garbage.policy");
        std::fs::write(&garbage, "not a checkpoint at all\n").unwrap();
        let err = load_policy(garbage.to_str().unwrap()).unwrap_err();
        assert!(
            matches!(err, CliError::Checkpoint(_)),
            "garbage file must surface as a checkpoint error, got: {err}"
        );

        // Truncation breaks the length/checksum validation.
        let path = dir.join("p.policy");
        let policy = GaussianPolicy::new(5, 3, &[8], -0.5, &mut EnvRng::seed_from_u64(3)).unwrap();
        save_policy(path.to_str().unwrap(), &policy).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = load_policy(path.to_str().unwrap()).unwrap_err();
        assert!(
            matches!(err, CliError::Checkpoint(_)),
            "truncated file must surface as a checkpoint error, got: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn task_parsing_is_case_insensitive() {
        assert_eq!(parse_task("hopper").unwrap(), TaskId::Hopper);
        assert_eq!(
            parse_task("sparsehumanoidstandup").unwrap(),
            TaskId::SparseHumanoidStandup
        );
        assert!(parse_task("nope").is_err());
    }

    #[test]
    fn method_and_regularizer_parsing() {
        assert_eq!(parse_method("WocaR").unwrap(), DefenseMethod::Wocar);
        assert_eq!(parse_method("atla-sa").unwrap(), DefenseMethod::AtlaSa);
        assert_eq!(
            parse_regularizer("PC").unwrap(),
            RegularizerKind::PolicyCoverage
        );
        assert!(parse_regularizer("xyz").is_err());
    }

    #[test]
    fn registry_parsing_suggests_near_misses() {
        let e = parse_task("Hoper").unwrap_err();
        assert!(e.to_string().contains("Hopper"), "no suggestion in: {e}");
        let e = parse_method("atla-s").unwrap_err();
        assert!(e.to_string().contains("atla-sa"), "no suggestion in: {e}");
    }

    /// End-to-end `probe-policy` in-process: the planted fault is found,
    /// recorded as counterexamples, replayed byte-identically (a mismatch
    /// or failed cell would `exit` nonzero instead of returning), and the
    /// machine-readable artifacts land in `--out`.
    #[test]
    fn probe_policy_finds_and_replays_planted_fault_in_process() {
        let dir = std::env::temp_dir().join(format!("imap-cli-probe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dispatch(&parse(&format!(
            "probe-policy --task Hopper --scenarios 2 --warmup 0 --steps 10 \
             --fault nan_obs --fault-at 2 --seed 5 --jobs 1 --status-interval 0 \
             --allow-findings --out {}",
            dir.display()
        )))
        .unwrap();
        let probe = std::fs::read_to_string(dir.join("probe.json")).unwrap();
        assert!(probe.contains("nan_observation"), "probe.json: {probe}");
        assert!(
            dir.join("telemetry").join("ledger.jsonl").exists(),
            "probe stages commit to the sweep ledger"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// End-to-end `bench-matrix` in-process over a tiny overridden-budget
    /// spec: the grid runs and the matrix report lands at
    /// `<out>/report.json` with one row per (pair, attack) cell.
    #[test]
    fn bench_matrix_runs_tiny_spec_in_process() {
        let dir = std::env::temp_dir().join(format!("imap-cli-matrix-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("tiny.toml");
        std::fs::write(
            &spec,
            concat!(
                "[experiment]\nname = \"tiny\"\nseed = 11\n",
                "[grid]\nenvs = [\"Hopper\"]\nvictims = [\"ppo\"]\n",
                "attacks = [\"no-attack\", \"random\"]\n",
                "[budget]\nvictim_iterations = 1\nvictim_steps_per_iter = 128\n",
                "victim_hidden = [8]\nattack_iters = 1\nattack_steps = 128\n",
                "eval_episodes = 2\n",
            ),
        )
        .unwrap();
        let out = dir.join("out");
        let cache = dir.join("cache");
        dispatch(&parse(&format!(
            "bench-matrix --spec {} --out {} --cache {} --jobs 1 --status-interval 0",
            spec.display(),
            out.display(),
            cache.display()
        )))
        .unwrap();
        let report = std::fs::read_to_string(out.join("report.json")).unwrap();
        assert!(report.contains("tiny"), "report.json: {report}");
        assert!(report.contains("no-attack") && report.contains("random"));
        assert!(out.join("telemetry").join("ledger.jsonl").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn actors_flag_resolves_requests_and_rejects_garbage() {
        assert_eq!(actors_from_args(&parse("attack --actors 4")).unwrap(), 4);
        assert_eq!(actors_from_args(&parse("attack --actors 0")).unwrap(), 1);
        // Without the flag (and whatever IMAP_ACTORS says) at least the
        // serial default must come back.
        assert!(actors_from_args(&parse("attack")).unwrap() >= 1);
        assert!(matches!(
            actors_from_args(&parse("attack --actors nope")),
            Err(CliError::Args(_))
        ));
        // The thread-count clamp never grants more than requested or less
        // than one.
        assert!((1..=4).contains(&granted_actors(4)));
    }

    #[test]
    fn list_tasks_runs() {
        dispatch(&parse("list-tasks")).unwrap();
    }

    #[test]
    fn unknown_command_reports_usage() {
        let e = dispatch(&parse("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("USAGE"));
    }

    #[test]
    fn missing_flag_surfaces_arg_error() {
        let e = dispatch(&parse("train-victim")).unwrap_err();
        assert!(matches!(e, CliError::Args(_)));
    }

    /// The acceptance path for `--telemetry --trace --status-interval`: a
    /// full attack run must leave a valid manifest, parseable JSONL metrics
    /// with timing rows, a report.json rollup, a Chrome trace, and a final
    /// status snapshot behind.
    #[test]
    fn telemetry_flag_writes_artifacts() {
        let dir = std::env::temp_dir().join("imap-cli-telemetry-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let victim_path = dir.join("victim.json");
        // An untrained victim is enough to drive the attack loop.
        let victim = GaussianPolicy::new(5, 3, &[8], -0.5, &mut EnvRng::seed_from_u64(1)).unwrap();
        save_policy(victim_path.to_str().unwrap(), &victim).unwrap();
        let tel_dir = dir.join("telemetry");
        let adv_path = dir.join("adv.json");

        dispatch(&parse(&format!(
            "attack --task Hopper --victim {} --baseline --iters 2 --steps 256 \
             --telemetry {} --trace --status-interval 0.01 --out {}",
            victim_path.display(),
            tel_dir.display(),
            adv_path.display()
        )))
        .unwrap();

        let manifest: RunManifest =
            serde_json::from_slice(&std::fs::read(tel_dir.join("manifest.json")).unwrap()).unwrap();
        assert_eq!(manifest.env, "Hopper");
        assert_eq!(manifest.variant, "sa-rl");
        assert_eq!(manifest.config["iterations"], 2);

        let text = std::fs::read_to_string(tel_dir.join("metrics.jsonl")).unwrap();
        let rows: Vec<imap_telemetry::MetricRow> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(rows.iter().filter(|r| r.phase == "attack").count(), 2);
        assert!(rows.iter().any(|r| r.phase == "eval"));
        // Structured timing rows replace the old timing.txt file.
        assert!(rows.iter().any(|r| r.phase == "timing"));
        assert!(!tel_dir.join("timing.txt").exists());

        let report: serde_json::Value =
            serde_json::from_slice(&std::fs::read(tel_dir.join("report.json")).unwrap()).unwrap();
        assert_eq!(report["run_id"], "sa-rl-Hopper-seed17");
        assert!(report["metrics"]["counters"]["train/iterations"] == 2);

        // --trace leaves a Perfetto-openable trace with nested spans.
        let trace: serde_json::Value =
            serde_json::from_slice(&std::fs::read(tel_dir.join("trace.json")).unwrap()).unwrap();
        let events = trace["traceEvents"].as_array().unwrap();
        assert!(events.iter().any(|e| e["name"] == "train_iteration"));
        assert!(tel_dir.join("spans.jsonl").exists());

        // The status thread finalized a done snapshot on drop.
        let status: serde_json::Value =
            serde_json::from_slice(&std::fs::read(tel_dir.join("status.json")).unwrap()).unwrap();
        assert_eq!(status["state"], "done");
        assert_eq!(status["cells"][0]["label"], "Hopper");
    }

    /// Full round-trip through temporary files: train a tiny victim, attack
    /// it, evaluate the saved adversary.
    #[test]
    fn end_to_end_files_roundtrip() {
        let dir = std::env::temp_dir().join("imap-cli-test");
        let _ = std::fs::create_dir_all(&dir);
        let victim_path = dir.join("victim.json");
        let adv_path = dir.join("adv.json");
        // Train a deliberately tiny victim directly (the CLI budget would be
        // slow in a unit test) and save it through the same path the CLI
        // uses.
        let victim = train_victim(
            TaskId::Hopper,
            DefenseMethod::Ppo,
            &VictimBudget {
                iterations: 4,
                steps_per_iter: 256,
                atla_rounds: 1,
                atla_adversary_iters: 1,
                hidden: vec![8],
                actors: 1,
            },
            1,
        )
        .unwrap();
        save_policy(victim_path.to_str().unwrap(), &victim).unwrap();

        dispatch(&parse(&format!(
            "attack --task Hopper --victim {} --baseline --iters 2 --steps 256 --out {}",
            victim_path.display(),
            adv_path.display()
        )))
        .unwrap();
        dispatch(&parse(&format!(
            "eval --task Hopper --victim {} --adversary {} --episodes 3",
            victim_path.display(),
            adv_path.display()
        )))
        .unwrap();
        dispatch(&parse(&format!(
            "eval --task Hopper --victim {} --mad --episodes 2",
            victim_path.display()
        )))
        .unwrap();
    }
}
