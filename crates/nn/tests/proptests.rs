//! Property-based tests for the algebraic core: matrix laws, Gaussian-head
//! identities, optimizer sanity, and IBP soundness under random networks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use imap_nn::matrix::reference;
use imap_nn::{Activation, DiagGaussian, Matrix, Mlp, MlpScratch};

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized"))
}

/// Draws `len` values laced with the special values the determinism contract
/// must preserve: NaN, ±∞, ±0.0 (the removed sparsity skip dropped exactly
/// the zero-times-non-finite products).
fn laced_values(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len)
        .map(|_| match rng.gen_range(0..16usize) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 | 4 => 0.0,
            5 => -0.0,
            _ => rng.gen_range(-5.0..5.0),
        })
        .collect()
}

fn assert_bitwise(fast: &Matrix, slow: &Matrix, what: &str) -> Result<(), String> {
    if (fast.rows(), fast.cols()) != (slow.rows(), slow.cols()) {
        return Err(format!("{what}: shape mismatch"));
    }
    for (i, (a, b)) in fast.data().iter().zip(slow.data().iter()).enumerate() {
        // Bitwise identity for every representable value — including ±∞ and
        // ±0.0 — except NaN *payloads*: IEEE-754 leaves the payload of an
        // arithmetic NaN unspecified, and x86 two-operand NaN selection
        // depends on operand order the compiler is free to commute, so the
        // contract (DESIGN.md §10) only pins *which* elements are NaN.
        if a.to_bits() != b.to_bits() && !(a.is_nan() && b.is_nan()) {
            return Err(format!("{what}: element {i} differs: {a} vs {b}"));
        }
    }
    Ok(())
}

/// Differential oracle: for a seed-derived random shape (including 0-sized,
/// 1×N, and non-square) with NaN/∞-laced values, every blocked kernel must
/// be bitwise-equal to the naive reference loop.
fn check_kernels_for_seed(seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (m, k, n) = (
        rng.gen_range(0..10usize),
        rng.gen_range(0..12usize),
        rng.gen_range(0..10usize),
    );
    let a_data = laced_values(&mut rng, m * k);
    let b_data = laced_values(&mut rng, k * n);
    let a = Matrix::from_vec(m, k, a_data).expect("sized");
    let b = Matrix::from_vec(k, n, b_data).expect("sized");

    let tag = format!("{m}x{k}x{n} seed {seed}");
    assert_bitwise(
        &a.matmul(&b).map_err(|e| e.to_string())?,
        &reference::matmul(&a, &b).map_err(|e| e.to_string())?,
        &format!("matmul {tag}"),
    )?;
    let bt = b.transpose();
    assert_bitwise(
        &a.matmul_transpose_rhs(&bt).map_err(|e| e.to_string())?,
        &reference::matmul_transpose_rhs(&a, &bt).map_err(|e| e.to_string())?,
        &format!("matmul_transpose_rhs {tag}"),
    )?;
    let at = a.transpose();
    assert_bitwise(
        &at.matmul_transpose_lhs(&b).map_err(|e| e.to_string())?,
        &reference::matmul_transpose_lhs(&at, &b).map_err(|e| e.to_string())?,
        &format!("matmul_transpose_lhs {tag}"),
    )?;
    Ok(())
}

/// Differential oracle: the scratch-buffer forward path equals the
/// allocating one bitwise for a seed-derived network and batch (scratch
/// buffers reused across calls with varying batch sizes).
fn check_scratch_forward_for_seed(seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let hidden = rng.gen_range(1..12usize);
    let (din, dout) = (rng.gen_range(1..8usize), rng.gen_range(1..6usize));
    let mlp = Mlp::new(&[din, hidden, dout], Activation::Tanh, 1.0, &mut rng).expect("net");
    let mut scratch = MlpScratch::new();
    for _ in 0..3 {
        let rows = rng.gen_range(1..9usize);
        let data = laced_values(&mut rng, rows * din);
        let x = Matrix::from_vec(rows, din, data).expect("sized");
        let slow = mlp.forward(&x).map_err(|e| e.to_string())?;
        let fast = mlp
            .forward_scratch(&x, &mut scratch)
            .map_err(|e| e.to_string())?;
        assert_bitwise(fast, slow.output(), &format!("forward seed {seed}"))?;
    }
    Ok(())
}

/// Seed-sweep drivers for the differential oracles. These run everywhere
/// (they do not depend on the proptest runner) and are the tier-1 pin; the
/// `proptest!` wrappers below explore a wider randomized seed space in CI.
#[test]
fn blocked_kernels_bitwise_equal_reference_seeded() {
    for seed in 0..500u64 {
        if let Err(e) = check_kernels_for_seed(seed) {
            panic!("{e}");
        }
    }
}

#[test]
fn scratch_forward_bitwise_equal_forward_seeded() {
    for seed in 0..200u64 {
        if let Err(e) = check_scratch_forward_for_seed(seed) {
            panic!("{e}");
        }
    }
}

proptest! {
    /// (A·B)·C = A·(B·C) up to floating-point tolerance.
    #[test]
    fn matmul_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.data().iter().zip(right.data().iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Transposition is an involution and reverses multiplication order.
    #[test]
    fn transpose_laws(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in ab_t.data().iter().zip(bt_at.data().iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// `matmul_transpose_rhs` equals multiplying by the materialized
    /// transpose for arbitrary shapes.
    #[test]
    fn fused_transpose_matches(a in matrix_strategy(2, 3), b in matrix_strategy(5, 3)) {
        let fast = a.matmul_transpose_rhs(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        prop_assert_eq!(fast, slow);
    }

    /// Gaussian log-density integrates consistently: densities are maximal
    /// at the mean and decrease monotonically with |z|.
    #[test]
    fn gaussian_density_peaks_at_mean(
        log_std in -1.5f64..1.0,
        mean in -3.0f64..3.0,
        offset in 0.01f64..4.0,
    ) {
        let g = DiagGaussian::new(1, log_std);
        let at_mean = g.log_prob(&[mean], &[mean]);
        let off_a = g.log_prob(&[mean], &[mean + offset]);
        let off_b = g.log_prob(&[mean], &[mean + 2.0 * offset]);
        prop_assert!(at_mean > off_a);
        prop_assert!(off_a > off_b);
    }

    /// KL between diagonal Gaussians is non-negative and zero only at
    /// identity.
    #[test]
    fn gaussian_kl_nonnegative(
        ls_p in -1.0f64..1.0,
        ls_q in -1.0f64..1.0,
        mp in -2.0f64..2.0,
        mq in -2.0f64..2.0,
    ) {
        let p = DiagGaussian::new(2, ls_p);
        let q = DiagGaussian::new(2, ls_q);
        let kl = p.kl(&[mp, mp], &q, &[mq, mq]);
        prop_assert!(kl >= -1e-12);
        if (ls_p - ls_q).abs() < 1e-12 && (mp - mq).abs() < 1e-12 {
            prop_assert!(kl.abs() < 1e-12);
        }
    }

    /// IBP bounds are sound for random networks, inputs, and radii.
    #[test]
    fn ibp_sound_for_random_networks(seed in 0u64..500, eps in 0.0f64..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, 1.0, &mut rng).unwrap();
        let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bounds = imap_nn::ibp::propagate(
            &mlp,
            &imap_nn::ibp::Interval::linf_ball(&x, eps),
        )
        .unwrap();
        for _ in 0..20 {
            let xp: Vec<f64> = x.iter().map(|&v| v + rng.gen_range(-eps..=eps)).collect();
            let y = mlp.infer(&xp).unwrap();
            prop_assert!(bounds.contains(&y));
        }
    }

    /// Parameter flatten/unflatten is the identity for random networks.
    #[test]
    fn mlp_param_roundtrip(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[4, 5, 3], Activation::Relu, 0.5, &mut rng).unwrap();
        let p = mlp.params();
        mlp.set_params(&p).unwrap();
        prop_assert_eq!(mlp.params(), p);
    }

    /// Randomized-shape differential oracle: blocked kernels are
    /// bitwise-equal to the naive reference, NaN/∞-laced inputs included.
    #[test]
    fn blocked_kernels_bitwise_equal_reference(seed in 0u64..1_000_000) {
        if let Err(e) = check_kernels_for_seed(seed) {
            prop_assert!(false, "{}", e);
        }
    }

    /// Randomized differential oracle: scratch-buffer forward equals the
    /// allocating forward bitwise.
    #[test]
    fn scratch_forward_bitwise_equal_forward(seed in 0u64..1_000_000) {
        if let Err(e) = check_scratch_forward_for_seed(seed) {
            prop_assert!(false, "{}", e);
        }
    }
}
