//! Property-based tests for the algebraic core: matrix laws, Gaussian-head
//! identities, optimizer sanity, and IBP soundness under random networks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use imap_nn::{Activation, DiagGaussian, Matrix, Mlp};

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized"))
}

proptest! {
    /// (A·B)·C = A·(B·C) up to floating-point tolerance.
    #[test]
    fn matmul_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.data().iter().zip(right.data().iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Transposition is an involution and reverses multiplication order.
    #[test]
    fn transpose_laws(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in ab_t.data().iter().zip(bt_at.data().iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// `matmul_transpose_rhs` equals multiplying by the materialized
    /// transpose for arbitrary shapes.
    #[test]
    fn fused_transpose_matches(a in matrix_strategy(2, 3), b in matrix_strategy(5, 3)) {
        let fast = a.matmul_transpose_rhs(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        prop_assert_eq!(fast, slow);
    }

    /// Gaussian log-density integrates consistently: densities are maximal
    /// at the mean and decrease monotonically with |z|.
    #[test]
    fn gaussian_density_peaks_at_mean(
        log_std in -1.5f64..1.0,
        mean in -3.0f64..3.0,
        offset in 0.01f64..4.0,
    ) {
        let g = DiagGaussian::new(1, log_std);
        let at_mean = g.log_prob(&[mean], &[mean]);
        let off_a = g.log_prob(&[mean], &[mean + offset]);
        let off_b = g.log_prob(&[mean], &[mean + 2.0 * offset]);
        prop_assert!(at_mean > off_a);
        prop_assert!(off_a > off_b);
    }

    /// KL between diagonal Gaussians is non-negative and zero only at
    /// identity.
    #[test]
    fn gaussian_kl_nonnegative(
        ls_p in -1.0f64..1.0,
        ls_q in -1.0f64..1.0,
        mp in -2.0f64..2.0,
        mq in -2.0f64..2.0,
    ) {
        let p = DiagGaussian::new(2, ls_p);
        let q = DiagGaussian::new(2, ls_q);
        let kl = p.kl(&[mp, mp], &q, &[mq, mq]);
        prop_assert!(kl >= -1e-12);
        if (ls_p - ls_q).abs() < 1e-12 && (mp - mq).abs() < 1e-12 {
            prop_assert!(kl.abs() < 1e-12);
        }
    }

    /// IBP bounds are sound for random networks, inputs, and radii.
    #[test]
    fn ibp_sound_for_random_networks(seed in 0u64..500, eps in 0.0f64..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[3, 6, 2], Activation::Tanh, 1.0, &mut rng).unwrap();
        let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bounds = imap_nn::ibp::propagate(
            &mlp,
            &imap_nn::ibp::Interval::linf_ball(&x, eps),
        )
        .unwrap();
        for _ in 0..20 {
            let xp: Vec<f64> = x.iter().map(|&v| v + rng.gen_range(-eps..=eps)).collect();
            let y = mlp.infer(&xp).unwrap();
            prop_assert!(bounds.contains(&y));
        }
    }

    /// Parameter flatten/unflatten is the identity for random networks.
    #[test]
    fn mlp_param_roundtrip(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[4, 5, 3], Activation::Relu, 0.5, &mut rng).unwrap();
        let p = mlp.params();
        mlp.set_params(&p).unwrap();
        prop_assert_eq!(mlp.params(), p);
    }
}
