//! Error type for the `imap-nn` crate.

use std::fmt;

/// Errors produced by neural-network construction and use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// A matrix operation was attempted on incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A network was constructed with an empty layer specification.
    EmptyNetwork,
    /// A parameter vector of the wrong length was supplied.
    ParamLength {
        /// The length the network expected.
        expected: usize,
        /// The length that was provided.
        got: usize,
    },
    /// A numeric-health check failed (NaN/Inf in losses, gradients, or
    /// parameters) and bounded recovery was exhausted.
    Numeric {
        /// Where the non-finite value was detected.
        context: String,
    },
    /// Persisting or restoring serialized trainer state failed.
    Persist {
        /// Human-readable failure description.
        reason: String,
    },
    /// Training was cancelled cooperatively by a supervisor (stall
    /// watchdog, sweep deadline, or an explicit time limit).
    Cancelled,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            NnError::EmptyNetwork => write!(f, "network must have at least one layer"),
            NnError::ParamLength { expected, got } => {
                write!(f, "parameter vector length {got}, expected {expected}")
            }
            NnError::Numeric { context } => {
                write!(f, "non-finite values detected in {context}")
            }
            NnError::Persist { reason } => write!(f, "state persistence failed: {reason}"),
            NnError::Cancelled => write!(f, "training cancelled by supervisor"),
        }
    }
}

impl std::error::Error for NnError {}
