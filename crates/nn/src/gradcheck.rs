//! Finite-difference gradient checking.
//!
//! Every analytic gradient in this workspace (layers, networks, the Gaussian
//! policy head, the PPO losses built on top) is validated against central
//! finite differences in tests. These helpers centralize that logic.

use crate::layer::{Dense, DenseGrads};
use crate::mlp::{Mlp, MlpGrads};

/// A failed gradient check: which parameter disagreed and by how much.
#[derive(Debug, Clone)]
pub struct GradCheckFailure {
    /// Flat parameter index that disagreed.
    pub index: usize,
    /// Analytic gradient value.
    pub analytic: f64,
    /// Finite-difference estimate.
    pub numeric: f64,
}

impl std::fmt::Display for GradCheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gradient mismatch at param {}: analytic {} vs numeric {}",
            self.index, self.analytic, self.numeric
        )
    }
}

impl std::error::Error for GradCheckFailure {}

/// Central-difference derivative of `loss` w.r.t. flat parameter `i` of `mlp`.
fn fd_param_mlp(mlp: &Mlp, loss: &impl Fn(&Mlp) -> f64, i: usize, h: f64) -> f64 {
    let base = mlp.params();
    let mut m = mlp.clone();
    let mut p = base.clone();
    p[i] += h;
    m.set_params(&p).expect("same length");
    let up = loss(&m);
    p[i] = base[i] - h;
    m.set_params(&p).expect("same length");
    let down = loss(&m);
    (up - down) / (2.0 * h)
}

/// Checks analytic MLP gradients against central finite differences.
///
/// Compares every flat parameter; returns the first disagreement beyond
/// `tol` (absolute, after normalizing by `1 + |numeric|`).
pub fn check_mlp_grads(
    mlp: &Mlp,
    loss: impl Fn(&Mlp) -> f64,
    grads: &MlpGrads,
    h: f64,
    tol: f64,
) -> Result<(), GradCheckFailure> {
    let flat = grads.flatten();
    for (i, &analytic) in flat.iter().enumerate() {
        let numeric = fd_param_mlp(mlp, &loss, i, h);
        if (analytic - numeric).abs() / (1.0 + numeric.abs()) > tol {
            return Err(GradCheckFailure {
                index: i,
                analytic,
                numeric,
            });
        }
    }
    Ok(())
}

/// Checks analytic gradients of a single [`Dense`] layer.
pub fn check_dense_grads(
    layer: &Dense,
    loss: impl Fn(&Dense) -> f64,
    grads: &DenseGrads,
    h: f64,
    tol: f64,
) -> Result<(), GradCheckFailure> {
    let wlen = layer.w.rows() * layer.w.cols();
    let total = wlen + layer.b.len();
    for i in 0..total {
        let mut up = layer.clone();
        let mut down = layer.clone();
        if i < wlen {
            up.w.data_mut()[i] += h;
            down.w.data_mut()[i] -= h;
        } else {
            up.b[i - wlen] += h;
            down.b[i - wlen] -= h;
        }
        let numeric = (loss(&up) - loss(&down)) / (2.0 * h);
        let analytic = if i < wlen {
            grads.dw.data()[i]
        } else {
            grads.db[i - wlen]
        };
        if (analytic - numeric).abs() / (1.0 + numeric.abs()) > tol {
            return Err(GradCheckFailure {
                index: i,
                analytic,
                numeric,
            });
        }
    }
    Ok(())
}

/// Central-difference gradient of a scalar function of a vector. Used by
/// tests outside this crate (e.g. Gaussian head and PPO loss gradchecks).
pub fn numeric_gradient(f: impl Fn(&[f64]) -> f64, x: &[f64], h: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut buf = x.to_vec();
    for i in 0..x.len() {
        buf[i] = x[i] + h;
        let up = f(&buf);
        buf[i] = x[i] - h;
        let down = f(&buf);
        buf[i] = x[i];
        g[i] = (up - down) / (2.0 * h);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_gradient_of_quadratic() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let g = numeric_gradient(f, &[1.0, -2.0, 0.5], 1e-6);
        for (gi, xi) in g.iter().zip([1.0, -2.0, 0.5]) {
            assert!((gi - 2.0 * xi).abs() < 1e-6);
        }
    }
}
