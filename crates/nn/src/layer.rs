//! A single dense (fully connected) layer with manual backpropagation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::error::NnError;
use crate::init;
use crate::matrix::Matrix;

/// A dense layer computing `act(x W^T + b)`.
///
/// Weights are stored `out x in` so that a batch forward pass is
/// `X (n x in) * W^T -> (n x out)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, shape `out x in`.
    pub w: Matrix,
    /// Bias vector, length `out`.
    pub b: Vec<f64>,
    /// Elementwise activation applied after the affine map.
    pub act: Activation,
}

/// Cached tensors from a forward pass, needed by [`Dense::backward`].
#[derive(Debug, Clone)]
pub struct DenseCache {
    /// The layer input, shape `n x in`.
    pub input: Matrix,
    /// Pre-activation values, shape `n x out`.
    pub pre: Matrix,
}

/// Gradients of a dense layer's parameters.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// Gradient w.r.t. the weight matrix, shape `out x in`.
    pub dw: Matrix,
    /// Gradient w.r.t. the bias, length `out`.
    pub db: Vec<f64>,
}

impl Dense {
    /// Creates a layer with Xavier-initialized weights and zero biases.
    pub fn new<R: Rng>(input: usize, output: usize, act: Activation, rng: &mut R) -> Self {
        Dense {
            w: init::xavier_uniform(output, input, rng),
            b: vec![0.0; output],
            act,
        }
    }

    /// Creates a layer with weights scaled by `scale` (for near-zero policy
    /// output heads).
    pub fn new_scaled<R: Rng>(
        input: usize,
        output: usize,
        act: Activation,
        scale: f64,
        rng: &mut R,
    ) -> Self {
        Dense {
            w: init::scaled_output(output, input, scale, rng),
            b: vec![0.0; output],
            act,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.w.rows()
    }

    /// Number of scalar parameters (`|W| + |b|`).
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Batch forward pass. Returns the activated output and a cache for
    /// [`Dense::backward`].
    pub fn forward(&self, x: &Matrix) -> Result<(Matrix, DenseCache), NnError> {
        let mut pre = x.matmul_transpose_rhs(&self.w)?;
        pre.add_row_broadcast(&self.b)?;
        let out = pre.map(|v| self.act.apply(v));
        Ok((
            out,
            DenseCache {
                input: x.clone(),
                pre,
            },
        ))
    }

    /// Inference-only batch forward pass into a caller-provided buffer.
    ///
    /// Produces output bitwise-identical to [`Dense::forward`] but keeps no
    /// backward cache and performs no allocation once `out` has capacity.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        x.matmul_transpose_rhs_into(&self.w, out)?;
        out.add_row_broadcast(&self.b)?;
        for v in out.data_mut() {
            *v = self.act.apply(*v);
        }
        Ok(())
    }

    /// Backward pass.
    ///
    /// `dout` is the loss gradient w.r.t. this layer's activated output
    /// (`n x out`). Returns the parameter gradients and the loss gradient
    /// w.r.t. the layer input (`n x in`).
    pub fn backward(
        &self,
        cache: &DenseCache,
        dout: &Matrix,
    ) -> Result<(DenseGrads, Matrix), NnError> {
        if dout.rows() != cache.pre.rows() || dout.cols() != cache.pre.cols() {
            return Err(NnError::ShapeMismatch {
                op: "dense backward",
                lhs: (cache.pre.rows(), cache.pre.cols()),
                rhs: (dout.rows(), dout.cols()),
            });
        }
        // dpre = dout ⊙ act'(pre)
        let mut dpre = dout.clone();
        for (d, &p) in dpre.data_mut().iter_mut().zip(cache.pre.data().iter()) {
            *d *= self.act.derivative(p);
        }
        let dw = dpre.matmul_transpose_lhs(&cache.input)?;
        let db = dpre.sum_rows();
        let dx = dpre.matmul(&self.w)?;
        Ok((DenseGrads { dw, db }, dx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(3, 5, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3], &[1.0, -1.0, 0.5]]).unwrap();
        let (y, cache) = layer.forward(&x).unwrap();
        assert_eq!(y.rows(), 2);
        assert_eq!(y.cols(), 5);
        assert_eq!(cache.pre.rows(), 2);
    }

    #[test]
    fn forward_into_matches_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(17);
        let layer = Dense::new(3, 5, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3], &[1.0, -1.0, 0.5]]).unwrap();
        let (y, _) = layer.forward(&x).unwrap();
        let mut out = Matrix::zeros(0, 0);
        layer.forward_into(&x, &mut out).unwrap();
        assert_eq!((out.rows(), out.cols()), (y.rows(), y.cols()));
        for (a, b) in y.data().iter().zip(out.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Zero inputs times NaN/∞ weights are NaN; the removed sparsity skip
    /// used to turn exactly this case into a silent 0.
    #[test]
    fn nan_and_inf_weights_propagate_through_layer_forward() {
        let mut rng = StdRng::seed_from_u64(23);
        for poison in [f64::NAN, f64::INFINITY] {
            let mut layer = Dense::new(2, 3, Activation::Tanh, &mut rng);
            layer.w.set(0, 0, poison);
            let x = Matrix::from_row(&[0.0, 0.0]);
            let (y, _) = layer.forward(&x).unwrap();
            assert!(
                y.get(0, 0).is_nan(),
                "0 * {poison} weight must reach the layer output as NaN"
            );
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(42);
        for act in [Activation::Tanh, Activation::Linear, Activation::Softplus] {
            let layer = Dense::new(4, 3, act, &mut rng);
            let x = Matrix::from_rows(&[&[0.3, -0.1, 0.7, 0.2], &[-0.5, 0.9, 0.0, 1.1]]).unwrap();
            // Loss: sum of squares of outputs.
            let loss = |l: &Dense| -> f64 {
                let (y, _) = l.forward(&x).unwrap();
                y.data().iter().map(|v| v * v).sum::<f64>()
            };
            let (y, cache) = layer.forward(&x).unwrap();
            let dout = y.map(|v| 2.0 * v);
            let (grads, _) = layer.backward(&cache, &dout).unwrap();
            gradcheck::check_dense_grads(&layer, loss, &grads, 1e-6, 1e-4).unwrap();
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(9);
        let layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x0 = vec![0.4, -0.6, 0.2];
        let loss_of_x = |x: &[f64]| -> f64 {
            let xm = Matrix::from_row(x);
            let (y, _) = layer.forward(&xm).unwrap();
            y.data().iter().map(|v| v * v).sum::<f64>()
        };
        let xm = Matrix::from_row(&x0);
        let (y, cache) = layer.forward(&xm).unwrap();
        let dout = y.map(|v| 2.0 * v);
        let (_, dx) = layer.backward(&cache, &dout).unwrap();
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            let mut xm2 = x0.clone();
            xp[i] += 1e-6;
            xm2[i] -= 1e-6;
            let fd = (loss_of_x(&xp) - loss_of_x(&xm2)) / 2e-6;
            assert!((fd - dx.get(0, i)).abs() < 1e-4, "dx[{i}]");
        }
    }
}
