//! # imap-nn
//!
//! A small, self-contained neural-network library used by the IMAP
//! reproduction. It provides exactly what black-box adversarial policy
//! learning needs and nothing more:
//!
//! - [`Matrix`]: a dense row-major `f64` matrix with the linear-algebra
//!   operations required for forward/backward passes.
//! - [`Mlp`]: a multi-layer perceptron with manual reverse-mode gradients
//!   (no autograd tape; each layer knows how to backpropagate).
//! - [`DiagGaussian`]: a diagonal-Gaussian policy head with closed-form
//!   log-probability, entropy, and KL divergence plus their gradients.
//! - [`Adam`] / [`Sgd`]: optimizers over flattened parameter vectors.
//! - [`ibp`]: interval bound propagation, the sound l∞ relaxation used by
//!   the SA / RADIAL / WocaR defenses in `imap-defense`.
//! - [`gradcheck`]: finite-difference utilities used by the test suite to
//!   verify every analytic gradient in this crate.
//! - [`health`]: NaN/Inf detection helpers backing the divergence guards in
//!   `imap-rl`.
//!
//! All computations are `f64` and deterministic given a seeded RNG, which is
//! a hard requirement for reproducible experiment tables.

pub mod activation;
pub mod error;
pub mod gaussian;
pub mod gradcheck;
pub mod health;
pub mod ibp;
pub mod init;
pub mod layer;
pub mod lstm;
pub mod matrix;
pub mod mlp;
pub mod optim;

pub use activation::Activation;
pub use error::NnError;
pub use gaussian::DiagGaussian;
pub use health::{all_finite, first_non_finite, non_finite_fraction};
pub use ibp::Interval;
pub use layer::Dense;
pub use lstm::{Lstm, LstmCell, LstmState};
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpGrads, MlpScratch};
pub use optim::{Adam, Optimizer, Sgd};
