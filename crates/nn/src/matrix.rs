//! Dense row-major `f64` matrices.
//!
//! This is intentionally a small, boring matrix type: the networks in this
//! workspace are tiny (tens of units per layer), so clarity and correctness
//! beat BLAS-grade performance. Hot paths (`matmul`, `matmul_transpose_*`)
//! are written cache-friendly and avoid allocation where practical.

use serde::{Deserialize, Serialize};

use crate::error::NnError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NnError> {
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a `1 x n` row matrix from a slice.
    pub fn from_row(row: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: row.len(),
            data: row.to_vec(),
        }
    }

    /// Creates a matrix whose rows are the given slices.
    ///
    /// All rows must have equal length; an empty input yields a `0 x 0`
    /// matrix.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NnError> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(NnError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (rows.len(), cols),
                    rhs: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != rhs.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Product `self * rhs^T` without materializing the transpose.
    pub fn matmul_transpose_rhs(&self, rhs: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != rhs.cols {
            return Err(NnError::ShapeMismatch {
                op: "matmul_transpose_rhs",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..rhs.rows {
                let brow = rhs.row(j);
                let mut s = 0.0;
                for (&a, &b) in arow.iter().zip(brow.iter()) {
                    s += a * b;
                }
                out.data[i * rhs.rows + j] = s;
            }
        }
        Ok(out)
    }

    /// Product `self^T * rhs` without materializing the transpose.
    pub fn matmul_transpose_lhs(&self, rhs: &Matrix) -> Result<Matrix, NnError> {
        if self.rows != rhs.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul_transpose_lhs",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise in-place addition. Errors on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<(), NnError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(NnError::ShapeMismatch {
                op: "add_assign",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Applies `f` to each element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Adds a row vector to every row (broadcast).
    pub fn add_row_broadcast(&mut self, row: &[f64]) -> Result<(), NnError> {
        if row.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: (self.rows, self.cols),
                rhs: (1, row.len()),
            });
        }
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &b) in dst.iter_mut().zip(row.iter()) {
                *d += b;
            }
        }
        Ok(())
    }

    /// Sums over rows, returning a length-`cols` vector.
    pub fn sum_rows(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = m(2, 3, &[0.0; 6]);
        let b = m(2, 3, &[0.0; 6]);
        assert!(matches!(
            a.matmul(&b),
            Err(NnError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn transpose_matmul_consistency() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(
            4,
            3,
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0],
        );
        let fast = a.matmul_transpose_rhs(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_lhs_consistency() {
        let a = m(3, 2, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(
            3,
            4,
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0],
        );
        let fast = a.matmul_transpose_lhs(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn broadcast_and_sum() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]).unwrap();
        assert_eq!(a.sum_rows(), vec![3.0, 6.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r1 = [1.0, 2.0];
        let r2 = [1.0];
        assert!(Matrix::from_rows(&[&r1, &r2]).is_err());
    }

    #[test]
    fn frobenius() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
