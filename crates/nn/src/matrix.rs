//! Dense row-major `f64` matrices.
//!
//! The networks in this workspace are tiny (tens of units per layer), but
//! every experiment bottoms out in the three product kernels below, so they
//! are register/row-blocked. The blocking obeys the workspace's determinism
//! contract (DESIGN.md §10): each output element accumulates its `k`-products
//! in exactly the reference order — one rounding step per product, no partial
//! sums, no FMA, no data-dependent skips — so the blocked kernels are
//! bitwise-identical to the naive triple loop retained in [`reference`].

use serde::{Deserialize, Serialize};

use crate::error::NnError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NnError> {
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a `1 x n` row matrix from a slice.
    pub fn from_row(row: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: row.len(),
            data: row.to_vec(),
        }
    }

    /// Creates a matrix whose rows are the given slices.
    ///
    /// All rows must have equal length; an empty input yields a `0 x 0`
    /// matrix.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NnError> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(NnError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (rows.len(), cols),
                    rhs: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes in place to `rows x cols`, zero-filling every element.
    ///
    /// Retains the existing allocation when capacity permits; this is the
    /// primitive the `*_into` kernels and the scratch-buffer forward passes
    /// use to avoid per-call allocation.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, NnError> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self * rhs`, written into `out` (reshaped as needed).
    ///
    /// 4x8 register-tiled: each output element accumulates in its own
    /// register chain across the whole `k` sweep and is stored once. The
    /// `k` products are still individual in-order `+=` adds, so the result
    /// is bitwise-identical to [`reference::matmul`].
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        if self.cols != rhs.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        out.reshape(self.rows, rhs.cols);
        matmul_tiled(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        Ok(())
    }

    /// Product `self * rhs^T` without materializing the transpose.
    pub fn matmul_transpose_rhs(&self, rhs: &Matrix) -> Result<Matrix, NnError> {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_transpose_rhs_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Product `self * rhs^T`, written into `out` (reshaped as needed).
    ///
    /// 2x8 dot tile: two `self` rows sweep eight `rhs` rows at once, so each
    /// `b[k]` load feeds two accumulator chains. Every accumulator still
    /// sums its own products in index order, so each output element is
    /// bitwise-equal to the single-dot [`reference::matmul_transpose_rhs`].
    pub fn matmul_transpose_rhs_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        if self.cols != rhs.cols {
            return Err(NnError::ShapeMismatch {
                op: "matmul_transpose_rhs",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        out.reshape(self.rows, rhs.rows);
        let kdim = self.cols;
        let p = rhs.rows;
        // On AVX2 hosts with enough rows to tile, materialize `rhs^T` once
        // into a reused per-thread buffer (pure data movement — it reorders
        // no arithmetic) and run the 4x8-tiled matmul core over it. Each
        // out[i][j] then accumulates the same products `a[i][k] * rhs[j][k]`
        // in the same k order as the dot kernels below, so the result is
        // bitwise-unchanged; the dot-product layout itself cannot use the
        // vector tile because the eight `b[k]` lanes live in different rows.
        #[cfg(target_arch = "x86_64")]
        if self.rows >= 4 && p >= 8 && std::is_x86_feature_detected!("avx2") {
            return TRANSPOSE_SCRATCH.with(|cell| {
                let mut buf = cell.borrow_mut();
                buf.clear();
                buf.resize(kdim * p, 0.0);
                for j in 0..p {
                    let brow = &rhs.data[j * kdim..(j + 1) * kdim];
                    for (k, &v) in brow.iter().enumerate() {
                        buf[k * p + j] = v;
                    }
                }
                matmul_tiled(&self.data, self.rows, kdim, &buf, p, &mut out.data);
                Ok(())
            });
        }
        let mut i = 0;
        // Two output rows advance together through 8-wide dot blocks: each
        // `b[k]` load feeds two accumulator chains, and the sixteen chains
        // are enough in-flight adds to cover fp-add latency. Every chain
        // still sums its own products in index order.
        while i + 2 <= self.rows {
            let a0 = &self.data[i * kdim..(i + 1) * kdim];
            let a1 = &self.data[(i + 1) * kdim..(i + 2) * kdim];
            let (block, _) = out.data[i * p..].split_at_mut(2 * p);
            let (o0, o1) = block.split_at_mut(p);
            let mut j = 0;
            while j + 8 <= p {
                let b0 = &rhs.data[j * kdim..(j + 1) * kdim];
                let b1 = &rhs.data[(j + 1) * kdim..(j + 2) * kdim];
                let b2 = &rhs.data[(j + 2) * kdim..(j + 3) * kdim];
                let b3 = &rhs.data[(j + 3) * kdim..(j + 4) * kdim];
                let b4 = &rhs.data[(j + 4) * kdim..(j + 5) * kdim];
                let b5 = &rhs.data[(j + 5) * kdim..(j + 6) * kdim];
                let b6 = &rhs.data[(j + 6) * kdim..(j + 7) * kdim];
                let b7 = &rhs.data[(j + 7) * kdim..(j + 8) * kdim];
                let mut s = [[0.0f64; 8]; 2];
                for k in 0..kdim {
                    let (va, vb) = (a0[k], a1[k]);
                    let bv = [b0[k], b1[k], b2[k], b3[k], b4[k], b5[k], b6[k], b7[k]];
                    for c in 0..8 {
                        s[0][c] += va * bv[c];
                        s[1][c] += vb * bv[c];
                    }
                }
                o0[j..j + 8].copy_from_slice(&s[0]);
                o1[j..j + 8].copy_from_slice(&s[1]);
                j += 8;
            }
            dot_row_tail(a0, &rhs.data, kdim, o0, j);
            dot_row_tail(a1, &rhs.data, kdim, o1, j);
            i += 2;
        }
        while i < self.rows {
            let arow = &self.data[i * kdim..(i + 1) * kdim];
            let orow = &mut out.data[i * p..(i + 1) * p];
            let mut j = 0;
            while j + 8 <= p {
                let b0 = &rhs.data[j * kdim..(j + 1) * kdim];
                let b1 = &rhs.data[(j + 1) * kdim..(j + 2) * kdim];
                let b2 = &rhs.data[(j + 2) * kdim..(j + 3) * kdim];
                let b3 = &rhs.data[(j + 3) * kdim..(j + 4) * kdim];
                let b4 = &rhs.data[(j + 4) * kdim..(j + 5) * kdim];
                let b5 = &rhs.data[(j + 5) * kdim..(j + 6) * kdim];
                let b6 = &rhs.data[(j + 6) * kdim..(j + 7) * kdim];
                let b7 = &rhs.data[(j + 7) * kdim..(j + 8) * kdim];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                let (mut s4, mut s5, mut s6, mut s7) = (0.0, 0.0, 0.0, 0.0);
                for (k, &a) in arow.iter().enumerate() {
                    s0 += a * b0[k];
                    s1 += a * b1[k];
                    s2 += a * b2[k];
                    s3 += a * b3[k];
                    s4 += a * b4[k];
                    s5 += a * b5[k];
                    s6 += a * b6[k];
                    s7 += a * b7[k];
                }
                orow[j] = s0;
                orow[j + 1] = s1;
                orow[j + 2] = s2;
                orow[j + 3] = s3;
                orow[j + 4] = s4;
                orow[j + 5] = s5;
                orow[j + 6] = s6;
                orow[j + 7] = s7;
                j += 8;
            }
            dot_row_tail(arow, &rhs.data, kdim, orow, j);
            i += 1;
        }
        Ok(())
    }

    /// Product `self^T * rhs` without materializing the transpose.
    pub fn matmul_transpose_lhs(&self, rhs: &Matrix) -> Result<Matrix, NnError> {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_transpose_lhs_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Product `self^T * rhs`, written into `out` (reshaped as needed).
    ///
    /// 4x8 register-tiled like [`Matrix::matmul_into`], reading `self` down
    /// columns without materializing the transpose; every output element
    /// accumulates its k-products in index order, so the result is
    /// bitwise-identical to [`reference::matmul_transpose_lhs`].
    pub fn matmul_transpose_lhs_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        if self.rows != rhs.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul_transpose_lhs",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        out.reshape(self.cols, rhs.cols);
        let n = rhs.cols;
        let m = self.cols;
        let kdim = self.rows;
        let mut i = 0;
        // Same 4x8 register tile as `matmul_into`; the four `a` scalars for
        // each k are one contiguous quad from a row of `self` (columns
        // `i..i+4`), so the tile needs no strided gathers.
        while i + 4 <= m {
            let (block, _) = out.data[i * n..].split_at_mut(4 * n);
            let (o0, rest) = block.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            let mut j = 0;
            #[cfg(target_arch = "x86_64")]
            if std::is_x86_feature_detected!("avx2") {
                while j + 8 <= n {
                    // SAFETY: `j + 8 <= n` bounds every b-row read and o-row
                    // write; the lhs scalar at (k, r) lives at `i + k * m +
                    // r` because `self` is read down columns `i..i + 4`.
                    unsafe {
                        simd::tile4x8(
                            self.data.as_ptr().add(i),
                            1,
                            m,
                            kdim,
                            rhs.data.as_ptr().add(j),
                            n,
                            [
                                o0.as_mut_ptr().add(j),
                                o1.as_mut_ptr().add(j),
                                o2.as_mut_ptr().add(j),
                                o3.as_mut_ptr().add(j),
                            ],
                        );
                    }
                    j += 8;
                }
            }
            while j + 8 <= n {
                let mut acc = [[0.0f64; 8]; 4];
                for k in 0..kdim {
                    let a = &self.data[k * m + i..k * m + i + 4];
                    let b = &rhs.data[k * n + j..k * n + j + 8];
                    for c in 0..8 {
                        acc[0][c] += a[0] * b[c];
                        acc[1][c] += a[1] * b[c];
                        acc[2][c] += a[2] * b[c];
                        acc[3][c] += a[3] * b[c];
                    }
                }
                o0[j..j + 8].copy_from_slice(&acc[0]);
                o1[j..j + 8].copy_from_slice(&acc[1]);
                o2[j..j + 8].copy_from_slice(&acc[2]);
                o3[j..j + 8].copy_from_slice(&acc[3]);
                j += 8;
            }
            while j < n {
                let mut acc = [0.0f64; 4];
                for k in 0..kdim {
                    let a = &self.data[k * m + i..k * m + i + 4];
                    let b = rhs.data[k * n + j];
                    acc[0] += a[0] * b;
                    acc[1] += a[1] * b;
                    acc[2] += a[2] * b;
                    acc[3] += a[3] * b;
                }
                o0[j] = acc[0];
                o1[j] = acc[1];
                o2[j] = acc[2];
                o3[j] = acc[3];
                j += 1;
            }
            i += 4;
        }
        while i < m {
            let orow = &mut out.data[i * n..(i + 1) * n];
            let mut k = 0;
            while k + 4 <= kdim {
                let b0 = &rhs.data[k * n..(k + 1) * n];
                let b1 = &rhs.data[(k + 1) * n..(k + 2) * n];
                let b2 = &rhs.data[(k + 2) * n..(k + 3) * n];
                let b3 = &rhs.data[(k + 3) * n..(k + 4) * n];
                let (a0, a1, a2, a3) = (
                    self.data[k * m + i],
                    self.data[(k + 1) * m + i],
                    self.data[(k + 2) * m + i],
                    self.data[(k + 3) * m + i],
                );
                for j in 0..n {
                    let mut o = orow[j];
                    o += a0 * b0[j];
                    o += a1 * b1[j];
                    o += a2 * b2[j];
                    o += a3 * b3[j];
                    orow[j] = o;
                }
                k += 4;
            }
            while k < kdim {
                let a = self.data[k * m + i];
                let brow = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
                k += 1;
            }
            i += 1;
        }
        Ok(())
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise in-place addition. Errors on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<(), NnError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(NnError::ShapeMismatch {
                op: "add_assign",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Applies `f` to each element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Adds a row vector to every row (broadcast).
    pub fn add_row_broadcast(&mut self, row: &[f64]) -> Result<(), NnError> {
        if row.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: (self.rows, self.cols),
                rhs: (1, row.len()),
            });
        }
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &b) in dst.iter_mut().zip(row.iter()) {
                *d += b;
            }
        }
        Ok(())
    }

    /// Sums over rows, returning a length-`cols` vector.
    pub fn sum_rows(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Tiled core of `matmul_into` (and the transposed-rhs fast path):
/// `out = a * b` for row-major `a` (`rows x kdim`) and `b` (`kdim x n`),
/// with `out` pre-zeroed by `reshape`.
///
/// 4x8 register tile held across the whole k sweep: each of the 32 output
/// elements accumulates one in-order `+=` per k into its own register chain
/// and is stored exactly once, so there is no output-row traffic inside the
/// hot loop and enough independent chains to cover fp-add latency. On AVX2
/// hosts the full tiles run in the `simd::tile4x8` micro-kernel, which
/// executes the identical one-mul-one-add-per-k schedule per lane.
fn matmul_tiled(a: &[f64], rows: usize, kdim: usize, b: &[f64], n: usize, out: &mut [f64]) {
    let mut i = 0;
    while i + 4 <= rows {
        let a0 = &a[i * kdim..(i + 1) * kdim];
        let a1 = &a[(i + 1) * kdim..(i + 2) * kdim];
        let a2 = &a[(i + 2) * kdim..(i + 3) * kdim];
        let a3 = &a[(i + 3) * kdim..(i + 4) * kdim];
        let (block, _) = out[i * n..].split_at_mut(4 * n);
        let (o0, rest) = block.split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let mut j = 0;
        #[cfg(target_arch = "x86_64")]
        if std::is_x86_feature_detected!("avx2") {
            while j + 8 <= n {
                // SAFETY: `j + 8 <= n` bounds every b-row read and o-row
                // write; `a0..a3` are the four kdim-long lhs rows.
                unsafe {
                    simd::tile4x8(
                        a.as_ptr().add(i * kdim),
                        kdim,
                        1,
                        kdim,
                        b.as_ptr().add(j),
                        n,
                        [
                            o0.as_mut_ptr().add(j),
                            o1.as_mut_ptr().add(j),
                            o2.as_mut_ptr().add(j),
                            o3.as_mut_ptr().add(j),
                        ],
                    );
                }
                j += 8;
            }
        }
        while j + 8 <= n {
            let mut acc = [[0.0f64; 8]; 4];
            for k in 0..kdim {
                let bv = &b[k * n + j..k * n + j + 8];
                let (v0, v1, v2, v3) = (a0[k], a1[k], a2[k], a3[k]);
                for c in 0..8 {
                    acc[0][c] += v0 * bv[c];
                    acc[1][c] += v1 * bv[c];
                    acc[2][c] += v2 * bv[c];
                    acc[3][c] += v3 * bv[c];
                }
            }
            o0[j..j + 8].copy_from_slice(&acc[0]);
            o1[j..j + 8].copy_from_slice(&acc[1]);
            o2[j..j + 8].copy_from_slice(&acc[2]);
            o3[j..j + 8].copy_from_slice(&acc[3]);
            j += 8;
        }
        while j < n {
            let mut acc = [0.0f64; 4];
            for k in 0..kdim {
                let bv = b[k * n + j];
                acc[0] += a0[k] * bv;
                acc[1] += a1[k] * bv;
                acc[2] += a2[k] * bv;
                acc[3] += a3[k] * bv;
            }
            o0[j] = acc[0];
            o1[j] = acc[1];
            o2[j] = acc[2];
            o3[j] = acc[3];
            j += 1;
        }
        i += 4;
    }
    while i < rows {
        let arow = &a[i * kdim..(i + 1) * kdim];
        let orow = &mut out[i * n..(i + 1) * n];
        row_times_matrix(arow, b, n, orow);
        i += 1;
    }
}

/// One row of `matmul`: `orow += arow * rhs` with k-blocked in-order
/// accumulation, used for the `rows % 4` remainder of the 4x8 tile.
fn row_times_matrix(arow: &[f64], rhs_data: &[f64], n: usize, orow: &mut [f64]) {
    let kdim = arow.len();
    let mut k = 0;
    while k + 4 <= kdim {
        let (a0, a1, a2, a3) = (arow[k], arow[k + 1], arow[k + 2], arow[k + 3]);
        let b0 = &rhs_data[k * n..(k + 1) * n];
        let b1 = &rhs_data[(k + 1) * n..(k + 2) * n];
        let b2 = &rhs_data[(k + 2) * n..(k + 3) * n];
        let b3 = &rhs_data[(k + 3) * n..(k + 4) * n];
        for j in 0..n {
            let mut o = orow[j];
            o += a0 * b0[j];
            o += a1 * b1[j];
            o += a2 * b2[j];
            o += a3 * b3[j];
            orow[j] = o;
        }
        k += 4;
    }
    while k < kdim {
        let a = arow[k];
        let brow = &rhs_data[k * n..(k + 1) * n];
        for (o, &b) in orow.iter_mut().zip(brow.iter()) {
            *o += a * b;
        }
        k += 1;
    }
}

#[cfg(target_arch = "x86_64")]
thread_local! {
    /// Reused per-thread buffer holding the materialized `rhs^T` for the
    /// AVX2 `matmul_transpose_rhs` fast path; avoids a per-call allocation.
    static TRANSPOSE_SCRATCH: std::cell::RefCell<Vec<f64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runtime-dispatched AVX2 micro-kernel for the 4x8 output tile.
///
/// Uses only `vmulpd`/`vaddpd` — never FMA, which would fuse the
/// multiply-add into a single rounding and break bitwise identity with the
/// reference kernels. Each vector lane executes exactly the scalar
/// schedule (one mul-round and one add-round per k, in k order), so the
/// results are bitwise-identical to the portable tile and to
/// [`reference`]; the differential tests in `crates/nn/tests` exercise
/// this path on any AVX2 host.
#[cfg(target_arch = "x86_64")]
mod simd {
    /// One 4x8 output tile accumulated across the whole `k` sweep.
    ///
    /// `a` addresses the four lhs scalars as `a + k * k_stride +
    /// r * r_stride` (row-major lhs: `r_stride = kdim, k_stride = 1`;
    /// transposed lhs: `r_stride = 1, k_stride = m`). `b` points at the
    /// first rhs row offset to the tile's column, with row stride `bn`.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (checked by the caller via `is_x86_feature_detected`),
    /// `a` readable at `k * k_stride + r * r_stride` for all `k < kdim`,
    /// `r < 4`, `b` readable at `k * bn..k * bn + 8` for all `k < kdim`,
    /// and each pointer in `o` writable for 8 elements.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn tile4x8(
        a: *const f64,
        r_stride: usize,
        k_stride: usize,
        kdim: usize,
        b: *const f64,
        bn: usize,
        o: [*mut f64; 4],
    ) {
        use std::arch::x86_64::{
            _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd,
            _mm256_storeu_pd,
        };
        let mut acc = [_mm256_setzero_pd(); 8];
        for k in 0..kdim {
            let bp = b.add(k * bn);
            let blo = _mm256_loadu_pd(bp);
            let bhi = _mm256_loadu_pd(bp.add(4));
            let ak = a.add(k * k_stride);
            for r in 0..4 {
                let v = _mm256_set1_pd(*ak.add(r * r_stride));
                acc[2 * r] = _mm256_add_pd(acc[2 * r], _mm256_mul_pd(v, blo));
                acc[2 * r + 1] = _mm256_add_pd(acc[2 * r + 1], _mm256_mul_pd(v, bhi));
            }
        }
        for r in 0..4 {
            _mm256_storeu_pd(o[r], acc[2 * r]);
            _mm256_storeu_pd(o[r].add(4), acc[2 * r + 1]);
        }
    }
}

/// Tail of a `matmul_transpose_rhs` row: `orow[j] = arow . rhs_row_j` for
/// `j >= start`, in 4-wide then scalar dot blocks, each dot summing its
/// products in index order.
fn dot_row_tail(arow: &[f64], rhs_data: &[f64], kdim: usize, orow: &mut [f64], start: usize) {
    let p = orow.len();
    let mut j = start;
    while j + 4 <= p {
        let b0 = &rhs_data[j * kdim..(j + 1) * kdim];
        let b1 = &rhs_data[(j + 1) * kdim..(j + 2) * kdim];
        let b2 = &rhs_data[(j + 2) * kdim..(j + 3) * kdim];
        let b3 = &rhs_data[(j + 3) * kdim..(j + 4) * kdim];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        for (k, &a) in arow.iter().enumerate() {
            s0 += a * b0[k];
            s1 += a * b1[k];
            s2 += a * b2[k];
            s3 += a * b3[k];
        }
        orow[j] = s0;
        orow[j + 1] = s1;
        orow[j + 2] = s2;
        orow[j + 3] = s3;
        j += 4;
    }
    while j < p {
        let brow = &rhs_data[j * kdim..(j + 1) * kdim];
        let mut s = 0.0;
        for (&a, &b) in arow.iter().zip(brow.iter()) {
            s += a * b;
        }
        orow[j] = s;
        j += 1;
    }
}

/// Naive reference kernels: the plain triple loops the blocked kernels must
/// match bitwise (DESIGN.md §10). Retained outside `#[cfg(test)]` so the
/// differential proptests in `crates/nn/tests` and the bench exporter can
/// use them; not part of the supported API surface.
#[doc(hidden)]
pub mod reference {
    use super::Matrix;
    use crate::error::NnError;

    /// `a * b`, plain i-k-j loop, one in-order `+=` per product.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, NnError> {
        if a.cols != b.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul",
                lhs: (a.rows, a.cols),
                rhs: (b.rows, b.cols),
            });
        }
        let mut out = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for k in 0..a.cols {
                let av = a.data[i * a.cols + k];
                let brow = &b.data[k * b.cols..(k + 1) * b.cols];
                let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Ok(out)
    }

    /// `a * b^T`, one sequential dot per output element.
    pub fn matmul_transpose_rhs(a: &Matrix, b: &Matrix) -> Result<Matrix, NnError> {
        if a.cols != b.cols {
            return Err(NnError::ShapeMismatch {
                op: "matmul_transpose_rhs",
                lhs: (a.rows, a.cols),
                rhs: (b.rows, b.cols),
            });
        }
        let mut out = Matrix::zeros(a.rows, b.rows);
        for i in 0..a.rows {
            let arow = a.row(i);
            for j in 0..b.rows {
                let brow = b.row(j);
                let mut s = 0.0;
                for (&x, &y) in arow.iter().zip(brow.iter()) {
                    s += x * y;
                }
                out.data[i * b.rows + j] = s;
            }
        }
        Ok(out)
    }

    /// `a^T * b`, plain k-i-j loop, one in-order `+=` per product.
    pub fn matmul_transpose_lhs(a: &Matrix, b: &Matrix) -> Result<Matrix, NnError> {
        if a.rows != b.rows {
            return Err(NnError::ShapeMismatch {
                op: "matmul_transpose_lhs",
                lhs: (a.rows, a.cols),
                rhs: (b.rows, b.cols),
            });
        }
        let mut out = Matrix::zeros(a.cols, b.cols);
        for k in 0..a.rows {
            let arow = a.row(k);
            let brow = &b.data[k * b.cols..(k + 1) * b.cols];
            for (i, &av) in arow.iter().enumerate() {
                let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = m(2, 3, &[0.0; 6]);
        let b = m(2, 3, &[0.0; 6]);
        assert!(matches!(
            a.matmul(&b),
            Err(NnError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn transpose_matmul_consistency() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(
            4,
            3,
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0],
        );
        let fast = a.matmul_transpose_rhs(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_lhs_consistency() {
        let a = m(3, 2, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(
            3,
            4,
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0],
        );
        let fast = a.matmul_transpose_lhs(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn broadcast_and_sum() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]).unwrap();
        assert_eq!(a.sum_rows(), vec![3.0, 6.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r1 = [1.0, 2.0];
        let r2 = [1.0];
        assert!(Matrix::from_rows(&[&r1, &r2]).is_err());
    }

    #[test]
    fn frobenius() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    /// Tiny deterministic value generator for kernel identity tests; no
    /// external RNG so the expected bit patterns never move.
    fn fill_lcg(seed: &mut u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| {
                *seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            })
            .collect()
    }

    /// The blocked kernels must be bitwise-identical to the naive reference
    /// across every k-remainder (0..=3 leftover lanes) and degenerate shape.
    #[test]
    fn blocked_kernels_match_reference_bitwise() {
        let shapes: &[(usize, usize, usize)] = &[
            (0, 0, 0),
            (0, 3, 2),
            (1, 1, 1),
            (1, 7, 1),
            (3, 4, 5),
            (5, 5, 5),
            (2, 6, 9),
            (7, 9, 3),
            (8, 8, 8),
            (13, 17, 11),
        ];
        let mut seed = 0x1234_5678_9abc_def0u64;
        for &(mm, kk, nn) in shapes {
            let a = m(mm, kk, &fill_lcg(&mut seed, mm * kk));
            let b = m(kk, nn, &fill_lcg(&mut seed, kk * nn));
            let fast = a.matmul(&b).unwrap();
            let slow = reference::matmul(&a, &b).unwrap();
            assert_bits_eq(&fast, &slow, "matmul", mm, kk, nn);

            let bt = b.transpose();
            let fast = a.matmul_transpose_rhs(&bt).unwrap();
            let slow = reference::matmul_transpose_rhs(&a, &bt).unwrap();
            assert_bits_eq(&fast, &slow, "matmul_transpose_rhs", mm, kk, nn);

            let at = a.transpose();
            let fast = at.matmul_transpose_lhs(&b).unwrap();
            let slow = reference::matmul_transpose_lhs(&at, &b).unwrap();
            assert_bits_eq(&fast, &slow, "matmul_transpose_lhs", mm, kk, nn);
        }
    }

    fn assert_bits_eq(x: &Matrix, y: &Matrix, op: &str, mm: usize, kk: usize, nn: usize) {
        assert_eq!(
            (x.rows(), x.cols()),
            (y.rows(), y.cols()),
            "{op} {mm}x{kk}x{nn}"
        );
        for (i, (a, b)) in x.data().iter().zip(y.data().iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{op} {mm}x{kk}x{nn}: element {i} differs ({a} vs {b})"
            );
        }
    }

    /// Regression for the removed `if a == 0.0 {{ continue; }}` shortcut:
    /// `0 * NaN` and `0 * inf` are NaN and must reach the output, not be
    /// silently skipped as zero contributions.
    #[test]
    fn nan_and_inf_propagate_through_matmul() {
        let a = m(1, 3, &[0.0, 0.0, 0.0]);
        let b = m(3, 2, &[f64::NAN, f64::INFINITY, 2.0, 3.0, 4.0, 5.0]);
        let c = a.matmul(&b).unwrap();
        assert!(c.get(0, 0).is_nan(), "0 * NaN must propagate NaN");
        assert!(c.get(0, 1).is_nan(), "0 * inf contributes NaN");

        // Same contract for the transpose-lhs kernel, which had its own skip.
        let zrow = m(1, 1, &[0.0]);
        let bt = m(1, 2, &[f64::NAN, f64::INFINITY]);
        let c = zrow.matmul_transpose_lhs(&bt).unwrap();
        assert!(c.get(0, 0).is_nan());
        assert!(c.get(0, 1).is_nan());

        // And for the dot-product kernel.
        let z = m(1, 2, &[0.0, 0.0]);
        let w = m(1, 2, &[f64::INFINITY, 1.0]);
        let c = z.matmul_transpose_rhs(&w).unwrap();
        assert!(c.get(0, 0).is_nan());
    }

    #[test]
    fn negative_zero_columns_are_not_skipped() {
        // -0.0 == 0.0 under IEEE comparison, so the old skip also dropped
        // -0.0 rows; the blocked kernels must treat them like any value.
        let a = m(1, 1, &[-0.0]);
        let b = m(1, 1, &[f64::NAN]);
        assert!(a.matmul(&b).unwrap().get(0, 0).is_nan());
    }

    #[test]
    fn matmul_into_reuses_and_reshapes_scratch() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Matrix::zeros(7, 7); // wrong shape and stale data
        out.data_mut().fill(99.0);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!((out.rows(), out.cols()), (2, 2));
        assert_eq!(out.data(), &[58.0, 64.0, 139.0, 154.0]);
        // Repeated use must not accumulate into stale contents.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn reshape_zero_fills_and_keeps_capacity() {
        let mut x = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let cap = x.data.capacity();
        x.reshape(1, 3);
        assert_eq!((x.rows(), x.cols()), (1, 3));
        assert_eq!(x.data(), &[0.0, 0.0, 0.0]);
        assert!(x.data.capacity() >= cap.min(3));
    }
}
