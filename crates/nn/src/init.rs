//! Weight initialization schemes.

use rand::Rng;

use crate::matrix::Matrix;

/// Xavier/Glorot-uniform initialization: entries drawn from
/// `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let limit = (6.0 / (rows + cols) as f64).sqrt();
    let mut m = Matrix::zeros(rows, cols);
    for v in m.data_mut() {
        *v = rng.gen_range(-limit..=limit);
    }
    m
}

/// Scaled initialization used for policy output layers: Xavier-uniform
/// multiplied by `scale` (small scales keep initial policies near-zero-mean,
/// which stabilizes early PPO updates).
pub fn scaled_output<R: Rng>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Matrix {
    let mut m = xavier_uniform(rows, cols, rng);
    m.scale(scale);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(8, 4, &mut rng);
        let limit = (6.0 / 12.0f64).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(3));
        let b = xavier_uniform(5, 5, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_output_shrinks() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = scaled_output(6, 6, 0.01, &mut rng);
        assert!(m.frobenius_norm() < 0.1);
    }
}
