//! Multi-layer perceptrons with manual reverse-mode gradients.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::error::NnError;
use crate::layer::{Dense, DenseCache, DenseGrads};
use crate::matrix::Matrix;

/// A feed-forward network: a stack of [`Dense`] layers.
///
/// ```
/// use imap_nn::{Activation, Mlp};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&[3, 16, 2], Activation::Tanh, 0.01, &mut rng).unwrap();
/// let y = mlp.infer(&[0.1, -0.2, 0.3]).unwrap();
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Forward-pass caches for a whole network, consumed by [`Mlp::backward`].
#[derive(Debug, Clone)]
pub struct MlpCache {
    caches: Vec<DenseCache>,
    output: Matrix,
}

impl MlpCache {
    /// The network output for the cached batch.
    pub fn output(&self) -> &Matrix {
        &self.output
    }
}

/// Reusable ping-pong buffers for [`Mlp::forward_scratch`].
///
/// One scratch can be shared across networks of different widths; buffers are
/// reshaped (retaining capacity) on every call, so steady-state inference
/// performs zero heap allocation.
#[derive(Debug, Clone)]
pub struct MlpScratch {
    a: Matrix,
    b: Matrix,
}

impl MlpScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MlpScratch {
            a: Matrix::zeros(0, 0),
            b: Matrix::zeros(0, 0),
        }
    }
}

impl Default for MlpScratch {
    fn default() -> Self {
        MlpScratch::new()
    }
}

/// Parameter gradients for a whole network, one entry per layer.
#[derive(Debug, Clone)]
pub struct MlpGrads {
    /// Per-layer parameter gradients, input-to-output order.
    pub layers: Vec<DenseGrads>,
}

impl MlpGrads {
    /// A zero gradient matching `mlp`'s architecture.
    pub fn zeros_like(mlp: &Mlp) -> Self {
        MlpGrads {
            layers: mlp
                .layers
                .iter()
                .map(|l| DenseGrads {
                    dw: Matrix::zeros(l.w.rows(), l.w.cols()),
                    db: vec![0.0; l.b.len()],
                })
                .collect(),
        }
    }

    /// Accumulates another gradient into this one.
    pub fn add_assign(&mut self, rhs: &MlpGrads) -> Result<(), NnError> {
        for (a, b) in self.layers.iter_mut().zip(rhs.layers.iter()) {
            a.dw.add_assign(&b.dw)?;
            for (x, y) in a.db.iter_mut().zip(b.db.iter()) {
                *x += y;
            }
        }
        Ok(())
    }

    /// Scales every gradient entry by `s`.
    pub fn scale(&mut self, s: f64) {
        for g in &mut self.layers {
            g.dw.scale(s);
            for v in &mut g.db {
                *v *= s;
            }
        }
    }

    /// Flattens into one parameter-ordered vector (matches [`Mlp::params`]).
    pub fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for g in &self.layers {
            out.extend_from_slice(g.dw.data());
            out.extend_from_slice(&g.db);
        }
        out
    }

    /// Global l2 norm of the gradient.
    pub fn norm(&self) -> f64 {
        self.flatten().iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Mlp {
    /// Builds an MLP with `hidden` tanh-ish layers and a linear output head.
    ///
    /// `sizes` is `[input, h1, h2, ..., output]`; hidden layers use
    /// `hidden_act`, the final layer is linear. The output layer's weights are
    /// scaled by `out_scale` (use a small value like `0.01` for policy means).
    pub fn new<R: Rng>(
        sizes: &[usize],
        hidden_act: Activation,
        out_scale: f64,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        if sizes.len() < 2 {
            return Err(NnError::EmptyNetwork);
        }
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let last = i == sizes.len() - 2;
            let act = if last { Activation::Linear } else { hidden_act };
            let layer = if last {
                Dense::new_scaled(sizes[i], sizes[i + 1], act, out_scale, rng)
            } else {
                Dense::new(sizes[i], sizes[i + 1], act, rng)
            };
            layers.push(layer);
        }
        Ok(Mlp { layers })
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].output_dim()
    }

    /// Borrow of the layer stack.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Flattens all parameters into one vector (layer order: `W` row-major,
    /// then `b`, for each layer input-to-output).
    pub fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(l.w.data());
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Overwrites all parameters from a flat vector produced in
    /// [`Mlp::params`] order.
    pub fn set_params(&mut self, params: &[f64]) -> Result<(), NnError> {
        if params.len() != self.param_count() {
            return Err(NnError::ParamLength {
                expected: self.param_count(),
                got: params.len(),
            });
        }
        let mut off = 0;
        for l in &mut self.layers {
            let wlen = l.w.rows() * l.w.cols();
            l.w.data_mut().copy_from_slice(&params[off..off + wlen]);
            off += wlen;
            let blen = l.b.len();
            l.b.copy_from_slice(&params[off..off + blen]);
            off += blen;
        }
        Ok(())
    }

    /// Batch forward pass with caches for a later backward pass.
    pub fn forward(&self, x: &Matrix) -> Result<MlpCache, NnError> {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for l in &self.layers {
            let (out, cache) = l.forward(&cur)?;
            caches.push(cache);
            cur = out;
        }
        Ok(MlpCache {
            caches,
            output: cur,
        })
    }

    /// Allocation-free batch forward pass for inference.
    ///
    /// Ping-pongs between the two scratch buffers, one `forward_into` per
    /// layer; the returned reference points into `scratch`. Output is
    /// bitwise-identical to [`Mlp::forward`] — the per-layer kernels and the
    /// activation application are the same code paths.
    pub fn forward_scratch<'s>(
        &self,
        x: &Matrix,
        scratch: &'s mut MlpScratch,
    ) -> Result<&'s Matrix, NnError> {
        let MlpScratch { a, b } = scratch;
        let (mut cur, mut next) = (a, b);
        self.layers[0].forward_into(x, cur)?;
        for l in &self.layers[1..] {
            l.forward_into(cur, next)?;
            std::mem::swap(&mut cur, &mut next);
        }
        Ok(cur)
    }

    /// Convenience single-sample inference without gradient caches.
    pub fn infer(&self, x: &[f64]) -> Result<Vec<f64>, NnError> {
        let cache = self.forward(&Matrix::from_row(x))?;
        Ok(cache.output.row(0).to_vec())
    }

    /// Backward pass: given `dL/d output`, returns parameter gradients and
    /// `dL/d input`.
    pub fn backward(&self, cache: &MlpCache, dout: &Matrix) -> Result<(MlpGrads, Matrix), NnError> {
        let mut grads = vec![None; self.layers.len()];
        let mut d = dout.clone();
        for (i, l) in self.layers.iter().enumerate().rev() {
            let (g, dx) = l.backward(&cache.caches[i], &d)?;
            grads[i] = Some(g);
            d = dx;
        }
        Ok((
            MlpGrads {
                layers: grads.into_iter().map(|g| g.expect("filled")).collect(),
            },
            d,
        ))
    }

    /// Applies a flat parameter update `p <- p + delta` (used by optimizers).
    pub fn apply_delta(&mut self, delta: &[f64]) -> Result<(), NnError> {
        if delta.len() != self.param_count() {
            return Err(NnError::ParamLength {
                expected: self.param_count(),
                got: delta.len(),
            });
        }
        let mut p = self.params();
        for (a, b) in p.iter_mut().zip(delta.iter()) {
            *a += b;
        }
        self.set_params(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&[3, 8, 8, 2], Activation::Tanh, 1.0, &mut rng).unwrap()
    }

    #[test]
    fn rejects_trivial_spec() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            Mlp::new(&[4], Activation::Tanh, 1.0, &mut rng),
            Err(NnError::EmptyNetwork)
        ));
    }

    #[test]
    fn param_roundtrip() {
        let mut a = net(1);
        let p = a.params();
        assert_eq!(p.len(), a.param_count());
        let mut p2 = p.clone();
        for v in &mut p2 {
            *v += 0.5;
        }
        a.set_params(&p2).unwrap();
        assert_eq!(a.params(), p2);
    }

    #[test]
    fn set_params_length_check() {
        let mut a = net(2);
        assert!(matches!(
            a.set_params(&[0.0]),
            Err(NnError::ParamLength { .. })
        ));
    }

    #[test]
    fn full_network_gradcheck() {
        let mlp = net(3);
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.9], &[1.0, 0.0, -1.0]]).unwrap();
        let loss = |m: &Mlp| -> f64 {
            let c = m.forward(&x).unwrap();
            c.output().data().iter().map(|v| v * v).sum::<f64>()
        };
        let cache = mlp.forward(&x).unwrap();
        let dout = cache.output().map(|v| 2.0 * v);
        let (grads, _) = mlp.backward(&cache, &dout).unwrap();
        gradcheck::check_mlp_grads(&mlp, loss, &grads, 1e-6, 1e-4).unwrap();
    }

    #[test]
    fn infer_matches_forward() {
        let mlp = net(4);
        let x = [0.3, 0.1, -0.2];
        let y1 = mlp.infer(&x).unwrap();
        let y2 = mlp.forward(&Matrix::from_row(&x)).unwrap();
        assert_eq!(y1.as_slice(), y2.output().row(0));
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let mlp = net(5);
        let x = Matrix::from_row(&[0.5, 0.5, 0.5]);
        let cache = mlp.forward(&x).unwrap();
        let dout = cache.output().map(|_| 1.0);
        let (g, _) = mlp.backward(&cache, &dout).unwrap();
        let mut acc = MlpGrads::zeros_like(&mlp);
        acc.add_assign(&g).unwrap();
        acc.add_assign(&g).unwrap();
        acc.scale(0.5);
        let a = acc.flatten();
        let b = g.flatten();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn forward_scratch_matches_forward_bitwise() {
        let mlp = net(7);
        let mut scratch = MlpScratch::new();
        // Different batch sizes through the same scratch: reshape must not
        // leak state between calls.
        let batches = [
            Matrix::from_rows(&[&[0.2, -0.4, 0.9], &[1.0, 0.0, -1.0], &[0.0, 0.0, 0.0]]).unwrap(),
            Matrix::from_row(&[0.3, 0.1, -0.2]),
            Matrix::from_rows(&[&[5.0, -5.0, 0.5], &[0.1, 0.2, 0.3]]).unwrap(),
        ];
        for x in &batches {
            let full = mlp.forward(x).unwrap();
            let fast = mlp.forward_scratch(x, &mut scratch).unwrap();
            assert_eq!((fast.rows(), fast.cols()), (x.rows(), mlp.output_dim()));
            for (a, b) in full.output().data().iter().zip(fast.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// A diverged (NaN/∞) weight must surface at the network output even for
    /// all-zero observations — the case the old `a == 0.0` kernel skip hid.
    #[test]
    fn nan_and_inf_weights_propagate_through_mlp_forward() {
        for poison in [f64::NAN, f64::INFINITY] {
            let mut mlp = net(8);
            mlp.layers[0].w.set(0, 0, poison);
            let y = mlp.infer(&[0.0, 0.0, 0.0]).unwrap();
            assert!(
                y.iter().any(|v| v.is_nan()),
                "0 * {poison} weight must not be silently swallowed"
            );
        }
    }

    #[test]
    fn serde_roundtrip() {
        let mlp = net(6);
        let s = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&s).unwrap();
        // JSON decimal round-trips can differ by one ULP.
        for (a, b) in back.params().iter().zip(mlp.params().iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
