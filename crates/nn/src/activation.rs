//! Elementwise activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// An elementwise activation function.
///
/// All variants are monotone non-decreasing, which the interval-bound
/// propagation in [`crate::ibp`] relies on: a monotone activation maps an
/// input interval `[l, u]` exactly to `[f(l), f(u)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity; used for output layers.
    Linear,
    /// Hyperbolic tangent; the default hidden activation for control policies.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Softplus `ln(1 + e^x)`, a smooth positive function used for value-style
    /// heads that must stay differentiable everywhere.
    Softplus,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Linear => x,
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Softplus => softplus(x),
        }
    }

    /// Derivative of the activation expressed in terms of the *pre*-activation
    /// input `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Linear => 1.0,
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Softplus => sigmoid(x),
        }
    }

    /// True if the function is monotone non-decreasing (all variants are; the
    /// method exists so IBP can assert its own precondition).
    #[inline]
    pub fn is_monotone(self) -> bool {
        true
    }
}

/// Numerically stable softplus.
#[inline]
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 4] = [
        Activation::Linear,
        Activation::Tanh,
        Activation::Relu,
        Activation::Softplus,
    ];

    #[test]
    fn derivatives_match_finite_difference() {
        let h = 1e-6;
        for act in ACTS {
            for &x in &[-2.0, -0.5, 0.3, 1.7, 4.0] {
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let an = act.derivative(x);
                assert!(
                    (fd - an).abs() < 1e-5,
                    "{act:?} at {x}: fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn softplus_extremes_are_stable() {
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!(softplus(-100.0) > 0.0);
        assert!(softplus(-100.0) < 1e-30);
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[-5.0, -1.0, 0.0, 2.0, 8.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn all_monotone() {
        for act in ACTS {
            assert!(act.is_monotone());
            for w in [-3.0, -1.0, 0.0, 1.0, 3.0].windows(2) {
                assert!(act.apply(w[0]) <= act.apply(w[1]) + 1e-12);
            }
        }
    }
}
