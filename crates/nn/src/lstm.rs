//! A single-layer LSTM with full backpropagation-through-time.
//!
//! The paper's ATLA-SA trains its victim with an LSTM policy (Zhang et al.
//! \[68\]); the experiment harness substitutes the MLP used everywhere else
//! (documented in `DESIGN.md`), but the recurrent substrate is provided
//! here — gradient-checked BPTT, Adam-compatible flat parameters, serde —
//! for recurrent-victim extensions.
//!
//! Layout: an [`LstmCell`] computing the standard gated recurrence
//!
//! ```text
//! i = σ(W_i [x; h] + b_i)    f = σ(W_f [x; h] + b_f)
//! o = σ(W_o [x; h] + b_o)    g = tanh(W_g [x; h] + b_g)
//! c' = f ⊙ c + i ⊙ g         h' = o ⊙ tanh(c')
//! ```
//!
//! plus a linear output head, wrapped as [`Lstm`].

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::sigmoid;
use crate::error::NnError;
use crate::init;
use crate::matrix::Matrix;

/// The recurrent cell. Gate weights are stacked `[i; f; o; g]` along the
/// output dimension: `w` has shape `(4·hidden) x (input + hidden)` and `b`
/// length `4·hidden` (forget-gate biases initialized to 1, the standard
/// trick against early vanishing).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmCell {
    w: Matrix,
    b: Vec<f64>,
    input: usize,
    hidden: usize,
}

/// Recurrent state `(h, c)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden activation.
    pub h: Vec<f64>,
    /// Cell memory.
    pub c: Vec<f64>,
}

impl LstmState {
    /// The zero state for a cell with `hidden` units.
    pub fn zero(hidden: usize) -> Self {
        LstmState {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// Per-step forward cache for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    o: Vec<f64>,
    g: Vec<f64>,
    tanh_c: Vec<f64>,
}

impl LstmCell {
    /// Creates a cell with Xavier-initialized weights.
    pub fn new<R: Rng>(input: usize, hidden: usize, rng: &mut R) -> Self {
        let w = init::xavier_uniform(4 * hidden, input + hidden, rng);
        let mut b = vec![0.0; 4 * hidden];
        for v in b.iter_mut().take(2 * hidden).skip(hidden) {
            *v = 1.0; // forget-gate bias
        }
        LstmCell {
            w,
            b,
            input,
            hidden,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    fn step(&self, x: &[f64], state: &LstmState) -> (LstmState, StepCache) {
        let h = self.hidden;
        let mut gates = self.b.clone();
        for (r, gate) in gates.iter_mut().enumerate() {
            let row = self.w.row(r);
            let mut acc = 0.0;
            for (j, &xv) in x.iter().enumerate() {
                acc += row[j] * xv;
            }
            for (j, &hv) in state.h.iter().enumerate() {
                acc += row[self.input + j] * hv;
            }
            *gate += acc;
        }
        let mut i = vec![0.0; h];
        let mut f = vec![0.0; h];
        let mut o = vec![0.0; h];
        let mut g = vec![0.0; h];
        for k in 0..h {
            i[k] = sigmoid(gates[k]);
            f[k] = sigmoid(gates[h + k]);
            o[k] = sigmoid(gates[2 * h + k]);
            g[k] = gates[3 * h + k].tanh();
        }
        let mut c = vec![0.0; h];
        let mut tanh_c = vec![0.0; h];
        let mut h_new = vec![0.0; h];
        for k in 0..h {
            c[k] = f[k] * state.c[k] + i[k] * g[k];
            tanh_c[k] = c[k].tanh();
            h_new[k] = o[k] * tanh_c[k];
        }
        (
            LstmState { h: h_new, c },
            StepCache {
                x: x.to_vec(),
                h_prev: state.h.clone(),
                c_prev: state.c.clone(),
                i,
                f,
                o,
                g,
                tanh_c,
            },
        )
    }
}

/// An LSTM with a linear output head, operating on sequences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    cell: LstmCell,
    /// Output head weight, shape `output x hidden`.
    w_out: Matrix,
    /// Output head bias.
    b_out: Vec<f64>,
}

/// Forward cache over a sequence.
pub struct LstmCache {
    steps: Vec<StepCache>,
    outputs: Vec<Vec<f64>>,
}

impl LstmCache {
    /// The per-step outputs.
    pub fn outputs(&self) -> &[Vec<f64>] {
        &self.outputs
    }
}

impl Lstm {
    /// Creates an LSTM `input -> hidden -> output`.
    pub fn new<R: Rng>(
        input: usize,
        hidden: usize,
        output: usize,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        if input == 0 || hidden == 0 || output == 0 {
            return Err(NnError::EmptyNetwork);
        }
        Ok(Lstm {
            cell: LstmCell::new(input, hidden, rng),
            w_out: init::xavier_uniform(output, hidden, rng),
            b_out: vec![0.0; output],
        })
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.cell.input
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.w_out.rows()
    }

    /// Hidden dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.cell.hidden
    }

    /// Total scalar parameter count (cell + head).
    pub fn param_count(&self) -> usize {
        self.cell.param_count() + self.w_out.rows() * self.w_out.cols() + self.b_out.len()
    }

    /// Flat parameters: cell `w` row-major, cell `b`, head `w`, head `b`.
    pub fn params(&self) -> Vec<f64> {
        let mut p = Vec::with_capacity(self.param_count());
        p.extend_from_slice(self.cell.w.data());
        p.extend_from_slice(&self.cell.b);
        p.extend_from_slice(self.w_out.data());
        p.extend_from_slice(&self.b_out);
        p
    }

    /// Overwrites parameters from a flat vector.
    pub fn set_params(&mut self, params: &[f64]) -> Result<(), NnError> {
        if params.len() != self.param_count() {
            return Err(NnError::ParamLength {
                expected: self.param_count(),
                got: params.len(),
            });
        }
        let mut off = 0;
        let wlen = self.cell.w.rows() * self.cell.w.cols();
        self.cell
            .w
            .data_mut()
            .copy_from_slice(&params[off..off + wlen]);
        off += wlen;
        let blen = self.cell.b.len();
        self.cell.b.copy_from_slice(&params[off..off + blen]);
        off += blen;
        let olen = self.w_out.rows() * self.w_out.cols();
        self.w_out
            .data_mut()
            .copy_from_slice(&params[off..off + olen]);
        off += olen;
        self.b_out.copy_from_slice(&params[off..]);
        Ok(())
    }

    /// Adds a flat delta to the parameters.
    pub fn apply_delta(&mut self, delta: &[f64]) -> Result<(), NnError> {
        let mut p = self.params();
        if delta.len() != p.len() {
            return Err(NnError::ParamLength {
                expected: p.len(),
                got: delta.len(),
            });
        }
        for (a, b) in p.iter_mut().zip(delta.iter()) {
            *a += b;
        }
        self.set_params(&p)
    }

    /// Runs the network over a sequence from the zero state, returning the
    /// per-step outputs and the BPTT cache.
    pub fn forward(&self, xs: &[Vec<f64>]) -> Result<(LstmCache, LstmState), NnError> {
        let mut state = LstmState::zero(self.cell.hidden);
        let mut steps = Vec::with_capacity(xs.len());
        let mut outputs = Vec::with_capacity(xs.len());
        for x in xs {
            if x.len() != self.cell.input {
                return Err(NnError::ParamLength {
                    expected: self.cell.input,
                    got: x.len(),
                });
            }
            let (next, cache) = self.cell.step(x, &state);
            let mut y = self.b_out.clone();
            for (r, yv) in y.iter_mut().enumerate() {
                let row = self.w_out.row(r);
                for (j, &hv) in next.h.iter().enumerate() {
                    *yv += row[j] * hv;
                }
            }
            outputs.push(y);
            steps.push(cache);
            state = next;
        }
        Ok((LstmCache { steps, outputs }, state))
    }

    /// Backpropagation through time.
    ///
    /// `douts[t]` is `dL/dy_t`. Returns the flat parameter gradient
    /// (aligned with [`Lstm::params`]).
    pub fn backward(&self, cache: &LstmCache, douts: &[Vec<f64>]) -> Result<Vec<f64>, NnError> {
        let h = self.cell.hidden;
        let n_in = self.cell.input;
        let t_len = cache.steps.len();
        if douts.len() != t_len {
            return Err(NnError::ParamLength {
                expected: t_len,
                got: douts.len(),
            });
        }
        let mut dw_cell = vec![0.0; self.cell.w.rows() * self.cell.w.cols()];
        let mut db_cell = vec![0.0; self.cell.b.len()];
        let mut dw_out = vec![0.0; self.w_out.rows() * self.w_out.cols()];
        let mut db_out = vec![0.0; self.b_out.len()];

        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        for t in (0..t_len).rev() {
            let sc = &cache.steps[t];
            // Head: y = W_out h + b_out. h here is the post-step hidden,
            // reconstructible as o ⊙ tanh(c).
            let h_t: Vec<f64> =
                sc.o.iter()
                    .zip(sc.tanh_c.iter())
                    .map(|(o, tc)| o * tc)
                    .collect();
            let dy = &douts[t];
            let mut dh = dh_next.clone();
            for (r, &dyr) in dy.iter().enumerate() {
                db_out[r] += dyr;
                let row_off = r * h;
                let w_row = self.w_out.row(r);
                for j in 0..h {
                    dw_out[row_off + j] += dyr * h_t[j];
                    dh[j] += dyr * w_row[j];
                }
            }
            // Through h' = o ⊙ tanh(c').
            let mut dc = dc_next.clone();
            let mut do_gate = vec![0.0; h];
            for k in 0..h {
                do_gate[k] = dh[k] * sc.tanh_c[k];
                dc[k] += dh[k] * sc.o[k] * (1.0 - sc.tanh_c[k] * sc.tanh_c[k]);
            }
            // Through c' = f ⊙ c + i ⊙ g.
            let mut di = vec![0.0; h];
            let mut df = vec![0.0; h];
            let mut dg = vec![0.0; h];
            let mut dc_prev = vec![0.0; h];
            for k in 0..h {
                df[k] = dc[k] * sc.c_prev[k];
                di[k] = dc[k] * sc.g[k];
                dg[k] = dc[k] * sc.i[k];
                dc_prev[k] = dc[k] * sc.f[k];
            }
            // Gate nonlinearity derivatives (pre-activations).
            let mut dgates = vec![0.0; 4 * h];
            for k in 0..h {
                dgates[k] = di[k] * sc.i[k] * (1.0 - sc.i[k]);
                dgates[h + k] = df[k] * sc.f[k] * (1.0 - sc.f[k]);
                dgates[2 * h + k] = do_gate[k] * sc.o[k] * (1.0 - sc.o[k]);
                dgates[3 * h + k] = dg[k] * (1.0 - sc.g[k] * sc.g[k]);
            }
            // Accumulate cell parameter grads and propagate into h_prev.
            let mut dh_prev = vec![0.0; h];
            let cols = n_in + h;
            for r in 0..4 * h {
                let dg_r = dgates[r];
                if dg_r == 0.0 {
                    continue;
                }
                db_cell[r] += dg_r;
                let row_off = r * cols;
                let w_row = self.cell.w.row(r);
                for j in 0..n_in {
                    dw_cell[row_off + j] += dg_r * sc.x[j];
                }
                for j in 0..h {
                    dw_cell[row_off + n_in + j] += dg_r * sc.h_prev[j];
                    dh_prev[j] += dg_r * w_row[n_in + j];
                }
            }
            dh_next = dh_prev;
            dc_next = dc_prev;
        }

        let mut flat = dw_cell;
        flat.extend(db_cell);
        flat.extend(dw_out);
        flat.extend(db_out);
        Ok(flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Lstm {
        Lstm::new(2, 6, 1, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    fn sequence() -> Vec<Vec<f64>> {
        (0..5)
            .map(|t| vec![(t as f64 * 0.7).sin(), (t as f64 * 0.3).cos()])
            .collect()
    }

    fn loss_of(lstm: &Lstm, xs: &[Vec<f64>]) -> f64 {
        let (cache, _) = lstm.forward(xs).unwrap();
        cache
            .outputs()
            .iter()
            .map(|y| y.iter().map(|v| v * v).sum::<f64>())
            .sum()
    }

    #[test]
    fn bptt_matches_finite_difference() {
        let lstm = net(1);
        let xs = sequence();
        let (cache, _) = lstm.forward(&xs).unwrap();
        let douts: Vec<Vec<f64>> = cache
            .outputs()
            .iter()
            .map(|y| y.iter().map(|v| 2.0 * v).collect())
            .collect();
        let analytic = lstm.backward(&cache, &douts).unwrap();
        let base = lstm.params();
        let h = 1e-6;
        for i in (0..base.len()).step_by(7) {
            let mut up = lstm.clone();
            let mut p = base.clone();
            p[i] += h;
            up.set_params(&p).unwrap();
            let mut down = lstm.clone();
            p[i] = base[i] - h;
            down.set_params(&p).unwrap();
            let numeric = (loss_of(&up, &xs) - loss_of(&down, &xs)) / (2.0 * h);
            assert!(
                (analytic[i] - numeric).abs() / (1.0 + numeric.abs()) < 1e-4,
                "param {i}: {} vs {numeric}",
                analytic[i]
            );
        }
    }

    #[test]
    fn param_roundtrip() {
        let mut lstm = net(2);
        let p = lstm.params();
        assert_eq!(p.len(), lstm.param_count());
        lstm.set_params(&p).unwrap();
        assert_eq!(lstm.params(), p);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let lstm = net(3);
        let h = lstm.hidden_dim();
        for k in 0..h {
            assert_eq!(lstm.cell.b[h + k], 1.0);
        }
        for k in 0..h {
            assert_eq!(lstm.cell.b[k], 0.0);
        }
    }

    #[test]
    fn state_carries_memory() {
        // A constant-zero input sequence after a spike: outputs must differ
        // from a never-spiked sequence (memory persists in `c`).
        let lstm = net(4);
        let spiked: Vec<Vec<f64>> = std::iter::once(vec![3.0, -3.0])
            .chain(std::iter::repeat_n(vec![0.0, 0.0], 4))
            .collect();
        let flat: Vec<Vec<f64>> = std::iter::repeat_n(vec![0.0, 0.0], 5).collect();
        let (c1, _) = lstm.forward(&spiked).unwrap();
        let (c2, _) = lstm.forward(&flat).unwrap();
        let last_diff = (c1.outputs()[4][0] - c2.outputs()[4][0]).abs();
        assert!(last_diff > 1e-6, "the spike must echo through the state");
    }

    /// The LSTM can learn a task an MLP cannot express: output the running
    /// sign-parity of the inputs (depends on the whole history).
    #[test]
    fn learns_running_parity() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lstm = Lstm::new(1, 8, 1, &mut rng).unwrap();
        let mut opt = Adam::new(lstm.param_count(), 1e-2);
        use rand::Rng;

        let make_example = |rng: &mut StdRng| -> (Vec<Vec<f64>>, Vec<f64>) {
            let xs: Vec<Vec<f64>> = (0..6)
                .map(|_| vec![if rng.gen_bool(0.5) { 1.0 } else { -1.0 }])
                .collect();
            let mut parity = 1.0;
            let targets = xs
                .iter()
                .map(|x| {
                    if x[0] < 0.0 {
                        parity = -parity;
                    }
                    parity
                })
                .collect();
            (xs, targets)
        };

        let eval_loss = |lstm: &Lstm, rng: &mut StdRng| -> f64 {
            let mut total = 0.0;
            for _ in 0..20 {
                let (xs, ts) = make_example(rng);
                let (cache, _) = lstm.forward(&xs).unwrap();
                for (y, t) in cache.outputs().iter().zip(ts.iter()) {
                    total += (y[0] - t).powi(2) / (20.0 * 6.0);
                }
            }
            total
        };

        let before = eval_loss(&lstm, &mut StdRng::seed_from_u64(99));
        for _ in 0..400 {
            let (xs, ts) = make_example(&mut rng);
            let (cache, _) = lstm.forward(&xs).unwrap();
            let douts: Vec<Vec<f64>> = cache
                .outputs()
                .iter()
                .zip(ts.iter())
                .map(|(y, t)| vec![2.0 * (y[0] - t) / 6.0])
                .collect();
            let grad = lstm.backward(&cache, &douts).unwrap();
            let delta = opt.step(&grad).unwrap();
            lstm.apply_delta(&delta).unwrap();
        }
        let after = eval_loss(&lstm, &mut StdRng::seed_from_u64(99));
        assert!(
            after < 0.5 * before,
            "LSTM should learn running parity: {before} -> {after}"
        );
    }

    #[test]
    fn rejects_wrong_input_dim() {
        let lstm = net(6);
        assert!(lstm.forward(&[vec![1.0]]).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let lstm = net(7);
        let s = serde_json::to_string(&lstm).unwrap();
        let back: Lstm = serde_json::from_str(&s).unwrap();
        for (a, b) in back.params().iter().zip(lstm.params().iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
