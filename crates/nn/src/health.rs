//! Numeric-health checks used by the training resilience layer.
//!
//! PPO-style training can silently corrupt a run long before anything
//! visibly fails: one NaN reward poisons the advantages, the advantages
//! poison the gradient, and the gradient poisons every parameter. The
//! divergence guard in `imap-rl` calls these helpers after each update to
//! catch that cascade at the iteration boundary, while the last good
//! iterate is still restorable.

/// True when every element is finite (no NaN, no ±Inf).
pub fn all_finite(xs: &[f64]) -> bool {
    xs.iter().all(|v| v.is_finite())
}

/// Index and value of the first non-finite element, if any.
pub fn first_non_finite(xs: &[f64]) -> Option<(usize, f64)> {
    xs.iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, &v)| (i, v))
}

/// Fraction of non-finite elements (0.0 for an empty slice).
pub fn non_finite_fraction(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let bad = xs.iter().filter(|v| !v.is_finite()).count();
    bad as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_finite_accepts_normal_values() {
        assert!(all_finite(&[0.0, -1.5, 1e300, f64::MIN_POSITIVE]));
        assert!(all_finite(&[]));
    }

    #[test]
    fn all_finite_rejects_nan_and_inf() {
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
        assert!(!all_finite(&[f64::NEG_INFINITY, 1.0]));
    }

    #[test]
    fn first_non_finite_reports_position() {
        let (i, v) = first_non_finite(&[1.0, 2.0, f64::NAN, f64::INFINITY]).unwrap();
        assert_eq!(i, 2);
        assert!(v.is_nan());
        assert!(first_non_finite(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn non_finite_fraction_counts() {
        assert_eq!(non_finite_fraction(&[]), 0.0);
        assert_eq!(non_finite_fraction(&[1.0, f64::NAN, f64::NAN, 2.0]), 0.5);
    }
}
