//! Diagonal-Gaussian policy head.
//!
//! Continuous-control policies in this workspace are `N(mu(s), diag(sigma^2))`
//! with a state-independent, learned `log_std` vector — the standard
//! parameterization used by PPO on MuJoCo-style tasks and by the paper's
//! adversarial policies. The head provides closed-form log-probability,
//! entropy, and KL divergence together with the analytic gradients the PPO
//! update needs.

use rand::Rng;
use rand_distr_normal::StandardNormal;
use serde::{Deserialize, Serialize};

/// `rand`'s Box–Muller standard normal via `Rng::sample` needs `rand_distr`;
/// to stay within the sanctioned dependency set we implement the
/// Marsaglia polar method locally.
mod rand_distr_normal {
    use rand::Rng;

    /// Distribution marker for a standard normal sample.
    pub struct StandardNormal;

    impl StandardNormal {
        /// Draws one `N(0, 1)` sample using the Marsaglia polar method.
        pub fn sample<R: Rng>(rng: &mut R) -> f64 {
            loop {
                let u: f64 = rng.gen_range(-1.0..1.0);
                let v: f64 = rng.gen_range(-1.0..1.0);
                let s = u * u + v * v;
                if s > 0.0 && s < 1.0 {
                    return u * (-2.0 * s.ln() / s).sqrt();
                }
            }
        }
    }
}

const LN_2PI: f64 = 1.837_877_066_409_345_3;

/// A diagonal Gaussian distribution head with learned log standard deviation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiagGaussian {
    /// Learned per-dimension log standard deviation.
    pub log_std: Vec<f64>,
}

impl DiagGaussian {
    /// Creates a head for `dim`-dimensional actions with initial
    /// `log_std = init` in every dimension.
    pub fn new(dim: usize, init: f64) -> Self {
        DiagGaussian {
            log_std: vec![init; dim],
        }
    }

    /// Action dimensionality.
    pub fn dim(&self) -> usize {
        self.log_std.len()
    }

    /// Per-dimension standard deviations.
    pub fn std(&self) -> Vec<f64> {
        self.log_std.iter().map(|l| l.exp()).collect()
    }

    /// Samples an action `a ~ N(mean, sigma^2)`.
    pub fn sample<R: Rng>(&self, mean: &[f64], rng: &mut R) -> Vec<f64> {
        mean.iter()
            .zip(self.log_std.iter())
            .map(|(&m, &l)| m + l.exp() * StandardNormal::sample(rng))
            .collect()
    }

    /// Samples into a caller-provided buffer (cleared first).
    ///
    /// Consumes the same RNG stream and performs the same arithmetic as
    /// [`DiagGaussian::sample`], so the two are bitwise-interchangeable; this
    /// variant just avoids the per-call allocation in batched rollout loops.
    pub fn sample_into<R: Rng>(&self, mean: &[f64], rng: &mut R, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            mean.iter()
                .zip(self.log_std.iter())
                .map(|(&m, &l)| m + l.exp() * StandardNormal::sample(rng)),
        );
    }

    /// Log-density `ln p(action | mean, sigma)`.
    pub fn log_prob(&self, mean: &[f64], action: &[f64]) -> f64 {
        debug_assert_eq!(mean.len(), self.log_std.len());
        debug_assert_eq!(action.len(), self.log_std.len());
        let mut lp = 0.0;
        for i in 0..self.log_std.len() {
            let std = self.log_std[i].exp();
            let z = (action[i] - mean[i]) / std;
            lp += -0.5 * z * z - self.log_std[i] - 0.5 * LN_2PI;
        }
        lp
    }

    /// Gradient of [`DiagGaussian::log_prob`] w.r.t. the mean and `log_std`.
    ///
    /// Returns `(d logp / d mean, d logp / d log_std)`.
    pub fn log_prob_grad(&self, mean: &[f64], action: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = self.log_std.len();
        let mut dmean = vec![0.0; n];
        let mut dlogstd = vec![0.0; n];
        for i in 0..n {
            let std = self.log_std[i].exp();
            let z = (action[i] - mean[i]) / std;
            dmean[i] = z / std;
            dlogstd[i] = z * z - 1.0;
        }
        (dmean, dlogstd)
    }

    /// Differential entropy `H = sum_i (log_std_i + 0.5 ln(2 pi e))`.
    pub fn entropy(&self) -> f64 {
        let per_dim = 0.5 * (LN_2PI + 1.0);
        self.log_std.iter().map(|l| l + per_dim).sum()
    }

    /// Gradient of the entropy w.r.t. `log_std` (identically one).
    pub fn entropy_grad(&self) -> Vec<f64> {
        vec![1.0; self.log_std.len()]
    }

    /// Closed-form `KL( N(mean_p, self) || N(mean_q, other) )`.
    pub fn kl(&self, mean_p: &[f64], other: &DiagGaussian, mean_q: &[f64]) -> f64 {
        debug_assert_eq!(self.log_std.len(), other.log_std.len());
        let mut kl = 0.0;
        for i in 0..self.log_std.len() {
            let sp = self.log_std[i].exp();
            let sq = other.log_std[i].exp();
            let dm = mean_p[i] - mean_q[i];
            kl += other.log_std[i] - self.log_std[i] + (sp * sp + dm * dm) / (2.0 * sq * sq) - 0.5;
        }
        kl
    }

    /// Gradient of [`DiagGaussian::kl`] w.r.t. `mean_p` (the first argument's
    /// mean). Used by the divergence-driven regularizer to push the live
    /// policy away from the mimic policy.
    pub fn kl_grad_mean_p(&self, mean_p: &[f64], other: &DiagGaussian, mean_q: &[f64]) -> Vec<f64> {
        (0..self.log_std.len())
            .map(|i| {
                let sq = other.log_std[i].exp();
                (mean_p[i] - mean_q[i]) / (sq * sq)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::numeric_gradient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_prob_standard_normal_at_mean() {
        let g = DiagGaussian::new(2, 0.0);
        let lp = g.log_prob(&[0.0, 0.0], &[0.0, 0.0]);
        assert!((lp - (-LN_2PI)).abs() < 1e-12);
    }

    #[test]
    fn log_prob_grads_match_fd() {
        let g = DiagGaussian::new(3, -0.3);
        let mean = [0.2, -0.5, 1.0];
        let action = [0.7, -0.1, 0.4];
        let (dmean, dlogstd) = g.log_prob_grad(&mean, &action);
        let fd_mean = numeric_gradient(|m| g.log_prob(m, &action), &mean, 1e-6);
        for (a, b) in dmean.iter().zip(fd_mean.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        let fd_ls = numeric_gradient(
            |ls| {
                let g2 = DiagGaussian {
                    log_std: ls.to_vec(),
                };
                g2.log_prob(&mean, &action)
            },
            &g.log_std,
            1e-6,
        );
        for (a, b) in dlogstd.iter().zip(fd_ls.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn entropy_increases_with_log_std() {
        let lo = DiagGaussian::new(4, -1.0);
        let hi = DiagGaussian::new(4, 0.0);
        assert!(hi.entropy() > lo.entropy());
    }

    #[test]
    fn kl_zero_iff_identical() {
        let g = DiagGaussian::new(3, -0.5);
        let m = [0.1, 0.2, 0.3];
        assert!(g.kl(&m, &g, &m).abs() < 1e-12);
        let other = DiagGaussian::new(3, 0.5);
        assert!(g.kl(&m, &other, &[0.0, 0.0, 0.0]) > 0.0);
    }

    #[test]
    fn kl_grad_matches_fd() {
        let p = DiagGaussian::new(2, -0.2);
        let q = DiagGaussian::new(2, 0.1);
        let mp = [0.4, -0.7];
        let mq = [0.0, 0.3];
        let an = p.kl_grad_mean_p(&mp, &q, &mq);
        let fd = numeric_gradient(|m| p.kl(m, &q, &mq), &mp, 1e-6);
        for (a, b) in an.iter().zip(fd.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn sample_into_matches_sample_bitwise() {
        let g = DiagGaussian::new(3, -0.4);
        let mean = [0.5, -1.0, 2.0];
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let mut buf = Vec::new();
        for _ in 0..10 {
            let a = g.sample(&mean, &mut r1);
            g.sample_into(&mean, &mut r2, &mut buf);
            assert_eq!(a.len(), buf.len());
            for (x, y) in a.iter().zip(buf.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn sample_statistics() {
        let g = DiagGaussian::new(1, 0.0);
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let mean = [2.0];
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let a = g.sample(&mean, &mut rng)[0];
            sum += a;
            sumsq += a * a;
        }
        let m = sum / n as f64;
        let var = sumsq / n as f64 - m * m;
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
