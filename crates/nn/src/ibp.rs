//! Interval Bound Propagation (IBP) for l∞-robustness of MLPs.
//!
//! The SA-regularizer, RADIAL, and WocaR defenses all need *sound* bounds on
//! how much a policy network's output can move when the input is perturbed
//! inside an l∞ ball of radius `eps`. The paper's implementations use convex
//! relaxations (auto_LiRPA); we substitute IBP, the cheapest sound relaxation,
//! which propagates axis-aligned boxes layer by layer:
//!
//! - affine layer: center `c -> W c + b`, radius `r -> |W| r`;
//! - monotone activation: `[l, u] -> [f(l), f(u)]`.
//!
//! IBP bounds are looser than LiRPA's but sound, which is all the defense
//! losses require (they penalize the *width* of the bound).

use crate::error::NnError;
use crate::mlp::Mlp;

/// An axis-aligned box `[lower, upper]` over a vector quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// Per-dimension lower bounds.
    pub lower: Vec<f64>,
    /// Per-dimension upper bounds.
    pub upper: Vec<f64>,
}

impl Interval {
    /// The l∞ ball of radius `eps` around `center`.
    pub fn linf_ball(center: &[f64], eps: f64) -> Self {
        Interval {
            lower: center.iter().map(|&c| c - eps).collect(),
            upper: center.iter().map(|&c| c + eps).collect(),
        }
    }

    /// An axis-aligned box with per-dimension radii (used when a raw-space
    /// l∞ ball is expressed in normalized coordinates).
    pub fn box_around(center: &[f64], radii: &[f64]) -> Self {
        Interval {
            lower: center
                .iter()
                .zip(radii.iter())
                .map(|(&c, &r)| c - r.abs())
                .collect(),
            upper: center
                .iter()
                .zip(radii.iter())
                .map(|(&c, &r)| c + r.abs())
                .collect(),
        }
    }

    /// Per-dimension widths `upper - lower`.
    pub fn widths(&self) -> Vec<f64> {
        self.upper
            .iter()
            .zip(self.lower.iter())
            .map(|(u, l)| u - l)
            .collect()
    }

    /// Maximum width across dimensions.
    pub fn max_width(&self) -> f64 {
        self.widths().into_iter().fold(0.0, f64::max)
    }

    /// True if `x` lies inside the box (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.iter()
            .zip(self.lower.iter().zip(self.upper.iter()))
            .all(|(&v, (&l, &u))| v >= l - 1e-12 && v <= u + 1e-12)
    }
}

/// Propagates an input interval through `mlp`, returning a sound interval on
/// the network output.
pub fn propagate(mlp: &Mlp, input: &Interval) -> Result<Interval, NnError> {
    if input.lower.len() != mlp.input_dim() {
        return Err(NnError::ParamLength {
            expected: mlp.input_dim(),
            got: input.lower.len(),
        });
    }
    let mut center: Vec<f64> = input
        .lower
        .iter()
        .zip(input.upper.iter())
        .map(|(l, u)| 0.5 * (l + u))
        .collect();
    let mut radius: Vec<f64> = input
        .lower
        .iter()
        .zip(input.upper.iter())
        .map(|(l, u)| 0.5 * (u - l))
        .collect();
    for layer in mlp.layers() {
        let out_dim = layer.output_dim();
        let mut new_center = vec![0.0; out_dim];
        let mut new_radius = vec![0.0; out_dim];
        for o in 0..out_dim {
            let wrow = layer.w.row(o);
            let mut c = layer.b[o];
            let mut r = 0.0;
            for (i, &w) in wrow.iter().enumerate() {
                c += w * center[i];
                r += w.abs() * radius[i];
            }
            new_center[o] = c;
            new_radius[o] = r;
        }
        debug_assert!(layer.act.is_monotone());
        // Monotone activation maps [c-r, c+r] exactly to [f(c-r), f(c+r)];
        // re-center the box afterwards.
        for o in 0..out_dim {
            let lo = layer.act.apply(new_center[o] - new_radius[o]);
            let hi = layer.act.apply(new_center[o] + new_radius[o]);
            new_center[o] = 0.5 * (lo + hi);
            new_radius[o] = 0.5 * (hi - lo);
        }
        center = new_center;
        radius = new_radius;
    }
    Ok(Interval {
        lower: center
            .iter()
            .zip(radius.iter())
            .map(|(c, r)| c - r)
            .collect(),
        upper: center
            .iter()
            .zip(radius.iter())
            .map(|(c, r)| c + r)
            .collect(),
    })
}

/// Sound upper bound on `max_{|d|_inf <= eps} |mlp(x + d) - mlp(x)|_inf`,
/// the worst-case output deviation used by the SA and RADIAL losses.
pub fn output_deviation_bound(mlp: &Mlp, x: &[f64], eps: f64) -> Result<f64, NnError> {
    deviation_of(mlp, x, &Interval::linf_ball(x, eps))
}

/// [`output_deviation_bound`] with per-dimension radii.
pub fn output_deviation_bound_radii(mlp: &Mlp, x: &[f64], radii: &[f64]) -> Result<f64, NnError> {
    deviation_of(mlp, x, &Interval::box_around(x, radii))
}

fn deviation_of(mlp: &Mlp, x: &[f64], input: &Interval) -> Result<f64, NnError> {
    let bounds = propagate(mlp, input)?;
    let nominal = mlp.infer(x)?;
    let mut worst = 0.0f64;
    for (i, &nom) in nominal.iter().enumerate() {
        worst = worst
            .max((bounds.upper[i] - nom).abs())
            .max((nom - bounds.lower[i]).abs());
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn net(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&[3, 6, 6, 2], Activation::Tanh, 1.0, &mut rng).unwrap()
    }

    #[test]
    fn zero_radius_is_exact() {
        let mlp = net(1);
        let x = [0.4, -0.3, 0.8];
        let b = propagate(&mlp, &Interval::linf_ball(&x, 0.0)).unwrap();
        let y = mlp.infer(&x).unwrap();
        for (i, &yv) in y.iter().enumerate() {
            assert!((b.lower[i] - yv).abs() < 1e-9);
            assert!((b.upper[i] - yv).abs() < 1e-9);
        }
    }

    #[test]
    fn bounds_are_sound_for_sampled_perturbations() {
        let mlp = net(2);
        let mut rng = StdRng::seed_from_u64(99);
        let x = [0.1, 0.5, -0.9];
        let eps = 0.2;
        let b = propagate(&mlp, &Interval::linf_ball(&x, eps)).unwrap();
        for _ in 0..500 {
            let xp: Vec<f64> = x.iter().map(|&v| v + rng.gen_range(-eps..=eps)).collect();
            let y = mlp.infer(&xp).unwrap();
            assert!(b.contains(&y), "output {y:?} escaped bounds {b:?}");
        }
    }

    #[test]
    fn bounds_widen_with_eps() {
        let mlp = net(3);
        let x = [0.0, 0.0, 0.0];
        let small = propagate(&mlp, &Interval::linf_ball(&x, 0.01)).unwrap();
        let large = propagate(&mlp, &Interval::linf_ball(&x, 0.3)).unwrap();
        assert!(large.max_width() >= small.max_width());
    }

    #[test]
    fn deviation_bound_dominates_samples() {
        let mlp = net(4);
        let mut rng = StdRng::seed_from_u64(5);
        let x = [0.2, -0.2, 0.6];
        let eps = 0.1;
        let bound = output_deviation_bound(&mlp, &x, eps).unwrap();
        let y0 = mlp.infer(&x).unwrap();
        for _ in 0..300 {
            let xp: Vec<f64> = x.iter().map(|&v| v + rng.gen_range(-eps..=eps)).collect();
            let y = mlp.infer(&xp).unwrap();
            let dev = y
                .iter()
                .zip(y0.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(dev <= bound + 1e-9);
        }
    }

    #[test]
    fn wrong_input_dim_errors() {
        let mlp = net(6);
        assert!(propagate(&mlp, &Interval::linf_ball(&[0.0], 0.1)).is_err());
    }
}
