//! First-order optimizers over flat parameter vectors.

use serde::{Deserialize, Serialize};

use crate::error::NnError;

/// A first-order optimizer: turns a gradient into a parameter *delta*
/// (already negated, i.e. ready to be added to the parameters for descent).
pub trait Optimizer {
    /// Computes the descent step for `grad`. The returned vector has the same
    /// length and should be **added** to the parameters.
    fn step(&mut self, grad: &[f64]) -> Result<Vec<f64>, NnError>;

    /// Resets internal state (moment estimates, step counters).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates SGD for a parameter vector of length `dim`.
    pub fn new(dim: usize, lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: vec![0.0; dim],
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, grad: &[f64]) -> Result<Vec<f64>, NnError> {
        if grad.len() != self.velocity.len() {
            return Err(NnError::ParamLength {
                expected: self.velocity.len(),
                got: grad.len(),
            });
        }
        let mut delta = vec![0.0; grad.len()];
        for i in 0..grad.len() {
            self.velocity[i] = self.momentum * self.velocity[i] - self.lr * grad[i];
            delta[i] = self.velocity[i];
        }
        Ok(delta)
    }

    fn reset(&mut self) {
        self.velocity.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Adam (Kingma & Ba) with bias-corrected moment estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam with the standard hyperparameters
    /// `beta1 = 0.9, beta2 = 0.999, eps = 1e-8`.
    pub fn new(dim: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }

    /// Current step count.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Borrow of the internal moment estimates `(m, v)` for checkpointing.
    pub fn moments(&self) -> (&[f64], &[f64]) {
        (&self.m, &self.v)
    }

    /// Restores internal state from a checkpoint: first and second moment
    /// vectors plus the step counter. Both vectors must match the
    /// optimizer's parameter dimension.
    pub fn restore_state(&mut self, m: Vec<f64>, v: Vec<f64>, t: u64) -> Result<(), NnError> {
        if m.len() != self.m.len() || v.len() != self.v.len() {
            return Err(NnError::ParamLength {
                expected: self.m.len(),
                got: if m.len() != self.m.len() {
                    m.len()
                } else {
                    v.len()
                },
            });
        }
        self.m = m;
        self.v = v;
        self.t = t;
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self, grad: &[f64]) -> Result<Vec<f64>, NnError> {
        if grad.len() != self.m.len() {
            return Err(NnError::ParamLength {
                expected: self.m.len(),
                got: grad.len(),
            });
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let mut delta = vec![0.0; grad.len()];
        for i in 0..grad.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            delta[i] = -self.lr * mhat / (vhat.sqrt() + self.eps);
        }
        Ok(delta)
    }

    fn reset(&mut self) {
        self.m.iter_mut().for_each(|v| *v = 0.0);
        self.v.iter_mut().for_each(|v| *v = 0.0);
        self.t = 0;
    }
}

/// Clips a gradient to a maximum global l2 norm, in place. Returns the norm
/// before clipping.
pub fn clip_grad_norm(grad: &mut [f64], max_norm: f64) -> f64 {
    let norm = grad.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for g in grad.iter_mut() {
            *g *= s;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 and check convergence.
    fn run_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = 10.0f64;
        for _ in 0..steps {
            let grad = [2.0 * (x - 3.0)];
            let d = opt.step(&grad).unwrap();
            x += d[0];
        }
        x
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(1, 0.1, 0.0);
        let x = run_quadratic(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(1, 0.3);
        let x = run_quadratic(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_rejects_wrong_length() {
        let mut opt = Adam::new(3, 0.01);
        assert!(opt.step(&[1.0]).is_err());
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(2, 0.01);
        opt.step(&[1.0, -1.0]).unwrap();
        assert_eq!(opt.steps(), 1);
        opt.reset();
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    fn clip_grad_norm_caps_large_gradients() {
        let mut g = vec![3.0, 4.0];
        let before = clip_grad_norm(&mut g, 1.0);
        assert!((before - 5.0).abs() < 1e-12);
        let after = g.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((after - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let mut g = vec![0.1, 0.1];
        clip_grad_norm(&mut g, 1.0);
        assert_eq!(g, vec![0.1, 0.1]);
    }
}
