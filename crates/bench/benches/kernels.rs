//! Criterion benchmarks for the register-blocked matmul kernels against the
//! retained naive reference (`imap_nn::matrix::reference`), and for the
//! scratch-buffer batched forward path against the allocating one.
//!
//! The differential tests in `crates/nn/tests` prove the fast and slow
//! paths are bitwise-identical; these benchmarks price the difference.
//! `scripts/bench_export.rs` re-measures the same pairs with plain timers
//! and writes `BENCH_kernels.json` for CI artifacts.

// Benchmarks are measurement scaffolding, not sweep cells: a setup failure
// should abort loudly rather than degrade, so unwrap is the right tool here.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};

use imap_env::EnvRng;
use imap_nn::matrix::reference;
use imap_nn::{Activation, Matrix, Mlp, MlpScratch};

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = EnvRng::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

fn bench_matmul_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for &n in &[16usize, 64] {
        let a = filled(n, n, 1);
        let b = filled(n, n, 2);
        group.bench_function(format!("matmul_blocked_{n}"), |be| {
            be.iter(|| a.matmul(&b).unwrap())
        });
        group.bench_function(format!("matmul_reference_{n}"), |be| {
            be.iter(|| reference::matmul(&a, &b).unwrap())
        });
    }
    let a = filled(64, 64, 3);
    let b = filled(64, 64, 4);
    group.bench_function("matmul_transpose_rhs_blocked_64", |be| {
        be.iter(|| a.matmul_transpose_rhs(&b).unwrap())
    });
    group.bench_function("matmul_transpose_rhs_reference_64", |be| {
        be.iter(|| reference::matmul_transpose_rhs(&a, &b).unwrap())
    });
    group.bench_function("matmul_transpose_lhs_blocked_64", |be| {
        be.iter(|| a.matmul_transpose_lhs(&b).unwrap())
    });
    group.bench_function("matmul_transpose_lhs_reference_64", |be| {
        be.iter(|| reference::matmul_transpose_lhs(&a, &b).unwrap())
    });
    group.finish();
}

fn bench_forward_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward");
    let mut rng = EnvRng::seed_from_u64(5);
    let mlp = Mlp::new(&[12, 32, 32, 4], Activation::Tanh, 0.01, &mut rng).unwrap();
    let batch = filled(64, 12, 6);
    group.bench_function("alloc_batch64", |be| {
        be.iter(|| mlp.forward(&batch).unwrap())
    });
    let mut scratch = MlpScratch::new();
    group.bench_function("scratch_batch64", |be| {
        be.iter(|| {
            mlp.forward_scratch(&batch, &mut scratch).unwrap();
        })
    });
    group.finish();
}

criterion_group!(kernels, bench_matmul_kernels, bench_forward_paths);
criterion_main!(kernels);
