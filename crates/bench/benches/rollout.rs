//! Criterion benchmarks for eval-episode throughput: the episode-at-a-time
//! rowwise driver against the lockstep batched one (one `K x obs` forward
//! per step). Both report bitwise-identical metrics (DESIGN.md §10);
//! `scripts/bench_export.rs` re-measures the same pair with plain timers
//! and writes `BENCH_rollout.json` for CI artifacts.

// Benchmarks are measurement scaffolding, not sweep cells: a setup failure
// should abort loudly rather than degrade, so unwrap is the right tool here.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use imap_env::locomotion::Hopper;
use imap_env::{Env, EnvRng};
use imap_rl::{evaluate_batched, evaluate_rowwise, EvalConfig, GaussianPolicy};

fn bench_eval_drivers(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval");
    let policy = GaussianPolicy::new(5, 3, &[32, 32], -0.5, &mut EnvRng::seed_from_u64(1)).unwrap();
    let cfg = EvalConfig {
        episodes: 16,
        deterministic: true,
        lanes: 16,
    };
    group.bench_function("rowwise_16ep", |b| {
        b.iter(|| {
            let mut make = || Box::new(Hopper::new()) as Box<dyn Env>;
            evaluate_rowwise(&mut make, &policy, &cfg, 7).unwrap()
        })
    });
    group.bench_function("batched_16ep_16lanes", |b| {
        b.iter(|| {
            let mut make = || Box::new(Hopper::new()) as Box<dyn Env>;
            evaluate_batched(&mut make, &policy, &cfg, 7).unwrap()
        })
    });
    group.finish();
}

criterion_group!(rollout, bench_eval_drivers);
criterion_main!(rollout);
