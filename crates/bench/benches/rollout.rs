//! Criterion benchmarks for eval-episode throughput: the episode-at-a-time
//! rowwise driver against the lockstep batched one (one `K x obs` forward
//! per step). Both report bitwise-identical metrics (DESIGN.md §10);
//! `scripts/bench_export.rs` re-measures the same pair with plain timers
//! and writes `BENCH_rollout.json` for CI artifacts.

// Benchmarks are measurement scaffolding, not sweep cells: a setup failure
// should abort loudly rather than degrade, so unwrap is the right tool here.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use imap_env::{build_task, EnvRng, TaskId};
use imap_rl::{
    evaluate_batched, evaluate_rowwise, EvalConfig, GaussianPolicy, SampleSpec, Sampler,
};

fn bench_eval_drivers(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval");
    let policy = GaussianPolicy::new(5, 3, &[32, 32], -0.5, &mut EnvRng::seed_from_u64(1)).unwrap();
    let cfg = EvalConfig {
        episodes: 16,
        deterministic: true,
        lanes: 16,
    };
    group.bench_function("rowwise_16ep", |b| {
        b.iter(|| {
            let mut make = || build_task(TaskId::Hopper);
            evaluate_rowwise(&mut make, &policy, &cfg, 7).unwrap()
        })
    });
    group.bench_function("batched_16ep_16lanes", |b| {
        b.iter(|| {
            let mut make = || build_task(TaskId::Hopper);
            evaluate_batched(&mut make, &policy, &cfg, 7).unwrap()
        })
    });
    group.finish();
}

fn bench_actor_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    let policy = GaussianPolicy::new(5, 3, &[32, 32], -0.5, &mut EnvRng::seed_from_u64(1)).unwrap();
    let factory = TaskId::Hopper.factory();
    for actors in [1usize, 2, 4] {
        let sampler = Sampler::new(SampleSpec::steps(2048).update_norm(false).actors(actors));
        let mut policy = policy.clone();
        group.bench_function(format!("actors_{actors}_2048steps"), |b| {
            b.iter(|| {
                let mut rng = EnvRng::seed_from_u64(9);
                sampler
                    .collect_parallel(&factory, &mut policy, &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(rollout, bench_eval_drivers, bench_actor_sampling);
criterion_main!(rollout);
