//! Criterion micro-benchmarks for the computational substrates: environment
//! stepping, network inference/updates, KNN density queries, and IBP.

// Benchmarks are measurement scaffolding, not sweep cells: a setup failure
// should abort loudly rather than degrade, so unwrap is the right tool here.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, SeedableRng};

use imap_density::{KdTree, KnnEstimator};
use imap_env::{build_task, EnvRng, TaskId};
use imap_nn::ibp::output_deviation_bound;
use imap_nn::{Activation, Matrix, Mlp};

fn bench_env_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_step");
    let mut rng = EnvRng::seed_from_u64(0);
    macro_rules! bench_env {
        ($name:expr, $env:expr) => {
            let mut env = $env;
            let action = vec![0.3; env.action_dim()];
            env.reset(&mut rng);
            let mut steps = 0usize;
            group.bench_function($name, |b| {
                b.iter(|| {
                    let s = env.step(&action, &mut rng);
                    steps += 1;
                    if s.done {
                        env.reset(&mut rng);
                    }
                    s.reward
                })
            });
        };
    }
    bench_env!("hopper", build_task(TaskId::Hopper));
    bench_env!("walker2d", build_task(TaskId::Walker2d));
    bench_env!("half_cheetah", build_task(TaskId::HalfCheetah));
    bench_env!("ant", build_task(TaskId::Ant));
    group.finish();
}

fn bench_mlp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp");
    let mut rng = EnvRng::seed_from_u64(1);
    let mlp = Mlp::new(&[12, 32, 32, 4], Activation::Tanh, 0.01, &mut rng).unwrap();
    let x = vec![0.3; 12];
    group.bench_function("infer_12_32_32_4", |b| b.iter(|| mlp.infer(&x).unwrap()));

    let rows: Vec<Vec<f64>> = (0..128).map(|i| vec![(i as f64) * 0.01; 12]).collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let batch = Matrix::from_rows(&row_refs).unwrap();
    group.bench_function("forward_backward_batch128", |b| {
        b.iter(|| {
            let cache = mlp.forward(&batch).unwrap();
            let dout = cache.output().map(|v| 2.0 * v);
            mlp.backward(&cache, &dout).unwrap()
        })
    });
    group.bench_function("ibp_deviation_bound", |b| {
        b.iter(|| output_deviation_bound(&mlp, &x, 0.1).unwrap())
    });
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn");
    let mut rng = EnvRng::seed_from_u64(2);
    for &n in &[1_000usize, 10_000, 50_000] {
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        group.bench_function(format!("build_{n}"), |b| {
            b.iter_batched(|| points.clone(), KdTree::build, BatchSize::LargeInput)
        });
        let est = KnnEstimator::new(points, 5);
        let q = vec![0.1, -0.2, 0.3, 0.4];
        group.bench_function(format!("query_k5_{n}"), |b| b.iter(|| est.knn_distance(&q)));
    }
    group.finish();
}

criterion_group!(benches, bench_env_step, bench_mlp, bench_knn);
criterion_main!(benches);
