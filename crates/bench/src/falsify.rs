//! Falsification probing: seeded scenario search over `Env::reset` states
//! hunting failure episodes of a frozen victim policy.
//!
//! The probe runs `scenarios` deterministic rollouts of the victim under
//! scripted initial-state mutations ([`imap_env::ResetMutation`]: RNG-burn
//! before reset plus a short scripted warm-up), each derived from a
//! per-scenario seed. An episode is a **failure** when any of:
//!
//! - an observation component goes non-finite (`nan_observation`),
//! - the reward goes non-finite (`nan_reward`),
//! - the episode terminates unhealthy before half the step limit
//!   (`early_termination`),
//! - the episode return lands below `threshold` (`reward_below_threshold`).
//!
//! Every failure is recorded as a [`Counterexample`]: a replayable
//! `(task, seed, mutation)` triple plus the observed failure, return, step
//! count, and a trajectory checksum. [`replay_counterexample`] re-runs the
//! triple and must reproduce the row byte-for-byte — the property the
//! integration tests pin through `--isolate` and `--resume`.
//!
//! For harness smoke tests the probe can *plant* a fault
//! ([`ProbeConfig::fault`]: `nan_obs` / `nan_reward`) by wrapping the task
//! in a [`imap_env::FaultyEnv`], guaranteeing a findable failure.

use imap_env::registry::unknown_name_error;
use imap_env::{build_task, Env, EnvRng, FaultKind, FaultPlan, FaultyEnv, ResetMutation, TaskId};
use imap_rl::{GaussianPolicy, Progress};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Failure-hunt settings — the `[probe]` table of an experiment spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Scenarios (seeded mutated rollouts) per probed victim.
    pub scenarios: usize,
    /// Episode-return failure threshold; `None` disables the check.
    pub threshold: Option<f64>,
    /// Maximum RNG draws burned before reset per mutation.
    pub max_burn: u32,
    /// Maximum scripted warm-up steps per mutation.
    pub max_warmup: u32,
    /// Warm-up action amplitude.
    pub amplitude: f64,
    /// Rollout step cap; `None` uses the task's episode limit.
    pub max_steps: Option<usize>,
    /// Planted fault (`nan_obs` / `nan_reward`) for harness smoke tests;
    /// `None` probes the bare task.
    pub fault: Option<String>,
    /// Env step (1-based, counted across warm-up) at which a planted
    /// fault fires once.
    pub fault_at: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            scenarios: 32,
            threshold: None,
            max_burn: 8,
            max_warmup: 4,
            amplitude: 0.5,
            max_steps: None,
            fault: None,
            fault_at: 3,
        }
    }
}

/// Parses a planted-fault name; the error suggests the nearest valid name.
pub fn parse_fault(name: &str) -> Result<FaultKind, String> {
    match name {
        "nan_obs" => Ok(FaultKind::NanObservation),
        "nan_reward" => Ok(FaultKind::NanReward),
        _ => Err(unknown_name_error(
            "probe fault",
            name,
            &["nan_obs", "nan_reward"],
        )),
    }
}

/// One replayable failure episode: everything needed to re-run it
/// bit-for-bit is `(task, seed, mutation)`; the rest is the observed
/// outcome a replay must reproduce exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counterexample {
    /// Task name (`TaskId` registry name, e.g. `Hopper`).
    pub task: String,
    /// The scenario seed (drives both mutation sampling and the episode).
    pub seed: u64,
    /// The applied initial-state mutation.
    pub mutation: ResetMutation,
    /// Failure kind: `nan_observation`, `nan_reward`, `early_termination`,
    /// or `reward_below_threshold`.
    pub failure: String,
    /// Episode return up to the failure.
    pub reward: f64,
    /// Policy steps taken before the episode ended.
    pub steps: usize,
    /// FNV-1a checksum over every observation/reward bit pattern, as a
    /// 16-hex-digit string.
    pub checksum: String,
}

/// The result of probing one victim: scenario count and every failure
/// found, in scenario order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeOutcome {
    /// Task name (`TaskId` registry name).
    pub task: String,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Failure episodes, in scenario order.
    pub failures: Vec<Counterexample>,
}

/// Derives the i-th scenario seed from the base seed: a SplitMix64
/// finalizer over the pair, so scenario streams are pairwise independent
/// and a ledger row's seed pins its full episode.
pub fn scenario_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed-stream offset separating mutation sampling from the episode RNG.
const MUTATION_STREAM: u64 = 0x6d75_7461;

struct ScenarioResult {
    failure: Option<String>,
    reward: f64,
    steps: usize,
    checksum: u64,
}

fn non_finite(obs: &[f64]) -> bool {
    obs.iter().any(|v| !v.is_finite())
}

fn rollout<E: Env>(
    env: &mut E,
    policy: &GaussianPolicy,
    cfg: &ProbeConfig,
    mutation: &ResetMutation,
    seed: u64,
    progress: &Progress,
) -> Result<ScenarioResult, String> {
    let limit = cfg
        .max_steps
        .unwrap_or_else(|| env.max_steps())
        .min(env.max_steps())
        .max(1);
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |acc: &mut u64, bits: u64| {
        *acc = (*acc ^ bits).wrapping_mul(0x0000_0100_0000_01b3);
    };
    let mut rng = EnvRng::seed_from_u64(seed);
    let mut obs = mutation.apply(env, &mut rng);
    for v in &obs {
        mix(&mut acc, v.to_bits());
    }
    let mut total = 0.0;
    let mut steps = 0usize;
    let mut failure: Option<String> = None;
    if non_finite(&obs) {
        failure = Some("nan_observation".into());
    }
    while failure.is_none() && steps < limit {
        progress.beat();
        let action = policy.act_deterministic(&obs).map_err(|e| e.to_string())?;
        let step = env.step(&action, &mut rng);
        steps += 1;
        for v in &step.obs {
            mix(&mut acc, v.to_bits());
        }
        mix(&mut acc, step.reward.to_bits());
        if !step.reward.is_finite() {
            failure = Some("nan_reward".into());
            break;
        }
        total += step.reward;
        if non_finite(&step.obs) {
            failure = Some("nan_observation".into());
            break;
        }
        obs = step.obs;
        if step.done {
            if step.unhealthy && steps < limit / 2 {
                failure = Some("early_termination".into());
            }
            break;
        }
    }
    if failure.is_none() {
        if let Some(threshold) = cfg.threshold {
            if total < threshold {
                failure = Some("reward_below_threshold".into());
            }
        }
    }
    Ok(ScenarioResult {
        failure,
        reward: total,
        steps,
        checksum: acc,
    })
}

/// Runs one scenario: samples the mutation from the scenario seed (unless
/// replaying a stored one), applies it, and rolls the deterministic victim
/// out hunting a failure.
fn run_scenario(
    task: TaskId,
    policy: &GaussianPolicy,
    cfg: &ProbeConfig,
    seed: u64,
    stored: Option<&ResetMutation>,
    progress: &Progress,
) -> Result<(ResetMutation, ScenarioResult), String> {
    let mutation = match stored {
        Some(m) => *m,
        None => {
            let mut mrng = EnvRng::seed_from_u64(seed ^ MUTATION_STREAM);
            ResetMutation::sample(&mut mrng, cfg.max_burn, cfg.max_warmup, cfg.amplitude)
        }
    };
    let env = build_task(task);
    let result = match &cfg.fault {
        Some(name) => {
            let plan = FaultPlan::once(parse_fault(name)?, cfg.fault_at);
            let mut env = FaultyEnv::new(env, plan);
            rollout(&mut env, policy, cfg, &mutation, seed, progress)?
        }
        None => {
            let mut env = env;
            rollout(&mut env, policy, cfg, &mutation, seed, progress)?
        }
    };
    Ok((mutation, result))
}

fn counterexample(
    task: TaskId,
    seed: u64,
    mutation: ResetMutation,
    failure: String,
    r: &ScenarioResult,
) -> Counterexample {
    Counterexample {
        task: format!("{task:?}"),
        seed,
        mutation,
        failure,
        reward: r.reward,
        steps: r.steps,
        checksum: format!("{:016x}", r.checksum),
    }
}

/// Probes one victim: `cfg.scenarios` seeded mutated rollouts, each
/// failure recorded as a replayable [`Counterexample`].
pub fn probe_policy(
    task: TaskId,
    policy: &GaussianPolicy,
    cfg: &ProbeConfig,
    base_seed: u64,
    progress: &Progress,
) -> Result<ProbeOutcome, String> {
    let mut failures = Vec::new();
    for i in 0..cfg.scenarios {
        let seed = scenario_seed(base_seed, i as u64);
        let (mutation, result) = run_scenario(task, policy, cfg, seed, None, progress)?;
        if let Some(failure) = result.failure.clone() {
            failures.push(counterexample(task, seed, mutation, failure, &result));
        }
    }
    Ok(ProbeOutcome {
        task: format!("{task:?}"),
        scenarios: cfg.scenarios,
        failures,
    })
}

/// Re-runs one scenario from an explicit `(task, seed, mutation)` triple
/// and returns the recomputed row. A replay that no longer fails is an
/// error (the triple has gone stale against the policy or config it was
/// found with).
pub fn replay_scenario(
    task: TaskId,
    policy: &GaussianPolicy,
    cfg: &ProbeConfig,
    seed: u64,
    mutation: &ResetMutation,
    progress: &Progress,
) -> Result<Counterexample, String> {
    let (mutation, result) = run_scenario(task, policy, cfg, seed, Some(mutation), progress)?;
    let failure = result.failure.clone().ok_or_else(|| {
        format!("replay of {task:?} seed={seed} did not fail (stale counterexample?)")
    })?;
    Ok(counterexample(task, seed, mutation, failure, &result))
}

/// Replays a counterexample row; callers assert byte-identity against the
/// original.
pub fn replay_counterexample(
    cx: &Counterexample,
    policy: &GaussianPolicy,
    cfg: &ProbeConfig,
    progress: &Progress,
) -> Result<Counterexample, String> {
    let task = TaskId::resolve(&cx.task)?;
    replay_scenario(task, policy, cfg, cx.seed, &cx.mutation, progress)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tiny_policy(task: TaskId) -> GaussianPolicy {
        let (obs, act) = task.spec().dims();
        let mut rng = EnvRng::seed_from_u64(99);
        GaussianPolicy::new(obs, act, &[8], -0.5, &mut rng).unwrap()
    }

    #[test]
    fn scenario_seeds_are_pairwise_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..64).map(|i| scenario_seed(17, i)).collect();
        let unique: std::collections::HashSet<&u64> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
        assert_eq!(scenario_seed(17, 5), scenario_seed(17, 5));
        assert_ne!(scenario_seed(17, 5), scenario_seed(18, 5));
    }

    #[test]
    fn planted_nan_obs_fault_is_found_and_replays_byte_identically() {
        let policy = tiny_policy(TaskId::Hopper);
        // `max_warmup: 0` pins the planted fault inside the *policy*
        // rollout: with warm-up steps the once-firing NaN could land on a
        // warm-up step whose observation is never returned.
        let cfg = ProbeConfig {
            scenarios: 4,
            max_warmup: 0,
            max_steps: Some(20),
            fault: Some("nan_obs".into()),
            fault_at: 2,
            ..ProbeConfig::default()
        };
        let out = probe_policy(TaskId::Hopper, &policy, &cfg, 17, &Progress::null()).unwrap();
        assert!(
            out.failures.iter().any(|c| c.failure == "nan_observation"),
            "planted NaN fault must surface: {out:?}"
        );
        for cx in &out.failures {
            let replayed = replay_counterexample(cx, &policy, &cfg, &Progress::null()).unwrap();
            assert_eq!(
                serde_json::to_string(cx).unwrap(),
                serde_json::to_string(&replayed).unwrap(),
                "replay must be byte-identical"
            );
        }
    }

    #[test]
    fn probe_is_deterministic_per_seed() {
        let policy = tiny_policy(TaskId::Hopper);
        let cfg = ProbeConfig {
            scenarios: 3,
            max_steps: Some(15),
            threshold: Some(1e9),
            ..ProbeConfig::default()
        };
        let a = probe_policy(TaskId::Hopper, &policy, &cfg, 7, &Progress::null()).unwrap();
        let b = probe_policy(TaskId::Hopper, &policy, &cfg, 7, &Progress::null()).unwrap();
        let c = probe_policy(TaskId::Hopper, &policy, &cfg, 8, &Progress::null()).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // An absurd threshold makes every scenario a failure; a different
        // base seed changes the scenario seeds.
        assert_eq!(a.failures.len(), 3);
        assert!(a
            .failures
            .iter()
            .all(|f| f.failure == "reward_below_threshold" || f.failure == "early_termination"));
        assert_ne!(a.failures[0].seed, c.failures[0].seed);
    }

    #[test]
    fn nan_reward_fault_is_detected_as_nan_reward() {
        let policy = tiny_policy(TaskId::Hopper);
        let cfg = ProbeConfig {
            scenarios: 2,
            max_burn: 0,
            max_warmup: 0,
            max_steps: Some(10),
            fault: Some("nan_reward".into()),
            fault_at: 1,
            ..ProbeConfig::default()
        };
        let out = probe_policy(TaskId::Hopper, &policy, &cfg, 3, &Progress::null()).unwrap();
        assert_eq!(out.failures.len(), 2, "{out:?}");
        assert!(out.failures.iter().all(|c| c.failure == "nan_reward"));
        assert!(out.failures.iter().all(|c| c.steps == 1));
    }

    #[test]
    fn parse_fault_suggests_near_misses() {
        assert_eq!(parse_fault("nan_obs").unwrap(), FaultKind::NanObservation);
        let err = parse_fault("nan_obz").unwrap_err();
        assert!(err.contains("did you mean \"nan_obs\"?"), "{err}");
        assert!(err.contains("valid probe faults:"), "{err}");
    }
}
