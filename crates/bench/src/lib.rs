//! Experiment-harness support: budgets, victim caching, attack runners, and
//! table formatting shared by the per-table/figure binaries.
//!
//! Every binary honours the `IMAP_BUDGET` environment variable:
//! `quick` (default; minutes, reproduces table *shapes*) or `full`
//! (larger budgets, closer-to-paper sample counts). `IMAP_SEED` overrides
//! the base seed, and `IMAP_ACTORS` requests data-parallel rollout actors
//! for victim training (the per-cell thread count is clamped against the
//! `IMAP_MAX_PARALLEL` budget inside the zoo, accounting for `--jobs`).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use parking_lot::Mutex;

use imap_core::eval::{eval_multi_attack, eval_under_attack_batched, AttackEval, Attacker};
use imap_core::regularizer::{RegularizerConfig, RegularizerKind};
use imap_core::store::{CheckpointStore, DiskStore, StoreKey};
use imap_core::threat::{OpponentEnv, PerturbationEnv};
use imap_core::{AttackOutcome, ImapConfig, ImapTrainer};
use imap_defense::{
    train_game_victim_selfplay, train_victim_stored, victim_store_key, DefenseMethod,
    ScriptedOpponent, VictimBudget,
};
use imap_env::{build_multi_task, build_task, EnvRng, MultiTaskId, TaskId};
use imap_nn::NnError;
use imap_rl::{GaussianPolicy, PpoConfig, Progress, ResilienceConfig, TrainConfig};
use imap_telemetry::{RunManifest, Telemetry};
use rand::SeedableRng;

pub mod cells;
pub mod exec;
pub mod falsify;
pub mod golden;
pub mod matrix;
pub mod spec;
pub mod table1;

/// Compute budget for an experiment run.
///
/// Serializable so isolated cells can ship their budget to the child
/// process inside the cell spec ([`cells::CellSpec`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Budget {
    /// Human-readable name ("quick" / "full").
    pub name: String,
    /// Victim-training budget.
    pub victim: VictimBudget,
    /// Attack-training PPO iterations.
    pub attack_iters: usize,
    /// Environment steps per attack iteration.
    pub attack_steps: usize,
    /// Evaluation episodes per table cell.
    pub eval_episodes: usize,
    /// MARL victim PPO iterations.
    pub marl_victim_iters: usize,
    /// MARL attack PPO iterations.
    pub marl_attack_iters: usize,
}

impl Budget {
    /// The quick (default) budget.
    pub fn quick() -> Self {
        Budget {
            name: "quick".into(),
            victim: VictimBudget::quick(),
            attack_iters: 40,
            attack_steps: 2048,
            eval_episodes: 50,
            marl_victim_iters: 120,
            marl_attack_iters: 50,
        }
    }

    /// The full budget.
    pub fn full() -> Self {
        Budget {
            name: "full".into(),
            victim: VictimBudget::full(),
            attack_iters: 80,
            attack_steps: 4096,
            eval_episodes: 100,
            marl_victim_iters: 200,
            marl_attack_iters: 100,
        }
    }

    /// Parses a budget name: `quick`, `full`, or unset (quick). Anything
    /// else — `"ful"`, `"Quick"`, `"1"` — is an error, not a silent
    /// default, so a typo cannot quietly downgrade a week-long sweep.
    pub fn parse(value: Option<&str>) -> Result<Self, String> {
        match value {
            None | Some("quick") => Ok(Budget::quick()),
            Some("full") => Ok(Budget::full()),
            Some(other) => Err(format!(
                "unrecognized IMAP_BUDGET {other:?} (expected \"quick\" or \"full\")"
            )),
        }
    }

    /// Reads `IMAP_BUDGET` (`quick`/`full`; default quick). An
    /// unrecognized value falls back to quick with a loud stderr warning.
    /// `IMAP_ACTORS` (default 1) additionally requests actor-parallel
    /// rollout sampling for victim training.
    pub fn from_env() -> Self {
        let raw = std::env::var("IMAP_BUDGET").ok();
        let mut budget = Budget::parse(raw.as_deref()).unwrap_or_else(|msg| {
            eprintln!("warning: {msg}; falling back to the quick budget");
            Budget::quick()
        });
        budget.victim.actors = actors_from_env();
        budget
    }

    /// The attack trainer configuration for this budget.
    pub fn attack_train(&self, seed: u64) -> TrainConfig {
        TrainConfig {
            iterations: self.attack_iters,
            steps_per_iter: self.attack_steps,
            hidden: vec![32, 32],
            seed,
            ppo: PpoConfig {
                entropy_coef: 0.001,
                ..PpoConfig::default()
            },
            ..TrainConfig::default()
        }
    }
}

/// Parses a base-seed override; unset means the default 17. An
/// unparseable value is an error, never a silent default seed.
pub fn parse_seed(value: Option<&str>) -> Result<u64, String> {
    match value {
        None => Ok(17),
        Some(raw) => raw
            .trim()
            .parse()
            .map_err(|_| format!("unparseable IMAP_SEED {raw:?} (expected a u64)")),
    }
}

/// Requested rollout actors for victim training (`IMAP_ACTORS`, default 1;
/// floored at 1). A request above 1 turns on actor-mode sampling; the
/// per-cell thread count is clamped at training time by the zoo, so a sweep
/// with `--jobs` never oversubscribes the shared parallelism budget.
pub fn actors_from_env() -> usize {
    std::env::var("IMAP_ACTORS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Base seed (`IMAP_SEED`, default 17). An unparseable value falls back
/// to the default with a loud stderr warning.
pub fn base_seed() -> u64 {
    let raw = std::env::var("IMAP_SEED").ok();
    parse_seed(raw.as_deref()).unwrap_or_else(|msg| {
        eprintln!("warning: {msg}; using the default seed 17");
        17
    })
}

/// The attack columns of Tables 1–3 — the registry's [`imap_core::AttackId`]
/// under its historical bench-crate name. Name lookup, wire codes, labels,
/// and the Table 1 column set all live on the registry type.
pub use imap_core::registry::AttackId as AttackKind;

/// Root of the on-disk experiment caches: `IMAP_CACHE_DIR` when set,
/// `.victim-cache/` at the workspace root otherwise.
pub fn cache_root() -> PathBuf {
    match std::env::var("IMAP_CACHE_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../.victim-cache"),
    }
}

/// The victim zoo's view of the content-addressed
/// [`CheckpointStore`](imap_core::store::CheckpointStore): a [`DiskStore`]
/// of trained victims (the expensive shared step) plus an in-process
/// memoization map, so each `(task, method, budget, seed)` is trained once
/// and reused by every table binary, sweep cell, and service job sharing
/// the store root.
pub struct VictimCache {
    store: DiskStore,
    mem: Mutex<HashMap<String, GaussianPolicy>>,
}

impl VictimCache {
    /// Opens (and creates) the cache at [`cache_root`].
    pub fn open() -> Self {
        VictimCache::open_at(cache_root())
    }

    /// Opens (and creates) the cache rooted at an explicit directory —
    /// tests use this to isolate runs without racing on env vars.
    pub fn open_at(dir: impl Into<PathBuf>) -> Self {
        VictimCache {
            store: DiskStore::open(dir),
            mem: Mutex::new(HashMap::new()),
        }
    }

    /// The cache's on-disk root — cell specs carry it so an isolated child
    /// process opens the *same* store as its parent.
    pub fn dir(&self) -> &std::path::Path {
        self.store.root()
    }

    /// The underlying content-addressed store (hit/miss counters, log).
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    fn key(task: TaskId, method: DefenseMethod, budget: &Budget, seed: u64) -> String {
        // The canonical config string of the victim's content address —
        // the key discipline (actor *mode*, not count; budget by name)
        // lives beside the zoo in `imap_defense::victim_store_key`.
        victim_store_key(task, method, &budget.victim, &budget.name, seed)
            .config()
            .to_string()
    }

    /// Returns the victim for `(task, method)`, training it on a cache miss.
    #[deprecated(
        since = "0.6.0",
        note = "use `victim_supervised` (or `imap_defense::train_victim_stored` \
                against a shared `DiskStore`)"
    )]
    pub fn victim(
        &self,
        task: TaskId,
        method: DefenseMethod,
        budget: &Budget,
        seed: u64,
    ) -> Result<GaussianPolicy, NnError> {
        self.victim_supervised(
            &Telemetry::null(),
            task,
            method,
            budget,
            seed,
            &Progress::null(),
        )
    }

    /// [`VictimCache::victim_supervised`] without a supervision handle.
    #[deprecated(
        since = "0.6.0",
        note = "use `victim_supervised` (or `imap_defense::train_victim_stored` \
                against a shared `DiskStore`)"
    )]
    pub fn victim_with(
        &self,
        tel: &Telemetry,
        task: TaskId,
        method: DefenseMethod,
        budget: &Budget,
        seed: u64,
    ) -> Result<GaussianPolicy, NnError> {
        self.victim_supervised(tel, task, method, budget, seed, &Progress::null())
    }

    /// Returns the victim for `(task, method)` under sweep supervision:
    /// store misses train with `progress` threaded into the PPO loop (so
    /// the supervisor sees heartbeats and cooperative cancellation reaches
    /// the rollout), train single-flight across concurrent requesters, and
    /// publish atomically through the zoo's store-backed entry point.
    pub fn victim_supervised(
        &self,
        tel: &Telemetry,
        task: TaskId,
        method: DefenseMethod,
        budget: &Budget,
        seed: u64,
        progress: &Progress,
    ) -> Result<GaussianPolicy, NnError> {
        let key = Self::key(task, method, budget, seed);
        if let Some(p) = self.mem.lock().get(&key) {
            return Ok(p.clone());
        }
        let resilience = ResilienceConfig {
            progress: progress.clone(),
            ..ResilienceConfig::default()
        };
        let p = train_victim_stored(
            tel,
            &self.store,
            task,
            method,
            &budget.victim,
            &budget.name,
            seed,
            &resilience,
        )?;
        self.mem.lock().insert(key, p.clone());
        Ok(p)
    }
}

/// Lockstep episodes per batched eval (rows of each `K x obs` forward).
/// Any value reports identical numbers (DESIGN.md §10); 16 rows give the
/// 4x8-tiled kernels four full row tiles per forward.
pub const EVAL_LANES: usize = 16;

/// Runs one attack cell: trains the attacker (if learned) and evaluates the
/// victim under it. Returns the evaluation and, for learned attacks, the
/// training outcome (curves).
///
/// `progress` is the supervisor's heartbeat/cancellation handle for the
/// cell ([`Progress::null`] outside a sweep): attack training beats from
/// its own iteration loop, and the eval stages beat at their boundaries.
pub fn run_attack_cell(
    task: TaskId,
    victim: &GaussianPolicy,
    kind: AttackKind,
    budget: &Budget,
    seed: u64,
    progress: &Progress,
) -> Result<(AttackEval, Option<AttackOutcome>), NnError> {
    // `IMAP_EPS` overrides the per-task budget (calibration only).
    let eps = std::env::var("IMAP_EPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| task.spec().eps);
    // Episodes are seeded per index (not from one shared stream), so the
    // lockstep batched driver reports lane-count-invariant numbers.
    let eval_seed = seed ^ 0xe7a1;
    let mut make = || build_task(task);
    imap_rl::heartbeat(progress)?;
    match kind {
        AttackKind::NoAttack => {
            let eval = eval_under_attack_batched(
                &mut make,
                victim,
                &Attacker::None,
                eps,
                budget.eval_episodes,
                EVAL_LANES,
                eval_seed,
            )?;
            imap_rl::heartbeat(progress)?;
            Ok((eval, None))
        }
        AttackKind::Random => {
            let eval = eval_under_attack_batched(
                &mut make,
                victim,
                &Attacker::Random,
                eps,
                budget.eval_episodes,
                EVAL_LANES,
                eval_seed,
            )?;
            imap_rl::heartbeat(progress)?;
            Ok((eval, None))
        }
        AttackKind::SaRl | AttackKind::Imap(_) | AttackKind::ImapBr(_) => {
            let cfg = attack_config_supervised(kind, budget, seed, progress);
            let mut env = PerturbationEnv::new(build_task(task), victim.clone(), eps);
            let outcome = ImapTrainer::new(cfg).train(&mut env, None)?;
            imap_rl::heartbeat(progress)?;
            let eval = eval_under_attack_batched(
                &mut make,
                victim,
                &Attacker::Policy(&outcome.policy),
                eps,
                budget.eval_episodes,
                EVAL_LANES,
                eval_seed,
            )?;
            imap_rl::heartbeat(progress)?;
            Ok((eval, Some(outcome)))
        }
    }
}

/// Builds the [`ImapConfig`] for a learned attack column.
pub fn attack_config(kind: AttackKind, budget: &Budget, seed: u64) -> ImapConfig {
    attack_config_supervised(kind, budget, seed, &Progress::null())
}

/// [`attack_config`] with the supervisor's heartbeat handle threaded into
/// the trainer's resilience config.
pub fn attack_config_supervised(
    kind: AttackKind,
    budget: &Budget,
    seed: u64,
    progress: &Progress,
) -> ImapConfig {
    let mut train = budget.attack_train(seed);
    train.resilience.progress = progress.clone();
    match kind {
        AttackKind::SaRl => ImapConfig::baseline(train),
        AttackKind::Imap(k) => ImapConfig::imap(train, RegularizerConfig::new(k)),
        AttackKind::ImapBr(k) => {
            ImapConfig::imap(train, RegularizerConfig::new(k)).with_br(default_br_eta())
        }
        _ => panic!("not a learned attack: {kind:?}"),
    }
}

/// The default BR dual step size η used by the tables (Figure 6 sweeps it).
pub fn default_br_eta() -> f64 {
    5.0
}

/// The default marginal trade-off ξ for multi-agent regularizers (Figure 7
/// sweeps it).
pub fn default_xi() -> f64 {
    0.5
}

/// Intrinsic reward scale for the multi-agent games (see
/// `ImapConfig::intrinsic_scale`).
pub fn marl_intrinsic_scale() -> f64 {
    0.15
}

/// Returns (training, caching if needed) the game victim for `game`.
pub fn marl_victim(
    game: MultiTaskId,
    budget: &Budget,
    seed: u64,
) -> Result<GaussianPolicy, NnError> {
    marl_victim_with(&Telemetry::null(), game, budget, seed)
}

/// [`marl_victim`] with telemetry: cache misses run the self-play loop
/// through `tel` (`selfplay`-phase rows, opponent/victim round spans).
pub fn marl_victim_with(
    tel: &Telemetry,
    game: MultiTaskId,
    budget: &Budget,
    seed: u64,
) -> Result<GaussianPolicy, NnError> {
    marl_victim_supervised(tel, game, budget, seed, &Progress::null())
}

/// [`marl_victim_with`] under sweep supervision: the self-play rounds beat
/// through `progress` and honour cooperative cancellation.
pub fn marl_victim_supervised(
    tel: &Telemetry,
    game: MultiTaskId,
    budget: &Budget,
    seed: u64,
    progress: &Progress,
) -> Result<GaussianPolicy, NnError> {
    // Same content-addressed store as the single-agent zoo, under its own
    // kind tag: `get_or_compute` makes concurrent self-play trainings for
    // one key single-flight, with the wait loop beating supervision.
    let store = DiskStore::open(cache_root());
    let key = StoreKey::new(
        "marl_victim",
        &format!("marl_{game:?}_{}_{seed}", budget.name),
    );
    let beat_progress = progress.clone();
    let (bytes, _outcome) = store.get_or_compute(
        &key,
        std::time::Duration::from_secs(600),
        || beat_progress.beat(),
        || {
            let p = marl_victim_train(tel, game, budget, seed, progress)?;
            serde_json::to_vec(&p).map_err(|e| NnError::Numeric {
                context: format!("serialize marl victim for store: {e}"),
            })
        },
    )?;
    serde_json::from_slice(&bytes).map_err(|e| NnError::Numeric {
        context: format!("deserialize stored marl victim {}: {e}", key.file_name()),
    })
}

/// The self-play training behind [`marl_victim_supervised`]'s store misses.
fn marl_victim_train(
    tel: &Telemetry,
    game: MultiTaskId,
    budget: &Budget,
    seed: u64,
    progress: &Progress,
) -> Result<GaussianPolicy, NnError> {
    let scripted: fn() -> ScriptedOpponent = match game {
        MultiTaskId::YouShallNotPass => ScriptedOpponent::blocker_population,
        MultiTaskId::KickAndDefend => ScriptedOpponent::goalie_population,
    };
    let cfg = TrainConfig {
        iterations: 0,
        steps_per_iter: budget.attack_steps,
        hidden: vec![32, 32],
        seed,
        ppo: PpoConfig::default(),
        telemetry: tel.clone(),
        resilience: ResilienceConfig {
            progress: progress.clone(),
            ..ResilienceConfig::default()
        },
        ..TrainConfig::default()
    };
    // Self-play provenance (§6.1): warmup vs scripted population, then
    // alternate learned "old versions" into the pool.
    let warmup = budget.marl_victim_iters / 2;
    let per_round = budget.marl_victim_iters / 4;
    let mut make = move || build_multi_task(game);
    let mut p = train_game_victim_selfplay(
        &mut make,
        scripted,
        &cfg,
        warmup,
        2,
        budget.marl_victim_iters / 5,
        per_round,
    )?;
    p.norm.freeze();
    Ok(p)
}

/// Runs one multi-agent attack cell: trains the adversarial opponent (for
/// learned attacks) and reports the ASR.
pub fn run_multi_attack_cell(
    game: MultiTaskId,
    victim: &GaussianPolicy,
    kind: AttackKind,
    budget: &Budget,
    seed: u64,
    xi: f64,
    progress: &Progress,
) -> Result<(AttackEval, Option<AttackOutcome>), NnError> {
    let mut rng = EnvRng::seed_from_u64(seed ^ 0x3a21);
    imap_rl::heartbeat(progress)?;
    match kind {
        AttackKind::NoAttack | AttackKind::Random => {
            let attacker = if matches!(kind, AttackKind::Random) {
                Attacker::Random
            } else {
                Attacker::None
            };
            let eval = eval_multi_attack(
                build_multi_task(game),
                victim,
                attacker,
                budget.eval_episodes,
                &mut rng,
            )?;
            imap_rl::heartbeat(progress)?;
            Ok((eval, None))
        }
        _ => {
            let mut env = OpponentEnv::new(build_multi_task(game), victim.clone());
            let split = env.summary_split();
            let mut train = TrainConfig {
                iterations: budget.marl_attack_iters,
                ..budget.attack_train(seed)
            };
            train.resilience.progress = progress.clone();
            let cfg = match kind {
                AttackKind::SaRl => ImapConfig::baseline(train),
                AttackKind::Imap(k) => {
                    let mut rc = RegularizerConfig::new(k);
                    rc.marginal_split = Some(split);
                    rc.xi = xi;
                    ImapConfig::imap(train, rc).with_intrinsic_scale(marl_intrinsic_scale())
                }
                AttackKind::ImapBr(k) => {
                    let mut rc = RegularizerConfig::new(k);
                    rc.marginal_split = Some(split);
                    rc.xi = xi;
                    ImapConfig::imap(train, rc)
                        .with_intrinsic_scale(marl_intrinsic_scale())
                        .with_br(default_br_eta())
                }
                _ => unreachable!(),
            };
            let outcome = ImapTrainer::new(cfg).train(&mut env, None)?;
            imap_rl::heartbeat(progress)?;
            let eval = eval_multi_attack(
                build_multi_task(game),
                victim,
                Attacker::Policy(&outcome.policy),
                budget.eval_episodes,
                &mut rng,
            )?;
            imap_rl::heartbeat(progress)?;
            Ok((eval, Some(outcome)))
        }
    }
}

/// A persisted experiment cell: the evaluation plus the attack's training
/// curve (for figure binaries).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CellResult {
    /// Final evaluation under the trained attack.
    pub eval: AttackEval,
    /// Training curve (empty for non-learned attacks).
    pub curve: Vec<imap_core::CurvePoint>,
}

/// Content-addressed store of finished attack cells (adversary training
/// outcomes — the second [`CheckpointStore`] consumer after the victim
/// zoo), keyed by every input, so table/figure binaries and concurrent
/// service jobs share work across invocations.
#[derive(Debug)]
pub struct CellCache {
    store: DiskStore,
}

impl CellCache {
    /// Opens (and creates) the cell cache under [`cache_root`]`/cells`.
    pub fn open() -> Self {
        CellCache::open_at(cache_root().join("cells"))
    }

    /// Opens (and creates) the cell cache at an explicit directory.
    pub fn open_at(dir: impl Into<PathBuf>) -> Self {
        CellCache {
            store: DiskStore::open(dir),
        }
    }

    /// The cache's on-disk root — cell specs carry it so an isolated child
    /// process opens the *same* store as its parent.
    pub fn dir(&self) -> &std::path::Path {
        self.store.root()
    }

    /// The underlying content-addressed store (hit/miss counters, log).
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    fn cached(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<CellResult, NnError>,
    ) -> Result<CellResult, NnError> {
        let key = StoreKey::new("cell", key);
        if let Some(bytes) = self.store.get(&key) {
            if let Ok(r) = serde_json::from_slice::<CellResult>(&bytes) {
                return Ok(r);
            }
        }
        let r = compute()?;
        if let Ok(bytes) = serde_json::to_vec(&r) {
            let _ = self.store.put(&key, &bytes);
        }
        Ok(r)
    }
}

/// [`run_attack_cell`] through a [`CellCache`]. Cache hits beat once and
/// return without running anything.
#[allow(clippy::too_many_arguments)]
pub fn run_attack_cell_cached(
    cache: &CellCache,
    task: TaskId,
    method: DefenseMethod,
    victim: &GaussianPolicy,
    kind: AttackKind,
    budget: &Budget,
    seed: u64,
    progress: &Progress,
) -> Result<CellResult, NnError> {
    let key = format!(
        "sa_{task:?}_{method:?}_{}_{}_{seed}",
        kind.label(),
        budget.name
    );
    let key = key.replace(['"', ' ', '+'], "_");
    cache.cached(&key, || {
        let (eval, outcome) = run_attack_cell(task, victim, kind, budget, seed, progress)?;
        Ok(CellResult {
            eval,
            curve: outcome.map(|o| o.curve).unwrap_or_default(),
        })
    })
}

/// [`run_multi_attack_cell`] through the same persistent cache.
#[allow(clippy::too_many_arguments)]
pub fn run_multi_attack_cell_cached(
    cache: &CellCache,
    game: MultiTaskId,
    victim: &GaussianPolicy,
    kind: AttackKind,
    budget: &Budget,
    seed: u64,
    xi: f64,
    progress: &Progress,
) -> Result<CellResult, NnError> {
    let key = format!(
        "ma_{game:?}_{}_{}_{seed}_xi{:.2}",
        kind.label(),
        budget.name,
        xi
    );
    let key = key.replace(['"', ' ', '+'], "_");
    cache.cached(&key, || {
        let (eval, outcome) =
            run_multi_attack_cell(game, victim, kind, budget, seed, xi, progress)?;
        Ok(CellResult {
            eval,
            curve: outcome.map(|o| o.curve).unwrap_or_default(),
        })
    })
}

/// Runs one Figure 6 single-agent cell: IMAP-PC+BR with an explicit dual
/// step size η. Shared by the `fig6` closure and the isolated-cell
/// executor so both paths stay bitwise-identical.
pub fn run_br_attack_cell(
    task: TaskId,
    victim: &GaussianPolicy,
    eta: f64,
    budget: &Budget,
    seed: u64,
    progress: &Progress,
) -> Result<CellResult, NnError> {
    let mut train = budget.attack_train(seed);
    train.resilience.progress = progress.clone();
    let cfg = ImapConfig::imap(
        train,
        RegularizerConfig::new(RegularizerKind::PolicyCoverage),
    )
    .with_br(eta);
    let mut env = PerturbationEnv::new(build_task(task), victim.clone(), task.spec().eps);
    let out = ImapTrainer::new(cfg).train(&mut env, None)?;
    imap_rl::heartbeat(progress)?;
    let mut rng = EnvRng::seed_from_u64(seed ^ 0xf16);
    let eval = imap_core::eval::eval_under_attack(
        build_task(task),
        victim,
        Attacker::Policy(&out.policy),
        task.spec().eps,
        budget.eval_episodes,
        &mut rng,
    )?;
    Ok(CellResult {
        eval,
        curve: out.curve,
    })
}

/// Runs one Figure 6 multi-agent cell: IMAP-PC+BR over an [`OpponentEnv`]
/// with an explicit η. Shared by the `fig6` closure and the isolated-cell
/// executor.
pub fn run_marl_br_attack_cell(
    game: MultiTaskId,
    victim: &GaussianPolicy,
    eta: f64,
    budget: &Budget,
    seed: u64,
    progress: &Progress,
) -> Result<CellResult, NnError> {
    let mut rc = RegularizerConfig::new(RegularizerKind::PolicyCoverage);
    let mut env = OpponentEnv::new(build_multi_task(game), victim.clone());
    rc.marginal_split = Some(env.summary_split());
    rc.xi = default_xi();
    let mut train = TrainConfig {
        iterations: budget.marl_attack_iters,
        ..budget.attack_train(seed)
    };
    train.resilience.progress = progress.clone();
    let cfg = ImapConfig::imap(train, rc)
        .with_intrinsic_scale(marl_intrinsic_scale())
        .with_br(eta);
    let out = ImapTrainer::new(cfg).train(&mut env, None)?;
    imap_rl::heartbeat(progress)?;
    let mut rng = EnvRng::seed_from_u64(seed ^ 0xf17);
    let eval = eval_multi_attack(
        build_multi_task(game),
        victim,
        Attacker::Policy(&out.policy),
        budget.eval_episodes,
        &mut rng,
    )?;
    Ok(CellResult {
        eval,
        curve: out.curve,
    })
}

/// One design-choice knob turned per `ablate` cell; everything else stays
/// at the defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AblateVariant {
    /// KNN neighbourhood size of the density estimators.
    Knn(usize),
    /// Union-buffer capacity behind the PC regularizer.
    UnionCap(usize),
    /// Intrinsic-advantage scale (the τ-calibration knob).
    IntrinsicScale(f64),
}

impl AblateVariant {
    /// Wire encoding for cell specs: a `(mode, value)` pair.
    pub fn code(self) -> (&'static str, f64) {
        match self {
            AblateVariant::Knn(k) => ("knn", k as f64),
            AblateVariant::UnionCap(cap) => ("union_cap", cap as f64),
            AblateVariant::IntrinsicScale(s) => ("intrinsic_scale", s),
        }
    }

    /// Parses an [`AblateVariant::code`] pair back; `None` for unknown
    /// modes.
    pub fn from_code(mode: &str, value: f64) -> Option<Self> {
        match mode {
            "knn" => Some(AblateVariant::Knn(value as usize)),
            "union_cap" => Some(AblateVariant::UnionCap(value as usize)),
            "intrinsic_scale" => Some(AblateVariant::IntrinsicScale(value)),
            _ => None,
        }
    }
}

/// Runs one `ablate` cell: IMAP-PC with a single [`AblateVariant`] knob
/// turned. Shared by the `ablate` closure and the isolated-cell executor.
pub fn run_ablate_cell(
    task: TaskId,
    victim: &GaussianPolicy,
    variant: AblateVariant,
    budget: &Budget,
    seed: u64,
    progress: &Progress,
) -> Result<CellResult, NnError> {
    let eps = task.spec().eps;
    let mut rc = RegularizerConfig::new(RegularizerKind::PolicyCoverage);
    let mut scale = None;
    match variant {
        AblateVariant::Knn(k) => rc.k = k,
        AblateVariant::UnionCap(cap) => rc.union_cap = cap,
        AblateVariant::IntrinsicScale(s) => scale = Some(s),
    }
    let mut train = budget.attack_train(seed);
    train.resilience.progress = progress.clone();
    let mut cfg = ImapConfig::imap(train, rc);
    if let Some(s) = scale {
        cfg = cfg.with_intrinsic_scale(s);
    }
    let mut env = PerturbationEnv::new(build_task(task), victim.clone(), eps);
    let out = ImapTrainer::new(cfg).train(&mut env, None)?;
    imap_rl::heartbeat(progress)?;
    let mut rng = EnvRng::seed_from_u64(seed ^ 0xab1a);
    let eval = imap_core::eval::eval_under_attack(
        build_task(task),
        victim,
        Attacker::Policy(&out.policy),
        eps,
        budget.eval_episodes,
        &mut rng,
    )?;
    Ok(CellResult {
        eval,
        curve: out.curve,
    })
}

/// Runs one fault-isolated stage of a sweep: panics and [`NnError`]s inside
/// `compute` are caught, recorded as an error row (phase `cell`, tags
/// `status=error` / `error=<message>`), and reported on stderr — the
/// surrounding sweep keeps going instead of aborting.
///
/// Stages run single-threaded, so `AssertUnwindSafe` only waives the
/// compiler's conservatism about captured `&mut` state: a failed stage's
/// partial state is dropped with the closure and never observed again.
pub fn run_isolated<T>(
    tel: &Telemetry,
    tags: &[(&str, &str)],
    compute: impl FnOnce() -> Result<T, NnError>,
) -> Option<T> {
    let error = match catch_unwind(AssertUnwindSafe(compute)) {
        Ok(Ok(value)) => return Some(value),
        Ok(Err(e)) => format!("{e}"),
        Err(payload) => payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic (non-string payload)".to_string()),
    };
    let mut full: Vec<(&str, &str)> = tags.to_vec();
    full.push(("status", "error"));
    full.push(("error", &error));
    tel.record_full("cell", 0, &[], &[], &full);
    eprintln!("cell failed ({}): {error}", format_tags(tags));
    None
}

/// [`run_isolated`] for a full table/figure cell: a successful cell is
/// additionally recorded through [`record_cell`] with `status=ok`.
pub fn run_cell_isolated(
    tel: &Telemetry,
    tags: &[(&str, &str)],
    compute: impl FnOnce() -> Result<CellResult, NnError>,
) -> Option<CellResult> {
    let result = run_isolated(tel, tags, compute)?;
    let mut full: Vec<(&str, &str)> = tags.to_vec();
    full.push(("status", "ok"));
    record_cell(tel, &full, &result);
    Some(result)
}

fn format_tags(tags: &[(&str, &str)]) -> String {
    tags.iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// True when the run asked for span tracing: `--trace` anywhere on the
/// command line, or `IMAP_TRACE` set to anything but `0`/`false`/empty.
pub fn trace_requested() -> bool {
    if std::env::args().any(|a| a == "--trace") {
        return true;
    }
    match std::env::var("IMAP_TRACE") {
        Ok(v) => !matches!(v.trim(), "" | "0" | "false"),
        Err(_) => false,
    }
}

/// Opens the telemetry sink for a bench binary, so every table/figure run
/// leaves machine-readable rows beside its text output.
///
/// The output directory is `$IMAP_TELEMETRY/<bin>` when the variable is
/// set, `results/<bin>/` at the workspace root otherwise. Span tracing
/// (`trace.json` + `spans.jsonl`) turns on when [`trace_requested`] — the
/// `--trace` flag or `IMAP_TRACE=1`. Falls back to the disabled handle
/// (with a note on stderr) if the sink cannot be created.
pub fn bench_telemetry(bin: &str, budget: &Budget, seed: u64) -> Telemetry {
    let dir = match std::env::var("IMAP_TELEMETRY") {
        Ok(base) => PathBuf::from(base).join(bin),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../results")
            .join(bin),
    };
    let run_id = format!("{bin}-{}-seed{seed}", budget.name);
    let manifest = RunManifest::new(&run_id, "suite", bin, seed).with_config(serde_json::json!({
        "budget": budget.name,
        "attack_iters": budget.attack_iters,
        "attack_steps": budget.attack_steps,
        "eval_episodes": budget.eval_episodes,
    }));
    match Telemetry::jsonl_opts(&dir, &manifest, trace_requested()) {
        Ok(tel) => tel,
        Err(e) => {
            eprintln!("telemetry disabled ({}: {e})", dir.display());
            Telemetry::null()
        }
    }
}

/// Records one finished table/figure cell as a tagged `cell`-phase row.
pub fn record_cell(tel: &Telemetry, tags: &[(&str, &str)], result: &CellResult) {
    imap_core::record_attack_eval(tel, "cell", tags, &result.eval);
}

/// Records an attack training curve: one `curve`-phase row per iteration,
/// carrying the same tags as the owning cell.
pub fn record_curve(tel: &Telemetry, tags: &[(&str, &str)], curve: &[imap_core::CurvePoint]) {
    for (i, p) in curve.iter().enumerate() {
        tel.record_full(
            "curve",
            i as u64,
            &[
                ("victim_sparse", p.victim_sparse),
                ("victim_success_rate", p.victim_success_rate),
                ("asr", p.asr),
                ("adv_return", p.adv_return),
                ("tau", p.tau),
            ],
            &[("steps", p.steps as u64)],
            tags,
        );
    }
}

/// Flushes the sink — structured timing rows into `metrics.jsonl`,
/// `report.json` beside the manifest, and (when tracing) `trace.json` /
/// `spans.jsonl` — then prints the one-line wall-time summary to stderr.
/// Call at the end of every bench binary.
pub fn finish_telemetry(tel: &Telemetry) {
    if let Some(summary) = tel.finish() {
        eprintln!("{summary}");
    }
}

/// Formats `mean ± std` to table precision.
pub fn cell(mean: f64, std: f64, dense: bool) -> String {
    if dense {
        format!("{mean:>6.0} ± {std:<5.0}")
    } else {
        format!("{mean:>5.2} ± {std:<4.2}")
    }
}

/// Formats a Markdown-ish table row.
pub fn format_row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Prints a Markdown-ish table row.
pub fn print_row(cells: &[String]) {
    println!("{}", format_row(cells));
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn budgets_parse_from_env_default() {
        let b = Budget::from_env();
        assert!(b.name == "quick" || b.name == "full");
    }

    #[test]
    fn budget_parse_rejects_typos_instead_of_defaulting() {
        assert_eq!(Budget::parse(None).unwrap().name, "quick");
        assert_eq!(Budget::parse(Some("quick")).unwrap().name, "quick");
        assert_eq!(Budget::parse(Some("full")).unwrap().name, "full");
        // The bug this guards against: `IMAP_BUDGET=ful` silently running
        // the quick budget.
        assert!(Budget::parse(Some("ful")).is_err());
        assert!(Budget::parse(Some("Full")).is_err());
        assert!(Budget::parse(Some("")).is_err());
    }

    #[test]
    fn seed_parse_rejects_garbage_instead_of_defaulting() {
        assert_eq!(parse_seed(None).unwrap(), 17);
        assert_eq!(parse_seed(Some("42")).unwrap(), 42);
        assert_eq!(parse_seed(Some(" 7 ")).unwrap(), 7);
        assert!(parse_seed(Some("seventeen")).is_err());
        assert!(parse_seed(Some("-3")).is_err());
    }

    #[test]
    fn victim_cache_key_carries_actor_mode_not_count() {
        let mut b = Budget::quick();
        let serial = VictimCache::key(TaskId::Hopper, DefenseMethod::Ppo, &b, 17);
        b.victim.actors = 2;
        let two = VictimCache::key(TaskId::Hopper, DefenseMethod::Ppo, &b, 17);
        b.victim.actors = 4;
        let four = VictimCache::key(TaskId::Hopper, DefenseMethod::Ppo, &b, 17);
        assert_ne!(serial, two, "serial and actor-mode victims differ bitwise");
        assert_eq!(two, four, "actor counts share one cache entry");
    }

    #[test]
    fn table1_columns_order() {
        let cols = AttackKind::table1_columns();
        assert_eq!(cols.len(), 7);
        assert_eq!(cols[0].label(), "No Attack");
        assert_eq!(cols[2].label(), "SA-RL");
        assert_eq!(cols[3].label(), "IMAP-SC");
        assert_eq!(cols[6].label(), "IMAP-D");
    }

    #[test]
    fn cell_formatting() {
        assert!(cell(3167.4, 542.0, true).contains("3167"));
        assert!(cell(0.954, 0.02, false).contains("0.95"));
    }

    #[test]
    fn record_cell_and_curve_emit_tagged_rows() {
        let (tel, mem) = Telemetry::memory("bench-test");
        let result = CellResult {
            eval: AttackEval {
                asr: 0.75,
                episodes: 4,
                ..AttackEval::default()
            },
            curve: vec![imap_core::CurvePoint {
                steps: 2048,
                victim_sparse: 0.5,
                victim_success_rate: 0.5,
                asr: 0.5,
                adv_return: -1.0,
                tau: 1.0,
            }],
        };
        let tags = [("task", "Hopper"), ("attack", "IMAP-PC")];
        record_cell(&tel, &tags, &result);
        record_curve(&tel, &tags, &result.curve);
        let rows = mem.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].phase, "cell");
        assert_eq!(rows[0].tags["attack"], "IMAP-PC");
        assert_eq!(rows[0].scalars["asr"], 0.75);
        assert_eq!(rows[1].phase, "curve");
        assert_eq!(rows[1].counters["steps"], 2048);
    }

    #[test]
    fn isolated_sweep_survives_panicking_and_erroring_cells() {
        use imap_env::locomotion::Hopper;
        use imap_env::{FaultKind, FaultPlan, FaultyEnv};
        use imap_rl::train_ppo;

        let (tel, mem) = Telemetry::memory("bench-fault");
        let ok_cell = || {
            Ok(CellResult {
                eval: AttackEval {
                    episodes: 1,
                    ..AttackEval::default()
                },
                curve: vec![],
            })
        };
        let mut kept = Vec::new();
        for (idx, name) in ["a", "b", "c", "d"].into_iter().enumerate() {
            let tags = [("cell", name)];
            let r = run_cell_isolated(&tel, &tags, || match idx {
                // A real trainer over an env that crashes mid-rollout.
                1 => {
                    let mut env =
                        FaultyEnv::new(Hopper::new(), FaultPlan::once(FaultKind::Panic, 40));
                    let cfg = TrainConfig {
                        iterations: 1,
                        steps_per_iter: 128,
                        hidden: vec![8],
                        seed: 7,
                        ..TrainConfig::default()
                    };
                    train_ppo(&mut env, &cfg, None, None)?;
                    ok_cell()
                }
                2 => Err(NnError::Numeric {
                    context: "injected blowup".into(),
                }),
                _ => ok_cell(),
            });
            kept.push(r.is_some());
        }
        assert_eq!(kept, vec![true, false, false, true]);
        let rows = mem.rows();
        let errors: Vec<_> = rows
            .iter()
            .filter(|r| {
                r.phase == "cell" && r.tags.get("status").map(String::as_str) == Some("error")
            })
            .collect();
        assert_eq!(errors.len(), 2, "both failed cells leave an error row");
        assert_eq!(errors[0].tags["cell"], "b");
        assert!(errors[0].tags["error"].contains("injected fault"));
        assert_eq!(errors[1].tags["cell"], "c");
        assert!(errors[1].tags["error"].contains("non-finite"));
        let oks = rows
            .iter()
            .filter(|r| r.phase == "cell" && r.tags.get("status").map(String::as_str) == Some("ok"))
            .count();
        assert_eq!(oks, 2, "surviving cells still record normally");
    }

    #[test]
    fn attack_kind_codes_roundtrip() {
        let mut kinds = vec![AttackKind::NoAttack, AttackKind::Random, AttackKind::SaRl];
        kinds.extend(RegularizerKind::ALL.into_iter().map(AttackKind::Imap));
        kinds.extend(RegularizerKind::ALL.into_iter().map(AttackKind::ImapBr));
        for kind in kinds {
            assert_eq!(AttackKind::from_code(&kind.code()), Some(kind));
        }
        assert_eq!(AttackKind::from_code("imap-XX"), None);
        assert_eq!(AttackKind::from_code(""), None);
    }

    #[test]
    fn ablate_variant_codes_roundtrip() {
        for v in [
            AblateVariant::Knn(10),
            AblateVariant::UnionCap(5_000),
            AblateVariant::IntrinsicScale(0.5),
        ] {
            let (mode, value) = v.code();
            assert_eq!(AblateVariant::from_code(mode, value), Some(v));
        }
        assert_eq!(AblateVariant::from_code("nope", 1.0), None);
    }

    #[test]
    fn br_label() {
        assert_eq!(
            AttackKind::ImapBr(RegularizerKind::PolicyCoverage).label(),
            "IMAP-PC+BR"
        );
    }
}
