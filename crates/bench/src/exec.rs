//! The sweep executor: the bridge between the bench cell helpers and the
//! supervised worker pool in `imap-harness`.
//!
//! Every table/figure binary builds its grid as a list of [`SweepCell`]s
//! and hands them to [`run_sweep`], which executes them on up to
//! [`SweepConfig::jobs`] worker threads under heartbeat supervision and
//! commits outcomes strictly in cell order. Because telemetry `cell` rows
//! and rendered values are produced only at commit time (on the supervisor
//! thread), a sweep's observable output is bitwise identical at any
//! parallelism level; only the `pool`-phase timing rows differ.
//!
//! Exit-code policy (`--keep-going` semantics): a sweep never aborts on a
//! failing cell — errors and timeouts become rows, the remaining cells
//! keep running, and the binary exits nonzero at the end if any such row
//! was recorded ([`SweepReport::exit_code`]). `--fail-fast` opts into
//! cutting the sweep at the first permanent error instead.

use std::io::IsTerminal;
use std::time::Duration;

use imap_harness::{
    default_jobs, run_supervised, Job, JobCtx, JobStatus, PoolConfig, StatusConfig,
};
use imap_nn::NnError;
use imap_telemetry::Telemetry;

/// Sweep-wide execution policy: worker count, supervision timeouts, retry
/// policy, and the global deadline.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads (`--jobs N` / `IMAP_MAX_PARALLEL`; default: the
    /// machine's available parallelism).
    pub jobs: usize,
    /// Heartbeat silence after which a cell is declared stalled and
    /// cancelled (`IMAP_CELL_TIMEOUT`, seconds; default 600).
    pub stall_timeout: Duration,
    /// Grace period after cancellation before an unresponsive cell's
    /// thread is abandoned and the cell recorded `status=timeout`.
    pub hard_grace: Duration,
    /// Attempts per cell including the first (`IMAP_MAX_ATTEMPTS`,
    /// default 3); transient failures are retried with exponential
    /// backoff and derived seeds.
    pub max_attempts: u32,
    /// Base delay of the retry backoff.
    pub backoff_base: Duration,
    /// Global sweep deadline (`IMAP_SWEEP_DEADLINE`, seconds). On expiry,
    /// queued cells become `status=skipped` rows and running ones are
    /// cancelled, so whatever finished still renders.
    pub deadline: Option<Duration>,
    /// Cut the sweep at the first permanent error (`--fail-fast`).
    pub fail_fast: bool,
    /// Cadence of live `status.json` snapshots (`--status-interval SECS` /
    /// `IMAP_STATUS_INTERVAL`; default 2s, 0 disables). Snapshots are only
    /// written when telemetry has an output directory.
    pub status_interval: Duration,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            jobs: default_jobs(),
            stall_timeout: Duration::from_secs(600),
            hard_grace: Duration::from_secs(5),
            max_attempts: 3,
            backoff_base: Duration::from_millis(250),
            deadline: None,
            fail_fast: false,
            status_interval: Duration::from_secs(2),
        }
    }
}

impl SweepConfig {
    /// Reads the process arguments and environment:
    /// `--jobs N`/`-j N`/`--jobs=N`, `--fail-fast`, `--keep-going` (the
    /// default, accepted for symmetry), plus `IMAP_MAX_PARALLEL`,
    /// `IMAP_CELL_TIMEOUT`, `IMAP_MAX_ATTEMPTS`, and
    /// `IMAP_SWEEP_DEADLINE`. Unparseable values warn loudly on stderr
    /// and keep the default rather than being silently ignored.
    pub fn from_env() -> Self {
        SweepConfig::from_sources(std::env::args().skip(1), |key| std::env::var(key).ok())
    }

    /// [`SweepConfig::from_env`] over explicit sources, so tests can
    /// exercise the parsing without racing on process-global state.
    pub fn from_sources(
        args: impl IntoIterator<Item = String>,
        env: impl Fn(&str) -> Option<String>,
    ) -> Self {
        let mut cfg = SweepConfig::default();
        if let Some(n) = env_parse::<usize>(&env, "IMAP_MAX_PARALLEL") {
            cfg.jobs = n.max(1);
        }
        if let Some(secs) = env_parse::<f64>(&env, "IMAP_CELL_TIMEOUT") {
            if secs > 0.0 {
                cfg.stall_timeout = Duration::from_secs_f64(secs);
            }
        }
        if let Some(n) = env_parse::<u32>(&env, "IMAP_MAX_ATTEMPTS") {
            cfg.max_attempts = n.max(1);
        }
        if let Some(secs) = env_parse::<f64>(&env, "IMAP_SWEEP_DEADLINE") {
            if secs > 0.0 {
                cfg.deadline = Some(Duration::from_secs_f64(secs));
            }
        }
        if let Some(secs) = env_parse::<f64>(&env, "IMAP_STATUS_INTERVAL") {
            if secs >= 0.0 {
                cfg.status_interval = Duration::from_secs_f64(secs);
            }
        }
        let set_status_interval = |cfg: &mut SweepConfig, v: Option<String>| match v
            .and_then(|v| v.parse::<f64>().ok())
        {
            Some(secs) if secs >= 0.0 => cfg.status_interval = Duration::from_secs_f64(secs),
            _ => eprintln!(
                "warning: --status-interval needs a non-negative number of seconds; keeping {:.1}",
                cfg.status_interval.as_secs_f64()
            ),
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--jobs" | "-j" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => cfg.jobs = n,
                    _ => eprintln!(
                        "warning: --jobs needs a positive integer; keeping {}",
                        cfg.jobs
                    ),
                },
                "--fail-fast" => cfg.fail_fast = true,
                "--keep-going" => cfg.fail_fast = false,
                // Parsed by `bench_telemetry`; accepted here so mixing
                // sweep and telemetry flags never warns.
                "--trace" => {}
                "--status-interval" => {
                    let v = args.next();
                    set_status_interval(&mut cfg, v);
                }
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        match v.parse::<usize>() {
                            Ok(n) if n >= 1 => cfg.jobs = n,
                            _ => eprintln!(
                                "warning: --jobs needs a positive integer; keeping {}",
                                cfg.jobs
                            ),
                        }
                    } else if let Some(v) = other.strip_prefix("--status-interval=") {
                        set_status_interval(&mut cfg, Some(v.to_string()));
                    } else {
                        eprintln!(
                            "warning: unrecognized argument {other:?} \
                             (supported: --jobs N, --fail-fast, --keep-going, --trace, \
                             --status-interval SECS)"
                        );
                    }
                }
            }
        }
        cfg
    }

    fn pool(&self, tel: &Telemetry) -> PoolConfig {
        // Live status rides along whenever telemetry writes to a run
        // directory; a zero interval disables it.
        let status = if self.status_interval > Duration::ZERO {
            tel.out_dir().map(|dir| StatusConfig {
                path: dir.join("status.json"),
                interval: self.status_interval,
                tty: std::io::stderr().is_terminal(),
            })
        } else {
            None
        };
        PoolConfig {
            jobs: self.jobs,
            stall_timeout: self.stall_timeout,
            hard_grace: self.hard_grace,
            max_attempts: self.max_attempts,
            backoff_base: self.backoff_base,
            deadline: self.deadline,
            fail_fast: self.fail_fast,
            telemetry: tel.clone(),
            status,
            ..PoolConfig::default()
        }
    }
}

fn env_parse<T: std::str::FromStr>(env: &impl Fn(&str) -> Option<String>, key: &str) -> Option<T> {
    let raw = env(key)?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: unparseable {key}={raw:?}; keeping the default");
            None
        }
    }
}

/// One cell of a sweep grid: a label, the telemetry tags identifying it,
/// its base seed, and the work itself.
pub struct SweepCell<T> {
    label: String,
    tags: Vec<(String, String)>,
    seed: u64,
    kind: CellKind<T>,
}

#[allow(clippy::type_complexity)]
enum CellKind<T> {
    Run(Box<dyn Fn(&JobCtx) -> Result<T, NnError> + Send + Sync>),
    Skip(String),
}

impl<T> SweepCell<T> {
    /// A runnable cell. The closure receives the supervisor's [`JobCtx`]
    /// — it must thread `ctx.progress` into its training loops and use
    /// `ctx.seed` (the base seed on attempt 0, a derived seed on retries).
    pub fn new(
        label: impl Into<String>,
        tags: &[(&str, &str)],
        seed: u64,
        run: impl Fn(&JobCtx) -> Result<T, NnError> + Send + Sync + 'static,
    ) -> Self {
        SweepCell {
            label: label.into(),
            tags: own_tags(tags),
            seed,
            kind: CellKind::Run(Box::new(run)),
        }
    }

    /// A cell committed as `status=skipped` without running — used when a
    /// dependency (e.g. the victim the cell would attack) failed.
    pub fn skipped(
        label: impl Into<String>,
        tags: &[(&str, &str)],
        reason: impl Into<String>,
    ) -> Self {
        SweepCell {
            label: label.into(),
            tags: own_tags(tags),
            seed: 0,
            kind: CellKind::Skip(reason.into()),
        }
    }
}

fn own_tags(tags: &[(&str, &str)]) -> Vec<(String, String)> {
    tags.iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Per-status cell counts for one binary's sweeps (a binary running
/// several stages accumulates them all into one report).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Cells that completed.
    pub ok: usize,
    /// Cells whose every attempt failed.
    pub error: usize,
    /// Cells abandoned by the stall watchdog.
    pub timeout: usize,
    /// Cells that never ran (failed dependency, sweep deadline, fail-fast).
    pub skipped: usize,
}

impl SweepReport {
    fn tally<T>(&mut self, status: &JobStatus<T>) {
        match status {
            JobStatus::Ok(_) => self.ok += 1,
            JobStatus::Error { .. } => self.error += 1,
            JobStatus::Timeout { .. } => self.timeout += 1,
            JobStatus::Skipped { .. } => self.skipped += 1,
        }
    }

    /// True when any cell ended in `error` or `timeout`.
    pub fn failed(&self) -> bool {
        self.error > 0 || self.timeout > 0
    }

    /// The per-status summary line every bench binary prints last.
    pub fn summary_line(&self) -> String {
        format!(
            "sweep summary: ok={} error={} timeout={} skipped={}",
            self.ok, self.error, self.timeout, self.skipped
        )
    }

    /// Process exit code: nonzero iff an error or timeout row was
    /// recorded, so CI catches partially-failed sweeps even though the
    /// sweep itself keeps going (`--keep-going` semantics).
    pub fn exit_code(&self) -> i32 {
        i32::from(self.failed())
    }
}

/// Runs one stage of a sweep on the supervised pool and returns one
/// [`JobStatus`] per cell, in cell order.
///
/// Outcomes are committed strictly in cell order on the calling thread:
/// `on_ok(tags, value)` fires for completed cells (with `status=ok`
/// appended to the cell's tags) and is where callers record their
/// `cell`-phase telemetry; error/timeout/skipped cells are recorded here
/// with the matching `status` tag and reported on stderr. `report`
/// accumulates the per-status counts.
pub fn run_sweep<T: Send + 'static>(
    tel: &Telemetry,
    cfg: &SweepConfig,
    cells: Vec<SweepCell<T>>,
    report: &mut SweepReport,
    mut on_ok: impl FnMut(&[(&str, &str)], &T),
) -> Vec<JobStatus<T>> {
    let metas: Vec<(String, Vec<(String, String)>)> = cells
        .iter()
        .map(|c| (c.label.clone(), c.tags.clone()))
        .collect();
    let jobs: Vec<Job<T>> = cells
        .into_iter()
        .map(|c| match c.kind {
            CellKind::Skip(reason) => Job::skipped(c.label, reason),
            CellKind::Run(run) => Job::new(c.label, c.seed, move |ctx: &JobCtx| {
                run(ctx).map_err(|e| e.to_string())
            }),
        })
        .collect();
    run_supervised(&cfg.pool(tel), jobs, |idx, status| {
        let (label, tags) = &metas[idx];
        let mut full: Vec<(&str, &str)> =
            tags.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        match status {
            JobStatus::Ok(value) => {
                full.push(("status", "ok"));
                on_ok(&full, value);
            }
            JobStatus::Error { message, attempts } => {
                full.push(("status", "error"));
                full.push(("error", message));
                tel.record_full("cell", 0, &[], &[("attempts", u64::from(*attempts))], &full);
                eprintln!("cell failed ({label}): {message}");
            }
            JobStatus::Timeout { attempts } => {
                full.push(("status", "timeout"));
                tel.record_full("cell", 0, &[], &[("attempts", u64::from(*attempts))], &full);
                eprintln!("cell timed out ({label}) after {attempts} attempt(s)");
            }
            JobStatus::Skipped { reason } => {
                full.push(("status", "skipped"));
                full.push(("reason", reason));
                tel.record_full("cell", 0, &[], &[], &full);
                eprintln!("cell skipped ({label}): {reason}");
            }
        }
        report.tally(status);
    })
}

/// The skip reason a dependent cell carries when its dependency stage
/// ended in `status`: `None` when the dependency succeeded.
pub fn dep_skip_reason<T>(status: &JobStatus<T>) -> Option<String> {
    match status {
        JobStatus::Ok(_) => None,
        other => Some(format!("victim_{}", other.name())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    fn quick(cfg: &mut SweepConfig) {
        cfg.stall_timeout = Duration::from_millis(200);
        cfg.hard_grace = Duration::from_millis(100);
        cfg.backoff_base = Duration::from_millis(5);
    }

    #[test]
    fn from_sources_parses_jobs_flag_and_env() {
        let cfg = SweepConfig::from_sources(["--jobs".into(), "4".into()], no_env);
        assert_eq!(cfg.jobs, 4);
        let cfg = SweepConfig::from_sources(["--jobs=2".into(), "--fail-fast".into()], no_env);
        assert_eq!(cfg.jobs, 2);
        assert!(cfg.fail_fast);
        let cfg = SweepConfig::from_sources(std::iter::empty(), |key| match key {
            "IMAP_MAX_PARALLEL" => Some("3".into()),
            "IMAP_CELL_TIMEOUT" => Some("1.5".into()),
            "IMAP_SWEEP_DEADLINE" => Some("60".into()),
            _ => None,
        });
        assert_eq!(cfg.jobs, 3);
        assert_eq!(cfg.stall_timeout, Duration::from_secs_f64(1.5));
        assert_eq!(cfg.deadline, Some(Duration::from_secs(60)));
    }

    #[test]
    fn from_sources_parses_status_interval_and_tolerates_trace() {
        let cfg = SweepConfig::from_sources(
            ["--status-interval".into(), "0.5".into(), "--trace".into()],
            no_env,
        );
        assert_eq!(cfg.status_interval, Duration::from_secs_f64(0.5));
        let cfg = SweepConfig::from_sources(["--status-interval=0".into()], no_env);
        assert_eq!(cfg.status_interval, Duration::ZERO);
        let cfg = SweepConfig::from_sources(std::iter::empty(), |key| match key {
            "IMAP_STATUS_INTERVAL" => Some("7".into()),
            _ => None,
        });
        assert_eq!(cfg.status_interval, Duration::from_secs(7));
        // Bad values keep the default cadence.
        let cfg = SweepConfig::from_sources(["--status-interval".into(), "soon".into()], no_env);
        assert_eq!(cfg.status_interval, SweepConfig::default().status_interval);
    }

    #[test]
    fn unparseable_sources_keep_defaults() {
        let defaults = SweepConfig::default();
        let cfg = SweepConfig::from_sources(
            ["--jobs".into(), "many".into(), "--frobnicate".into()],
            |key| match key {
                "IMAP_CELL_TIMEOUT" => Some("soon".into()),
                "IMAP_MAX_ATTEMPTS" => Some("0".into()),
                _ => None,
            },
        );
        assert_eq!(cfg.jobs, defaults.jobs);
        assert_eq!(cfg.stall_timeout, defaults.stall_timeout);
        assert_eq!(cfg.max_attempts, 1, "zero attempts clamps to one");
    }

    #[test]
    fn run_sweep_commits_rows_and_tallies_statuses() {
        let (tel, mem) = Telemetry::memory("exec-test");
        let mut cfg = SweepConfig {
            jobs: 2,
            max_attempts: 1,
            ..SweepConfig::default()
        };
        quick(&mut cfg);
        let cells = vec![
            SweepCell::new("good", &[("cell", "good")], 1, |_: &JobCtx| Ok(7u32)),
            SweepCell::new("bad", &[("cell", "bad")], 2, |_: &JobCtx| {
                Err(NnError::Numeric {
                    context: "injected".into(),
                })
            }),
            SweepCell::skipped("dep", &[("cell", "dep")], "victim_error"),
        ];
        let mut report = SweepReport::default();
        let mut oks = Vec::new();
        let out = run_sweep(&tel, &cfg, cells, &mut report, |tags, v| {
            oks.push((own_tags(tags), *v));
        });
        assert_eq!(out.len(), 3);
        assert_eq!(
            report,
            SweepReport {
                ok: 1,
                error: 1,
                timeout: 0,
                skipped: 1
            }
        );
        assert!(report.failed());
        assert_eq!(report.exit_code(), 1);
        assert_eq!(oks.len(), 1);
        assert_eq!(oks[0].1, 7);
        let rows = mem.rows();
        let cell_rows: Vec<_> = rows.iter().filter(|r| r.phase == "cell").collect();
        // Only failure rows come from run_sweep itself; ok rows are the
        // caller's to record.
        assert_eq!(cell_rows.len(), 2);
        assert_eq!(cell_rows[0].tags["status"], "error");
        assert!(cell_rows[0].tags["error"].contains("injected"));
        assert_eq!(cell_rows[1].tags["status"], "skipped");
        assert_eq!(cell_rows[1].tags["reason"], "victim_error");
        assert_eq!(
            report.summary_line(),
            "sweep summary: ok=1 error=1 timeout=0 skipped=1"
        );
    }

    #[test]
    fn dep_skip_reason_names_the_failure_mode() {
        assert_eq!(dep_skip_reason(&JobStatus::Ok(1u8)), None);
        assert_eq!(
            dep_skip_reason::<u8>(&JobStatus::Timeout { attempts: 1 }),
            Some("victim_timeout".into())
        );
    }
}
