//! The sweep executor: the bridge between the bench cell helpers and the
//! supervised worker pool in `imap-harness`.
//!
//! Every table/figure binary builds its grid as a list of [`SweepCell`]s
//! and hands them to [`run_sweep`], which executes them on up to
//! [`SweepConfig::jobs`] worker threads under heartbeat supervision and
//! commits outcomes strictly in cell order. Because telemetry `cell` rows
//! and rendered values are produced only at commit time (on the supervisor
//! thread), a sweep's observable output is bitwise identical at any
//! parallelism level; only the `pool`-phase timing rows differ.
//!
//! Exit-code policy (`--keep-going` semantics): a sweep never aborts on a
//! failing cell — errors and timeouts become rows, the remaining cells
//! keep running, and the binary exits nonzero at the end if any such row
//! was recorded ([`SweepReport::exit_code`]). `--fail-fast` opts into
//! cutting the sweep at the first permanent error instead.

use std::io::IsTerminal;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use imap_harness::{
    committed_cells, default_jobs, read_ledger_rows, run_cell_in_child, run_supervised,
    stage_fingerprint, CellRequest, ChildConfig, Job, JobCtx, JobStatus, Ledger, LedgerRow,
    PoolConfig, ShardSpec, StatusConfig, StatusMeta,
};
use imap_nn::NnError;
use imap_telemetry::Telemetry;

/// Ledger file name inside the telemetry output directory.
const LEDGER_FILE: &str = "ledger.jsonl";

/// Sentinel skip reason marking a cell whose committed outcome is being
/// replayed from the ledger instead of re-run. Never collides with real
/// skip reasons (those are `victim_*` / deadline strings).
const LEDGER_RESTORED: &str = "__ledger_restored__";

/// Sentinel skip reason marking a cell owned by another shard of a
/// multi-host partition. Foreign cells produce *no* observable output
/// here — no telemetry rows, no ledger rows, no stderr, no report tally —
/// because another worker commits them; only the returned status records
/// the skip.
const SHARD_FOREIGN: &str = "__shard_foreign__";

/// The public skip reason foreign cells carry in the returned statuses.
pub const SHARD_FOREIGN_REASON: &str = "shard_foreign";

/// Sweep-wide execution policy: worker count, supervision timeouts, retry
/// policy, and the global deadline.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads (`--jobs N` / `IMAP_MAX_PARALLEL`; default: the
    /// machine's available parallelism).
    pub jobs: usize,
    /// Heartbeat silence after which a cell is declared stalled and
    /// cancelled (`IMAP_CELL_TIMEOUT`, seconds; default 600).
    pub stall_timeout: Duration,
    /// Grace period after cancellation before an unresponsive cell's
    /// thread is abandoned and the cell recorded `status=timeout`.
    pub hard_grace: Duration,
    /// Attempts per cell including the first (`IMAP_MAX_ATTEMPTS`,
    /// default 3); transient failures are retried with exponential
    /// backoff and derived seeds.
    pub max_attempts: u32,
    /// Base delay of the retry backoff.
    pub backoff_base: Duration,
    /// Global sweep deadline (`IMAP_SWEEP_DEADLINE`, seconds). On expiry,
    /// queued cells become `status=skipped` rows and running ones are
    /// cancelled, so whatever finished still renders.
    pub deadline: Option<Duration>,
    /// Cut the sweep at the first permanent error (`--fail-fast`).
    pub fail_fast: bool,
    /// Cadence of live `status.json` snapshots (`--status-interval SECS` /
    /// `IMAP_STATUS_INTERVAL`; default 2s, 0 disables). Snapshots are only
    /// written when telemetry has an output directory.
    pub status_interval: Duration,
    /// Run each spec-carrying cell in a sacrificial child process
    /// (`--isolate` / `IMAP_ISOLATE`): panics, aborts, leaks, and hangs die
    /// with the child instead of the sweep. Cells without a spec still run
    /// in-process (with a warning).
    pub isolate: bool,
    /// Resume from the ledger (`--resume`): cells already committed in
    /// `ledger.jsonl` are replayed verbatim — including failures — instead
    /// of re-run, after re-verifying the sweep-spec fingerprint.
    pub resume: bool,
    /// Executable spawned for isolated cells. `None` (the default) spawns
    /// `current_exe()`; tests point it at a dedicated cell-server binary
    /// because the test harness owns `argv`.
    pub child_exe: Option<PathBuf>,
    /// External cancellation for the whole sweep: the service layer's
    /// job-cancel handle. When the token trips, queued cells are skipped
    /// with reason `cancelled` and running ones are cancelled (then
    /// killed if unresponsive). `None` — the default — means only the
    /// deadline and fail-fast cuts apply.
    pub cancel: Option<imap_harness::CancelToken>,
    /// Run only this shard of an `N`-way contiguous grid partition
    /// (`--shard i/N` / `IMAP_SHARD`). Cells owned by other shards are
    /// skipped without side effects; the stage fingerprint still covers
    /// the full grid, so per-shard ledgers merge (and cross-verify)
    /// through `imap merge-ledgers`.
    pub shard: Option<ShardSpec>,
    /// Stage ordinal, shared across clones: each `run_sweep` call with this
    /// config is one ledger stage, in call order. Public only so struct
    /// update syntax (`..SweepConfig::default()`) works outside this
    /// module; callers should never touch it.
    pub stage: Arc<AtomicUsize>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            jobs: default_jobs(),
            stall_timeout: Duration::from_secs(600),
            hard_grace: Duration::from_secs(5),
            max_attempts: 3,
            backoff_base: Duration::from_millis(250),
            deadline: None,
            fail_fast: false,
            status_interval: Duration::from_secs(2),
            isolate: false,
            resume: false,
            child_exe: None,
            cancel: None,
            shard: None,
            stage: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl SweepConfig {
    /// Reads the process arguments and environment:
    /// `--jobs N`/`-j N`/`--jobs=N`, `--fail-fast`, `--keep-going` (the
    /// default, accepted for symmetry), `--isolate`, `--resume`, plus
    /// `IMAP_MAX_PARALLEL`, `IMAP_CELL_TIMEOUT`, `IMAP_MAX_ATTEMPTS`,
    /// `IMAP_SWEEP_DEADLINE`, and `IMAP_ISOLATE`. Unparseable values warn
    /// loudly on stderr and keep the default rather than being silently
    /// ignored.
    pub fn from_env() -> Self {
        SweepConfig::from_sources(std::env::args().skip(1), |key| std::env::var(key).ok())
    }

    /// [`SweepConfig::from_env`] over explicit sources, so tests can
    /// exercise the parsing without racing on process-global state.
    pub fn from_sources(
        args: impl IntoIterator<Item = String>,
        env: impl Fn(&str) -> Option<String>,
    ) -> Self {
        let mut cfg = SweepConfig::default();
        if let Some(n) = env_parse::<usize>(&env, "IMAP_MAX_PARALLEL") {
            cfg.jobs = n.max(1);
        }
        if let Some(secs) = env_parse::<f64>(&env, "IMAP_CELL_TIMEOUT") {
            if secs > 0.0 {
                cfg.stall_timeout = Duration::from_secs_f64(secs);
            }
        }
        if let Some(n) = env_parse::<u32>(&env, "IMAP_MAX_ATTEMPTS") {
            cfg.max_attempts = n.max(1);
        }
        if let Some(secs) = env_parse::<f64>(&env, "IMAP_SWEEP_DEADLINE") {
            if secs > 0.0 {
                cfg.deadline = Some(Duration::from_secs_f64(secs));
            }
        }
        if let Some(secs) = env_parse::<f64>(&env, "IMAP_STATUS_INTERVAL") {
            if secs >= 0.0 {
                cfg.status_interval = Duration::from_secs_f64(secs);
            }
        }
        if let Some(raw) = env("IMAP_ISOLATE") {
            cfg.isolate = !matches!(raw.trim(), "" | "0" | "false");
        }
        let set_shard = |cfg: &mut SweepConfig, v: Option<String>| match v
            .as_deref()
            .map(ShardSpec::parse)
        {
            Some(Ok(spec)) => cfg.shard = Some(spec),
            Some(Err(e)) => eprintln!("warning: bad --shard / IMAP_SHARD ({e}); running unsharded"),
            None => eprintln!("warning: --shard needs a value like 0/3; running unsharded"),
        };
        if let Some(raw) = env("IMAP_SHARD") {
            set_shard(&mut cfg, Some(raw));
        }
        let set_status_interval = |cfg: &mut SweepConfig, v: Option<String>| match v
            .and_then(|v| v.parse::<f64>().ok())
        {
            Some(secs) if secs >= 0.0 => cfg.status_interval = Duration::from_secs_f64(secs),
            _ => eprintln!(
                "warning: --status-interval needs a non-negative number of seconds; keeping {:.1}",
                cfg.status_interval.as_secs_f64()
            ),
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--jobs" | "-j" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => cfg.jobs = n,
                    _ => eprintln!(
                        "warning: --jobs needs a positive integer; keeping {}",
                        cfg.jobs
                    ),
                },
                "--fail-fast" => cfg.fail_fast = true,
                "--keep-going" => cfg.fail_fast = false,
                "--isolate" => cfg.isolate = true,
                "--resume" => cfg.resume = true,
                // Parsed by `bench_telemetry`; accepted here so mixing
                // sweep and telemetry flags never warns.
                "--trace" => {}
                "--status-interval" => {
                    let v = args.next();
                    set_status_interval(&mut cfg, v);
                }
                "--shard" => {
                    let v = args.next();
                    set_shard(&mut cfg, v);
                }
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        match v.parse::<usize>() {
                            Ok(n) if n >= 1 => cfg.jobs = n,
                            _ => eprintln!(
                                "warning: --jobs needs a positive integer; keeping {}",
                                cfg.jobs
                            ),
                        }
                    } else if let Some(v) = other.strip_prefix("--status-interval=") {
                        set_status_interval(&mut cfg, Some(v.to_string()));
                    } else if let Some(v) = other.strip_prefix("--shard=") {
                        set_shard(&mut cfg, Some(v.to_string()));
                    } else {
                        eprintln!(
                            "warning: unrecognized argument {other:?} \
                             (supported: --jobs N, --fail-fast, --keep-going, --trace, \
                             --status-interval SECS, --isolate, --resume, --shard i/N)"
                        );
                    }
                }
            }
        }
        cfg
    }

    fn pool(&self, tel: &Telemetry, meta: StatusMeta) -> PoolConfig {
        // Live status rides along whenever telemetry writes to a run
        // directory; a zero interval disables it.
        let status = if self.status_interval > Duration::ZERO {
            tel.out_dir().map(|dir| StatusConfig {
                path: dir.join("status.json"),
                interval: self.status_interval,
                tty: std::io::stderr().is_terminal(),
                meta,
            })
        } else {
            None
        };
        PoolConfig {
            jobs: self.jobs,
            stall_timeout: self.stall_timeout,
            hard_grace: self.hard_grace,
            max_attempts: self.max_attempts,
            backoff_base: self.backoff_base,
            deadline: self.deadline,
            fail_fast: self.fail_fast,
            cancel: self.cancel.clone(),
            telemetry: tel.clone(),
            status,
            ..PoolConfig::default()
        }
    }
}

fn env_parse<T: std::str::FromStr>(env: &impl Fn(&str) -> Option<String>, key: &str) -> Option<T> {
    let raw = env(key)?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: unparseable {key}={raw:?}; keeping the default");
            None
        }
    }
}

/// One cell of a sweep grid: a label, the telemetry tags identifying it,
/// its base seed, and the work itself.
pub struct SweepCell<T> {
    label: String,
    tags: Vec<(String, String)>,
    seed: u64,
    kind: CellKind<T>,
    /// Serialized [`crate::cells::CellSpec`]: when present and the sweep
    /// runs with [`SweepConfig::isolate`], the cell executes in a child
    /// process instead of calling the closure.
    spec: Option<serde_json::Value>,
}

#[allow(clippy::type_complexity)]
enum CellKind<T> {
    Run(Box<dyn Fn(&JobCtx) -> Result<T, NnError> + Send + Sync>),
    Skip(String),
}

impl<T> SweepCell<T> {
    /// A runnable cell. The closure receives the supervisor's [`JobCtx`]
    /// — it must thread `ctx.progress` into its training loops and use
    /// `ctx.seed` (the base seed on attempt 0, a derived seed on retries).
    pub fn new(
        label: impl Into<String>,
        tags: &[(&str, &str)],
        seed: u64,
        run: impl Fn(&JobCtx) -> Result<T, NnError> + Send + Sync + 'static,
    ) -> Self {
        SweepCell {
            label: label.into(),
            tags: own_tags(tags),
            seed,
            kind: CellKind::Run(Box::new(run)),
            spec: None,
        }
    }

    /// Attaches a serializable cell spec, making the cell eligible for
    /// process isolation: under [`SweepConfig::isolate`] the sweep ships
    /// the spec to a child process (which must execute it through
    /// `cells::execute`, the same code path as the closure) instead of
    /// calling the closure in-process. A spec that fails to serialize
    /// warns and leaves the cell in-process.
    pub fn isolated(mut self, spec: &impl serde::Serialize) -> Self {
        match serde_json::to_value(spec) {
            Ok(v) => self.spec = Some(v),
            Err(e) => eprintln!(
                "warning: cell spec for {:?} failed to serialize ({e}); running in-process",
                self.label
            ),
        }
        self
    }

    /// A cell committed as `status=skipped` without running — used when a
    /// dependency (e.g. the victim the cell would attack) failed.
    pub fn skipped(
        label: impl Into<String>,
        tags: &[(&str, &str)],
        reason: impl Into<String>,
    ) -> Self {
        SweepCell {
            label: label.into(),
            tags: own_tags(tags),
            seed: 0,
            kind: CellKind::Skip(reason.into()),
            spec: None,
        }
    }
}

fn own_tags(tags: &[(&str, &str)]) -> Vec<(String, String)> {
    tags.iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Per-status cell counts for one binary's sweeps (a binary running
/// several stages accumulates them all into one report).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Cells that completed.
    pub ok: usize,
    /// Cells whose every attempt failed.
    pub error: usize,
    /// Cells abandoned by the stall watchdog.
    pub timeout: usize,
    /// Cells that never ran (failed dependency, sweep deadline, fail-fast).
    pub skipped: usize,
}

impl SweepReport {
    fn tally<T>(&mut self, status: &JobStatus<T>) {
        match status {
            JobStatus::Ok(_) => self.ok += 1,
            JobStatus::Error { .. } => self.error += 1,
            JobStatus::Timeout { .. } => self.timeout += 1,
            JobStatus::Skipped { .. } => self.skipped += 1,
        }
    }

    /// True when any cell ended in `error` or `timeout`.
    pub fn failed(&self) -> bool {
        self.error > 0 || self.timeout > 0
    }

    /// The per-status summary line every bench binary prints last.
    pub fn summary_line(&self) -> String {
        format!(
            "sweep summary: ok={} error={} timeout={} skipped={}",
            self.ok, self.error, self.timeout, self.skipped
        )
    }

    /// Process exit code: nonzero iff an error or timeout row was
    /// recorded, so CI catches partially-failed sweeps even though the
    /// sweep itself keeps going (`--keep-going` semantics).
    pub fn exit_code(&self) -> i32 {
        i32::from(self.failed())
    }
}

/// Decodes a committed ledger cell row back into a [`JobStatus`]. The
/// `ok` value goes through a JSON text round-trip, so a type mismatch
/// (e.g. a ledger written by a different stage layout) is a hard error.
fn restore_status<T: serde::de::DeserializeOwned>(row: &LedgerRow) -> Result<JobStatus<T>, String> {
    match row.status.as_deref() {
        Some("ok") => {
            let value = row.value.as_ref().ok_or("ledger ok row carries no value")?;
            let text =
                serde_json::to_string(value).map_err(|e| format!("re-encode ledger value: {e}"))?;
            let value: T = serde_json::from_str(&text)
                .map_err(|e| format!("ledger value does not decode as the cell type: {e}"))?;
            Ok(JobStatus::Ok(value))
        }
        Some("error") => Ok(JobStatus::Error {
            message: row.error.clone().unwrap_or_default(),
            attempts: row.attempts.unwrap_or(1),
        }),
        Some("timeout") => Ok(JobStatus::Timeout {
            attempts: row.attempts.unwrap_or(1),
        }),
        Some("skipped") => Ok(JobStatus::Skipped {
            reason: row.reason.clone().unwrap_or_default(),
        }),
        other => Err(format!("ledger row carries unknown status {other:?}")),
    }
}

/// Serializes a committed [`JobStatus`] as a ledger cell row.
fn ledger_cell_row<T: serde::Serialize>(
    stage: u64,
    index: usize,
    label: &str,
    seed: u64,
    status: &JobStatus<T>,
) -> LedgerRow {
    match status {
        JobStatus::Ok(value) => LedgerRow::cell(
            stage,
            index,
            label,
            seed,
            "ok",
            1,
            serde_json::to_value(value).ok(),
            None,
            None,
        ),
        JobStatus::Error { message, attempts } => LedgerRow::cell(
            stage,
            index,
            label,
            seed,
            "error",
            *attempts,
            None,
            Some(message.clone()),
            None,
        ),
        JobStatus::Timeout { attempts } => LedgerRow::cell(
            stage, index, label, seed, "timeout", *attempts, None, None, None,
        ),
        JobStatus::Skipped { reason } => LedgerRow::cell(
            stage,
            index,
            label,
            seed,
            "skipped",
            0,
            None,
            None,
            Some(reason.clone()),
        ),
    }
}

/// A refused resume is a configuration error, not a cell failure: the
/// sweep must not silently restart (clobbering the ledger the user asked
/// to resume from), so it dies loudly before running anything.
fn refuse_resume(context: &str, error: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {error}");
    std::process::exit(2);
}

/// Runs one stage of a sweep on the supervised pool and returns one
/// [`JobStatus`] per cell, in cell order.
///
/// Outcomes are committed strictly in cell order on the calling thread:
/// `on_ok(tags, value)` fires for completed cells (with `status=ok`
/// appended to the cell's tags) and is where callers record their
/// `cell`-phase telemetry; error/timeout/skipped cells are recorded here
/// with the matching `status` tag and reported on stderr. `report`
/// accumulates the per-status counts.
///
/// When telemetry writes to a run directory, every committed outcome is
/// also appended (and flushed) to `ledger.jsonl` there, one stage per
/// `run_sweep` call. Under [`SweepConfig::resume`] the ledger is read
/// back first: already-committed cells are *replayed* — their outcomes,
/// telemetry rows, and stderr lines reproduced verbatim, failures
/// included — instead of re-run, after re-verifying that the stage
/// fingerprint (labels, seeds, skip set) matches what the ledger was
/// written against. A mismatch refuses to resume and exits 2.
///
/// Under [`SweepConfig::isolate`], cells carrying a spec (see
/// [`SweepCell::isolated`]) execute in a sacrificial child process; the
/// pool's supervision ladder (stall → cooperative cancel → SIGKILL) is
/// re-terminated over the process boundary by `imap_harness::proc`.
pub fn run_sweep<T>(
    tel: &Telemetry,
    cfg: &SweepConfig,
    cells: Vec<SweepCell<T>>,
    report: &mut SweepReport,
    mut on_ok: impl FnMut(&[(&str, &str)], &T),
) -> Vec<JobStatus<T>>
where
    T: Send + 'static + serde::Serialize + serde::de::DeserializeOwned,
{
    let stage = cfg.stage.fetch_add(1, Ordering::SeqCst) as u64;
    let fingerprint = stage_fingerprint(
        stage,
        cells.iter().map(|c| {
            (
                c.label.as_str(),
                c.seed,
                matches!(c.kind, CellKind::Skip(_)),
            )
        }),
    );

    // Shard ownership: a contiguous index range of the full grid. The
    // fingerprint above deliberately covers every cell — all shards (and
    // the merged artifact) must agree on the whole table.
    let owned: Vec<bool> = match &cfg.shard {
        Some(spec) => (0..cells.len())
            .map(|i| spec.owns(i, cells.len()))
            .collect(),
        None => vec![true; cells.len()],
    };
    if let Some(spec) = &cfg.shard {
        let owned_count = owned.iter().filter(|&&o| o).count() as u64;
        let metrics = tel.metrics();
        metrics.counter("shard/owned").add(owned_count);
        metrics
            .counter("shard/foreign")
            .add(cells.len() as u64 - owned_count);
        eprintln!(
            "shard {spec}: running {owned_count} of {} cell(s) in stage {stage}",
            cells.len()
        );
    }

    // Ledger setup: create/append the stage header, and under --resume
    // read the committed rows back (refusing loudly on any mismatch).
    let ledger_path = tel.out_dir().map(|dir| dir.join(LEDGER_FILE));
    let mut restored_rows: Vec<Option<LedgerRow>> = vec![None; cells.len()];
    let mut ledger = match &ledger_path {
        Some(path) => {
            if cfg.resume {
                let rows = read_ledger_rows(path)
                    .unwrap_or_else(|e| refuse_resume("cannot read sweep ledger", e));
                restored_rows = committed_cells(&rows, stage, &fingerprint, cells.len())
                    .unwrap_or_else(|e| refuse_resume("cannot resume sweep", e));
            }
            let opened = if cfg.resume || stage > 0 {
                Ledger::append(path)
            } else {
                Ledger::create(path)
            };
            match opened {
                Ok(mut ledger) => {
                    let header = LedgerRow::stage_header(stage, &fingerprint, cells.len());
                    if let Err(e) = ledger.append_row(&header) {
                        eprintln!("warning: sweep ledger disabled ({}: {e})", path.display());
                        None
                    } else {
                        Some(ledger)
                    }
                }
                Err(e) => {
                    eprintln!("warning: sweep ledger disabled ({}: {e})", path.display());
                    None
                }
            }
        }
        None => None,
    };

    // Replay statistics: what --resume restored (for the cells this
    // worker owns), surfaced on stderr, in status.json / the TTY ticker,
    // and as ledger/resumed_* counters in report.json.
    let replayed_statuses: Vec<&str> = restored_rows
        .iter()
        .enumerate()
        .filter(|(i, _)| owned[*i])
        .filter_map(|(_, r)| r.as_ref())
        .map(|r| r.status.as_deref().unwrap_or("unknown"))
        .collect();
    let replayed = replayed_statuses.len() as u64;
    let replayed_failed = replayed_statuses
        .iter()
        .filter(|s| matches!(**s, "error" | "timeout"))
        .count() as u64;
    if cfg.resume {
        let metrics = tel.metrics();
        metrics.counter("ledger/resumed").add(replayed);
        metrics
            .counter("ledger/resumed_failed")
            .add(replayed_failed);
        for status in ["ok", "error", "timeout", "skipped"] {
            let n = replayed_statuses.iter().filter(|s| **s == status).count() as u64;
            if n > 0 {
                metrics.counter(&format!("ledger/resumed_{status}")).add(n);
            }
        }
        if replayed > 0 {
            let owned_count = owned.iter().filter(|&&o| o).count() as u64;
            eprintln!(
                "resume: replaying {replayed} committed cell(s) from the ledger \
                 ({replayed_failed} previously failed), {} remaining in stage {stage}",
                owned_count - replayed
            );
        }
    }
    let status_meta = StatusMeta {
        shard: cfg.shard.as_ref().map(ToString::to_string),
        replayed,
        replayed_failed,
    };

    // Child launcher for isolated cells.
    let child_cfg: Option<ChildConfig> = if cfg.isolate {
        let exe = match &cfg.child_exe {
            Some(exe) => Some(exe.clone()),
            None => match std::env::current_exe() {
                Ok(exe) => Some(exe),
                Err(e) => {
                    eprintln!(
                        "warning: --isolate requested but current_exe() failed ({e}); \
                         running cells in-process"
                    );
                    None
                }
            },
        };
        exe.map(|exe| ChildConfig {
            exe,
            hard_grace: cfg.hard_grace,
            telemetry: tel.clone(),
        })
    } else {
        None
    };

    // (label, tags, seed) per cell, kept for the commit closure.
    type CellMeta = (String, Vec<(String, String)>, u64);
    let metas: Vec<CellMeta> = cells
        .iter()
        .map(|c| (c.label.clone(), c.tags.clone(), c.seed))
        .collect();
    let run_id = tel.run_id().to_string();
    let mut unspecced = 0usize;
    let jobs: Vec<Job<T>> = cells
        .into_iter()
        .enumerate()
        .map(|(index, c)| {
            // Foreign cells take precedence over everything: another
            // shard owns them, so this worker neither runs nor replays
            // them.
            if !owned[index] {
                return Job::skipped(c.label, SHARD_FOREIGN);
            }
            if restored_rows[index].is_some() {
                return Job::skipped(c.label, LEDGER_RESTORED);
            }
            match c.kind {
                CellKind::Skip(reason) => Job::skipped(c.label, reason),
                CellKind::Run(run) => match (&child_cfg, c.spec) {
                    (Some(child), Some(spec)) => {
                        let child = child.clone();
                        let label = c.label.clone();
                        let run_id = run_id.clone();
                        Job::new(c.label, c.seed, move |ctx: &JobCtx| {
                            let req = CellRequest {
                                label: label.clone(),
                                index: index as u64,
                                attempt: ctx.attempt,
                                seed: ctx.seed,
                                run_id: run_id.clone(),
                                spec: spec.clone(),
                            };
                            let value = run_cell_in_child(&child, &req, ctx)?;
                            let text = serde_json::to_string(&value)
                                .map_err(|e| format!("re-encode child result: {e}"))?;
                            serde_json::from_str::<T>(&text)
                                .map_err(|e| format!("decode child result: {e}"))
                        })
                    }
                    (maybe_child, _) => {
                        if maybe_child.is_some() {
                            unspecced += 1;
                        }
                        Job::new(c.label, c.seed, move |ctx: &JobCtx| {
                            run(ctx).map_err(|e| e.to_string())
                        })
                    }
                },
            }
        })
        .collect();
    if unspecced > 0 {
        eprintln!(
            "warning: {unspecced} cell(s) carry no spec and run in-process despite --isolate"
        );
    }

    let mut out = run_supervised(&cfg.pool(tel, status_meta), jobs, |idx, status| {
        let (label, tags, seed) = &metas[idx];
        // Foreign cells commit nothing observable: no telemetry, no
        // ledger row, no stderr, no tally. Another shard's worker owns
        // every side effect for them.
        if matches!(status, JobStatus::Skipped { reason } if reason == SHARD_FOREIGN) {
            return;
        }
        // A sentinel skip is a ledger replay: substitute the committed
        // outcome so telemetry, stderr, and on_ok all reproduce verbatim.
        let restored: Option<JobStatus<T>> = match status {
            JobStatus::Skipped { reason } if reason == LEDGER_RESTORED => {
                let row = restored_rows[idx]
                    .as_ref()
                    .unwrap_or_else(|| refuse_resume("ledger replay lost its row", label));
                Some(
                    restore_status(row)
                        .unwrap_or_else(|e| refuse_resume("cannot replay ledger row", e)),
                )
            }
            _ => None,
        };
        let replayed = restored.is_some();
        let status = restored.as_ref().unwrap_or(status);
        let mut full: Vec<(&str, &str)> =
            tags.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        match status {
            JobStatus::Ok(value) => {
                full.push(("status", "ok"));
                on_ok(&full, value);
            }
            JobStatus::Error { message, attempts } => {
                full.push(("status", "error"));
                full.push(("error", message));
                tel.record_full("cell", 0, &[], &[("attempts", u64::from(*attempts))], &full);
                eprintln!("cell failed ({label}): {message}");
            }
            JobStatus::Timeout { attempts } => {
                full.push(("status", "timeout"));
                tel.record_full("cell", 0, &[], &[("attempts", u64::from(*attempts))], &full);
                eprintln!("cell timed out ({label}) after {attempts} attempt(s)");
            }
            JobStatus::Skipped { reason } => {
                full.push(("status", "skipped"));
                full.push(("reason", reason));
                tel.record_full("cell", 0, &[], &[], &full);
                eprintln!("cell skipped ({label}): {reason}");
            }
        }
        // Replayed cells are already in the ledger; fresh commits append
        // (and flush) before the next cell can commit, so a SIGKILL between
        // cells never loses a committed outcome.
        if !replayed {
            if let Some(ledger) = &mut ledger {
                let row = ledger_cell_row(stage, idx, label, *seed, status);
                if let Err(e) = ledger.append_row(&row) {
                    eprintln!("warning: ledger append failed ({e}); resume may re-run this cell");
                }
            }
        }
        report.tally(status);
    });

    // The returned statuses must also carry the replayed outcomes (the
    // pool only saw sentinel skips for them), and foreign cells must not
    // leak the internal sentinel to callers.
    for (idx, slot) in out.iter_mut().enumerate() {
        if !owned[idx] {
            *slot = JobStatus::Skipped {
                reason: SHARD_FOREIGN_REASON.to_string(),
            };
        } else if let Some(row) = &restored_rows[idx] {
            *slot = restore_status(row)
                .unwrap_or_else(|e| refuse_resume("cannot replay ledger row", e));
        }
    }
    out
}

/// The skip reason a dependent cell carries when its dependency stage
/// ended in `status`: `None` when the dependency succeeded.
pub fn dep_skip_reason<T>(status: &JobStatus<T>) -> Option<String> {
    match status {
        JobStatus::Ok(_) => None,
        other => Some(format!("victim_{}", other.name())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    fn quick(cfg: &mut SweepConfig) {
        cfg.stall_timeout = Duration::from_millis(200);
        cfg.hard_grace = Duration::from_millis(100);
        cfg.backoff_base = Duration::from_millis(5);
    }

    #[test]
    fn from_sources_parses_jobs_flag_and_env() {
        let cfg = SweepConfig::from_sources(["--jobs".into(), "4".into()], no_env);
        assert_eq!(cfg.jobs, 4);
        let cfg = SweepConfig::from_sources(["--jobs=2".into(), "--fail-fast".into()], no_env);
        assert_eq!(cfg.jobs, 2);
        assert!(cfg.fail_fast);
        let cfg = SweepConfig::from_sources(std::iter::empty(), |key| match key {
            "IMAP_MAX_PARALLEL" => Some("3".into()),
            "IMAP_CELL_TIMEOUT" => Some("1.5".into()),
            "IMAP_SWEEP_DEADLINE" => Some("60".into()),
            _ => None,
        });
        assert_eq!(cfg.jobs, 3);
        assert_eq!(cfg.stall_timeout, Duration::from_secs_f64(1.5));
        assert_eq!(cfg.deadline, Some(Duration::from_secs(60)));
    }

    #[test]
    fn from_sources_parses_status_interval_and_tolerates_trace() {
        let cfg = SweepConfig::from_sources(
            ["--status-interval".into(), "0.5".into(), "--trace".into()],
            no_env,
        );
        assert_eq!(cfg.status_interval, Duration::from_secs_f64(0.5));
        let cfg = SweepConfig::from_sources(["--status-interval=0".into()], no_env);
        assert_eq!(cfg.status_interval, Duration::ZERO);
        let cfg = SweepConfig::from_sources(std::iter::empty(), |key| match key {
            "IMAP_STATUS_INTERVAL" => Some("7".into()),
            _ => None,
        });
        assert_eq!(cfg.status_interval, Duration::from_secs(7));
        // Bad values keep the default cadence.
        let cfg = SweepConfig::from_sources(["--status-interval".into(), "soon".into()], no_env);
        assert_eq!(cfg.status_interval, SweepConfig::default().status_interval);
    }

    #[test]
    fn unparseable_sources_keep_defaults() {
        let defaults = SweepConfig::default();
        let cfg = SweepConfig::from_sources(
            ["--jobs".into(), "many".into(), "--frobnicate".into()],
            |key| match key {
                "IMAP_CELL_TIMEOUT" => Some("soon".into()),
                "IMAP_MAX_ATTEMPTS" => Some("0".into()),
                _ => None,
            },
        );
        assert_eq!(cfg.jobs, defaults.jobs);
        assert_eq!(cfg.stall_timeout, defaults.stall_timeout);
        assert_eq!(cfg.max_attempts, 1, "zero attempts clamps to one");
    }

    #[test]
    fn run_sweep_commits_rows_and_tallies_statuses() {
        let (tel, mem) = Telemetry::memory("exec-test");
        let mut cfg = SweepConfig {
            jobs: 2,
            max_attempts: 1,
            ..SweepConfig::default()
        };
        quick(&mut cfg);
        let cells = vec![
            SweepCell::new("good", &[("cell", "good")], 1, |_: &JobCtx| Ok(7u32)),
            SweepCell::new("bad", &[("cell", "bad")], 2, |_: &JobCtx| {
                Err(NnError::Numeric {
                    context: "injected".into(),
                })
            }),
            SweepCell::skipped("dep", &[("cell", "dep")], "victim_error"),
        ];
        let mut report = SweepReport::default();
        let mut oks = Vec::new();
        let out = run_sweep(&tel, &cfg, cells, &mut report, |tags, v| {
            oks.push((own_tags(tags), *v));
        });
        assert_eq!(out.len(), 3);
        assert_eq!(
            report,
            SweepReport {
                ok: 1,
                error: 1,
                timeout: 0,
                skipped: 1
            }
        );
        assert!(report.failed());
        assert_eq!(report.exit_code(), 1);
        assert_eq!(oks.len(), 1);
        assert_eq!(oks[0].1, 7);
        let rows = mem.rows();
        let cell_rows: Vec<_> = rows.iter().filter(|r| r.phase == "cell").collect();
        // Only failure rows come from run_sweep itself; ok rows are the
        // caller's to record.
        assert_eq!(cell_rows.len(), 2);
        assert_eq!(cell_rows[0].tags["status"], "error");
        assert!(cell_rows[0].tags["error"].contains("injected"));
        assert_eq!(cell_rows[1].tags["status"], "skipped");
        assert_eq!(cell_rows[1].tags["reason"], "victim_error");
        assert_eq!(
            report.summary_line(),
            "sweep summary: ok=1 error=1 timeout=0 skipped=1"
        );
    }

    #[test]
    fn dep_skip_reason_names_the_failure_mode() {
        assert_eq!(dep_skip_reason(&JobStatus::Ok(1u8)), None);
        assert_eq!(
            dep_skip_reason::<u8>(&JobStatus::Timeout { attempts: 1 }),
            Some("victim_timeout".into())
        );
    }

    #[test]
    fn from_sources_parses_shard() {
        let cfg = SweepConfig::from_sources(["--shard".into(), "1/3".into()], no_env);
        assert_eq!(cfg.shard, Some(ShardSpec { index: 1, count: 3 }));
        let cfg = SweepConfig::from_sources(["--shard=0/2".into()], no_env);
        assert_eq!(cfg.shard, Some(ShardSpec { index: 0, count: 2 }));
        let cfg = SweepConfig::from_sources(std::iter::empty(), |key| match key {
            "IMAP_SHARD" => Some("2/4".into()),
            _ => None,
        });
        assert_eq!(cfg.shard, Some(ShardSpec { index: 2, count: 4 }));
        // Bad values warn and run unsharded rather than mis-partitioning.
        let cfg = SweepConfig::from_sources(["--shard".into(), "3/3".into()], no_env);
        assert_eq!(cfg.shard, None);
        let cfg = SweepConfig::from_sources(["--shard=banana".into()], no_env);
        assert_eq!(cfg.shard, None);
        assert_eq!(SweepConfig::default().shard, None);
    }

    /// The sharding contract, in-process: a shard runs only its own
    /// cells (no telemetry, tallies, or on_ok calls for foreign ones),
    /// and the per-shard ledgers merge byte-identically to the ledger an
    /// unsharded `--jobs 1` run writes.
    #[test]
    fn sharded_sweeps_merge_byte_identical_to_unsharded() {
        use imap_harness::{merge_ledger_files, rows_to_bytes};
        use imap_telemetry::RunManifest;

        let root = std::env::temp_dir().join(format!("imap-exec-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let make_cells = || {
            vec![
                SweepCell::new("a", &[("cell", "a")], 1, |ctx: &JobCtx| Ok(ctx.seed ^ 0xa)),
                SweepCell::new("b", &[("cell", "b")], 2, |_: &JobCtx| {
                    Err::<u64, _>(NnError::Numeric {
                        context: "injected".into(),
                    })
                }),
                SweepCell::skipped("c", &[("cell", "c")], "victim_error"),
                SweepCell::new("d", &[("cell", "d")], 4, |ctx: &JobCtx| Ok(ctx.seed ^ 0xd)),
            ]
        };
        let run = |dir: &std::path::Path, shard: Option<ShardSpec>| {
            let mut cfg = SweepConfig {
                jobs: 1,
                max_attempts: 1,
                shard,
                ..SweepConfig::default()
            };
            quick(&mut cfg);
            let manifest = RunManifest::new("exec-shard", "test", "test", 0);
            let tel = Telemetry::jsonl(dir, &manifest).expect("jsonl telemetry");
            let mut report = SweepReport::default();
            let mut oks = Vec::new();
            let out = run_sweep(&tel, &cfg, make_cells(), &mut report, |tags, v| {
                oks.push((own_tags(tags), *v));
            });
            drop(tel);
            (out, report, oks)
        };

        let base_dir = root.join("base");
        let s0_dir = root.join("s0");
        let s1_dir = root.join("s1");
        let (_, base_report, base_oks) = run(&base_dir, None);
        let (s0_out, s0_report, s0_oks) = run(&s0_dir, Some(ShardSpec { index: 0, count: 2 }));
        let (_, s1_report, s1_oks) = run(&s1_dir, Some(ShardSpec { index: 1, count: 2 }));

        // Shard 0/2 owns cells 0-1, shard 1/2 owns cells 2-3.
        assert_eq!(
            s0_report,
            SweepReport {
                ok: 1,
                error: 1,
                timeout: 0,
                skipped: 0
            },
            "a shard tallies only the cells it owns"
        );
        assert_eq!(
            s1_report,
            SweepReport {
                ok: 1,
                error: 0,
                timeout: 0,
                skipped: 1
            }
        );
        assert!(
            matches!(&s0_out[2], JobStatus::Skipped { reason } if reason == SHARD_FOREIGN_REASON),
            "foreign cells surface as shard_foreign skips, got {:?}",
            s0_out[2]
        );
        let mut sharded_oks = s0_oks;
        sharded_oks.extend(s1_oks);
        assert_eq!(
            sharded_oks, base_oks,
            "the shards' on_ok calls tile the sweep's"
        );
        assert_eq!(
            base_report,
            SweepReport {
                ok: 2,
                error: 1,
                timeout: 0,
                skipped: 1
            }
        );

        let merged = merge_ledger_files(&[s0_dir.join(LEDGER_FILE), s1_dir.join(LEDGER_FILE)])
            .expect("shard ledgers merge");
        assert_eq!(
            rows_to_bytes(&merged),
            std::fs::read(base_dir.join(LEDGER_FILE)).expect("baseline ledger"),
            "merged shard ledgers must be byte-identical to the unsharded run"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn from_sources_parses_isolate_and_resume() {
        let cfg = SweepConfig::from_sources(["--isolate".into(), "--resume".into()], no_env);
        assert!(cfg.isolate);
        assert!(cfg.resume);
        let cfg = SweepConfig::from_sources(std::iter::empty(), |key| match key {
            "IMAP_ISOLATE" => Some("1".into()),
            _ => None,
        });
        assert!(cfg.isolate, "IMAP_ISOLATE=1 turns isolation on");
        let cfg = SweepConfig::from_sources(std::iter::empty(), |key| match key {
            "IMAP_ISOLATE" => Some("false".into()),
            _ => None,
        });
        assert!(!cfg.isolate, "IMAP_ISOLATE=false stays in-process");
        assert!(!cfg.resume);
        let defaults = SweepConfig::default();
        assert!(!defaults.isolate);
        assert!(!defaults.resume);
        assert!(defaults.child_exe.is_none());
    }

    /// The resume contract, end to end in-process: a sweep writes its
    /// ledger next to the telemetry artifacts; a second run over the same
    /// grid with `resume` on replays every committed outcome — failures
    /// included — without re-running a single cell, and its telemetry
    /// rows and returned statuses match the first run's verbatim.
    #[test]
    fn resume_replays_committed_cells_without_rerunning() {
        use std::sync::atomic::AtomicU32;

        use imap_telemetry::RunManifest;

        let dir = std::env::temp_dir().join(format!("imap-exec-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let runs = Arc::new(AtomicU32::new(0));
        let make_cells = |runs: &Arc<AtomicU32>| {
            let r1 = runs.clone();
            let r2 = runs.clone();
            vec![
                SweepCell::new("good", &[("cell", "good")], 1, move |ctx: &JobCtx| {
                    r1.fetch_add(1, Ordering::SeqCst);
                    Ok(ctx.seed ^ 0xbeef)
                }),
                SweepCell::new("bad", &[("cell", "bad")], 2, move |_: &JobCtx| {
                    r2.fetch_add(1, Ordering::SeqCst);
                    Err::<u64, _>(NnError::Numeric {
                        context: "injected".into(),
                    })
                }),
                SweepCell::skipped("dep", &[("cell", "dep")], "victim_error"),
            ]
        };
        let mut cfg = SweepConfig {
            jobs: 1,
            max_attempts: 1,
            ..SweepConfig::default()
        };
        quick(&mut cfg);

        let manifest = RunManifest::new("exec-resume", "test", "test", 0);
        let tel = Telemetry::jsonl(&dir, &manifest).expect("jsonl telemetry");
        let mut report = SweepReport::default();
        let mut first_oks = Vec::new();
        let first = run_sweep(&tel, &cfg, make_cells(&runs), &mut report, |tags, v| {
            first_oks.push((own_tags(tags), *v));
        });
        drop(tel);
        assert_eq!(runs.load(Ordering::SeqCst), 2, "both live cells ran once");
        let ledger = std::fs::read_to_string(dir.join(LEDGER_FILE)).expect("ledger written");
        assert!(ledger.lines().count() >= 4, "header + three cell rows");

        // Same grid, fresh config (stage counter restarts at 0), resume on.
        let mut cfg = SweepConfig {
            jobs: 1,
            max_attempts: 1,
            resume: true,
            ..SweepConfig::default()
        };
        quick(&mut cfg);
        let tel = Telemetry::jsonl(&dir, &manifest).expect("jsonl telemetry");
        let mut replay_report = SweepReport::default();
        let mut replay_oks = Vec::new();
        let second = run_sweep(
            &tel,
            &cfg,
            make_cells(&runs),
            &mut replay_report,
            |tags, v| {
                replay_oks.push((own_tags(tags), *v));
            },
        );
        drop(tel);
        assert_eq!(
            runs.load(Ordering::SeqCst),
            2,
            "resume must not re-run committed cells"
        );
        assert_eq!(replay_report, report, "replayed tallies match");
        assert_eq!(replay_oks, first_oks, "replayed on_ok calls match");
        assert_eq!(second.len(), first.len());
        match (&first[0], &second[0]) {
            (JobStatus::Ok(a), JobStatus::Ok(b)) => assert_eq!(a, b),
            other => panic!("good cell must replay as Ok, got {other:?}"),
        }
        match &second[1] {
            JobStatus::Error { message, .. } => {
                assert!(message.contains("injected"), "failure replays verbatim")
            }
            other => panic!("bad cell must replay as Error, got {other:?}"),
        }
        assert!(
            matches!(&second[2], JobStatus::Skipped { reason } if reason == "victim_error"),
            "real skips replay with their original reason"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
