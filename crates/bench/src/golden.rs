//! The golden Hopper trace: a tiny seed-pinned PPO run whose per-iteration
//! statistics (and final parameter checksum) are committed as
//! `tests/fixtures/golden_hopper.jsonl` and replayed byte-for-byte in CI.
//!
//! Every float is recorded as its raw `f64` bit pattern (16 hex digits), so
//! the comparison is *bitwise*: any change to kernel accumulation order,
//! GAE arithmetic, normalizer updates, or the RNG stream shows up as a
//! failing replay — there is no tolerance to hide behind.
//!
//! One subtlety: the run draws floats through the `rand` *trait* surface
//! (`Rng::gen_range`), whose u64→f64 mapping is an implementation detail of
//! the rand crate, not of this workspace. The fixture therefore opens with
//! an `rng_fingerprint` line hashing a few draws through the exact API
//! surface training uses. A replay under the same backend must match the
//! fixture byte-for-byte; under a different backend (e.g. a rand upgrade)
//! the fingerprint line differs and the replay test degrades to a
//! double-run determinism check until the fixture is regenerated.

use imap_env::{build_task, TaskId};
use imap_nn::{DiagGaussian, NnError};
use imap_rl::checkpoint::fnv1a64;
use imap_rl::train::IterationHook;
use imap_rl::{train_ppo, IterationStats, PpoConfig, SampleOptions, TrainConfig};
use rand::{Rng, SeedableRng};

/// Seed of the committed golden run.
pub const GOLDEN_SEED: u64 = 0x601d;

/// Iterations of the committed golden run (small enough for tier 1).
pub const GOLDEN_ITERATIONS: usize = 3;

/// Hashes a handful of draws through the same `rand` trait surface the
/// training loop uses (`gen_range` over `f64` ranges, the Gaussian head's
/// polar rejection sampler), identifying the RNG *backend* the trace was
/// generated under. The underlying generator ([`imap_env::EnvRng`]) is
/// workspace-owned, so this only changes when the rand crate's u64→f64
/// mapping does.
pub fn rng_fingerprint() -> u64 {
    let mut rng = imap_env::EnvRng::seed_from_u64(GOLDEN_SEED);
    let mut bytes = Vec::new();
    for _ in 0..4 {
        let v: f64 = rng.gen_range(-1.0..1.0);
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for v in DiagGaussian::new(2, -0.5).sample(&[0.0, 0.0], &mut rng) {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn golden_config() -> TrainConfig {
    TrainConfig {
        iterations: GOLDEN_ITERATIONS,
        steps_per_iter: 256,
        hidden: vec![16],
        seed: GOLDEN_SEED,
        ppo: PpoConfig::default(),
        ..TrainConfig::default()
    }
}

/// Runs the golden 3-iteration Hopper PPO configuration and renders the
/// trace: one fingerprint line, one line per [`IterationStats`], and a
/// final FNV-1a checksum over every policy and value parameter's bit
/// pattern.
pub fn golden_hopper_trace() -> Result<String, NnError> {
    trace_with(golden_config())
}

/// The golden run sampled through `actors` parallel rollout actors (the
/// snapshot/merge contract of DESIGN.md §11) instead of the serial legacy
/// path. The rendered trace is identical for *any* `actors >= 1`; it
/// legitimately differs from [`golden_hopper_trace`], whose serial sampler
/// normalizes observations with the online (within-rollout) statistics.
pub fn golden_hopper_trace_actors(actors: usize) -> Result<String, NnError> {
    let mut cfg = golden_config();
    cfg.sampling = SampleOptions {
        actors,
        env_factory: Some(TaskId::Hopper.factory()),
        ..SampleOptions::default()
    };
    trace_with(cfg)
}

/// The golden run with full span tracing and metrics enabled (an in-memory
/// traced telemetry sink). The observability contract (DESIGN.md §12) says
/// tracing reads timestamps and counters but never touches an RNG stream or
/// a parameter, so this must render *exactly* the bytes of
/// [`golden_hopper_trace`]. Also true with `actors` parallel samplers.
pub fn golden_hopper_trace_traced(actors: usize) -> Result<String, NnError> {
    let (tel, _sink) = imap_telemetry::Telemetry::memory_opts("golden-traced", true);
    let mut cfg = golden_config();
    cfg.telemetry = tel;
    if actors > 1 {
        cfg.sampling = SampleOptions {
            actors,
            env_factory: Some(TaskId::Hopper.factory()),
            ..SampleOptions::default()
        };
    }
    trace_with(cfg)
}

fn trace_with(cfg: TrainConfig) -> Result<String, NnError> {
    let mut lines = vec![format!(
        "{{\"rng_fingerprint\":\"{:016x}\"}}",
        rng_fingerprint()
    )];
    let mut on_iter = |s: &IterationStats, _: &imap_rl::GaussianPolicy| {
        lines.push(format!(
            "{{\"iteration\":{},\"total_steps\":{},\"mean_return\":\"{}\",\"mean_length\":\"{}\",\"approx_kl\":\"{}\",\"entropy\":\"{}\"}}",
            s.iteration,
            s.total_steps,
            hex(s.mean_return),
            hex(s.mean_length),
            hex(s.approx_kl),
            hex(s.entropy),
        ));
    };
    let mut env = build_task(TaskId::Hopper);
    let (policy, value) = train_ppo(
        env.as_mut(),
        &cfg,
        None,
        Some(&mut on_iter as &mut IterationHook),
    )?;
    let mut bytes = Vec::new();
    for p in policy.params().iter().chain(value.mlp.params().iter()) {
        bytes.extend_from_slice(&p.to_bits().to_le_bytes());
    }
    lines.push(format!(
        "{{\"params_fnv1a64\":\"{:016x}\"}}",
        fnv1a64(&bytes)
    ));
    lines.push(String::new());
    Ok(lines.join("\n"))
}

/// The fingerprint line a trace opens with, for matching against a fixture.
pub fn fingerprint_line(trace: &str) -> &str {
    trace.lines().next().unwrap_or("")
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_within_a_process() {
        assert_eq!(rng_fingerprint(), rng_fingerprint());
    }

    #[test]
    fn trace_shape_is_fingerprint_iterations_checksum() {
        let trace = golden_hopper_trace().unwrap();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), GOLDEN_ITERATIONS + 2);
        assert!(lines[0].starts_with("{\"rng_fingerprint\":"));
        assert!(lines[1].contains("\"iteration\":0"));
        assert!(lines.last().unwrap().starts_with("{\"params_fnv1a64\":"));
    }
}
