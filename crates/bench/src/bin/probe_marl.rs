//! Calibration probe for the multi-agent games: victim quality, then
//! AP-MARL vs IMAP-PC+BR attack success rates.

use imap_bench::{base_seed, default_xi, marl_victim, run_multi_attack_cell, AttackKind, Budget};
use imap_core::regularizer::RegularizerKind;
use imap_env::MultiTaskId;
use imap_rl::Progress;

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let game = match std::env::var("PROBE_GAME").as_deref() {
        Ok("KickAndDefend") => MultiTaskId::KickAndDefend,
        _ => MultiTaskId::YouShallNotPass,
    };
    eprintln!("probe_marl: game={game:?} budget={}", budget.name);
    let t0 = std::time::Instant::now();
    let victim = marl_victim(game, &budget, seed).expect("probe MARL victim training");
    eprintln!("victim ready in {:.1}s", t0.elapsed().as_secs_f64());

    for kind in [
        AttackKind::Random,
        AttackKind::SaRl, // = AP-MARL on the opponent MDP
        AttackKind::Imap(RegularizerKind::PolicyCoverage),
        AttackKind::ImapBr(RegularizerKind::PolicyCoverage),
    ] {
        let t = std::time::Instant::now();
        let (eval, _) = run_multi_attack_cell(
            game,
            &victim,
            kind,
            &budget,
            seed,
            default_xi(),
            &Progress::null(),
        )
        .expect("probe attack cell");
        let label = if kind == AttackKind::SaRl {
            "AP-MARL".to_string()
        } else {
            kind.label()
        };
        println!(
            "{:<12} ASR={:.2} victim_win={:.2} ({:.0}s)",
            label,
            eval.asr,
            eval.success_rate,
            t.elapsed().as_secs_f64()
        );
    }
}
