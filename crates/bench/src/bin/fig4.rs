//! Figure 4: test-time attack learning curves of SA-RL vs the four IMAP
//! variants on the six sparse locomotion tasks — victim episode score vs
//! attack training samples.
//!
//! Prints one data table per task (rows: training steps; columns: attacks)
//! plus an ASCII overlay chart. Curves are the per-iteration victim scores
//! recorded during attack training (cached, shared with table2/table3).
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin fig4`

use imap_bench::{
    base_seed, bench_telemetry, finish_telemetry, record_curve, run_attack_cell_cached,
    run_cell_isolated, run_isolated, AttackKind, Budget, VictimCache,
};
use imap_core::regularizer::RegularizerKind;
use imap_core::CurvePoint;
use imap_defense::DefenseMethod;
use imap_env::render::Canvas;
use imap_env::TaskId;

const SPARSE_LOCOMOTION: [TaskId; 6] = [
    TaskId::SparseHopper,
    TaskId::SparseWalker2d,
    TaskId::SparseHalfCheetah,
    TaskId::SparseAnt,
    TaskId::SparseHumanoidStandup,
    TaskId::SparseHumanoid,
];

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let tel = bench_telemetry("fig4", &budget, seed);
    let cache = VictimCache::open();
    let attacks: Vec<(AttackKind, char)> = vec![
        (AttackKind::SaRl, 's'),
        (AttackKind::Imap(RegularizerKind::StateCoverage), 'S'),
        (AttackKind::Imap(RegularizerKind::PolicyCoverage), 'P'),
        (AttackKind::Imap(RegularizerKind::Risk), 'R'),
        (AttackKind::Imap(RegularizerKind::Divergence), 'D'),
    ];

    println!(
        "# Figure 4 — sparse locomotion attack curves (budget: {})",
        budget.name
    );
    for task in SPARSE_LOCOMOTION {
        let victim_tags = [("task", task.spec().name), ("stage", "victim_train")];
        let Some(victim) = run_isolated(&tel, &victim_tags, || {
            let _t = tel.span("victim_train");
            cache.victim_with(&tel, task, DefenseMethod::Ppo, &budget, seed)
        }) else {
            continue;
        };
        println!("\n## {}", task.spec().name);
        let mut curves: Vec<(String, char, Vec<CurvePoint>)> = Vec::new();
        for (kind, glyph) in &attacks {
            let label = kind.label();
            let tags = [("task", task.spec().name), ("attack", label.as_str())];
            let Some(r) = run_cell_isolated(&tel, &tags, || {
                let _t = tel.span("attack_cell");
                run_attack_cell_cached(task, DefenseMethod::Ppo, &victim, *kind, &budget, seed)
            }) else {
                continue;
            };
            record_curve(&tel, &tags, &r.curve);
            curves.push((label, *glyph, r.curve));
        }

        // Data table, downsampled to ~10 rows.
        let max_len = curves.iter().map(|(_, _, c)| c.len()).max().unwrap_or(0);
        let stride = (max_len / 10).max(1);
        print!("{:>10}", "steps");
        for (label, glyph, _) in &curves {
            print!("  {label:>10}({glyph})");
        }
        println!();
        for i in (0..max_len).step_by(stride) {
            let steps = curves
                .iter()
                .filter_map(|(_, _, c)| c.get(i).map(|p| p.steps))
                .max()
                .unwrap_or(0);
            print!("{steps:>10}");
            for (_, _, c) in &curves {
                match c.get(i) {
                    Some(p) => print!("  {:>13.2}", p.victim_sparse),
                    None => print!("  {:>13}", "-"),
                }
            }
            println!();
        }

        // ASCII overlay: victim score (y) vs iteration (x).
        let mut canvas = Canvas::new(70, 12, (0.0, max_len.max(2) as f64 - 1.0), (-0.15, 1.05));
        for (_, glyph, c) in &curves {
            let pts: Vec<(f64, f64)> = c
                .iter()
                .enumerate()
                .map(|(i, p)| (i as f64, p.victim_sparse))
                .collect();
            canvas.trace(&pts, *glyph);
        }
        println!("\nvictim score 1.05 .. -0.15 (top..bottom), x = attack iterations:");
        print!("{}", canvas.render());
    }
    println!(
        "\nLegend: s = SA-RL, S = IMAP-SC, P = IMAP-PC, R = IMAP-R, D = IMAP-D. Lower is a stronger attack."
    );
    finish_telemetry(&tel);
}
