//! Figure 4: test-time attack learning curves of SA-RL vs the four IMAP
//! variants on the six sparse locomotion tasks — victim episode score vs
//! attack training samples.
//!
//! Prints one data table per task (rows: training steps; columns: attacks)
//! plus an ASCII overlay chart. Curves are the per-iteration victim scores
//! recorded during attack training (cached, shared with table2/table3).
//!
//! Cells run on the supervised sweep pool (`--jobs N` /
//! `IMAP_MAX_PARALLEL`); the binary exits nonzero if any cell errored or
//! timed out.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin fig4 [-- --jobs N]`

use std::sync::Arc;

use imap_bench::cells::CellSpec;
use imap_bench::exec::{dep_skip_reason, run_sweep, SweepCell, SweepConfig, SweepReport};
use imap_bench::{
    base_seed, bench_telemetry, finish_telemetry, record_cell, record_curve,
    run_attack_cell_cached, AttackKind, Budget, CellCache, CellResult, VictimCache,
};
use imap_core::regularizer::RegularizerKind;
use imap_core::CurvePoint;
use imap_defense::DefenseMethod;
use imap_env::render::Canvas;
use imap_env::TaskId;
use imap_rl::GaussianPolicy;

const SPARSE_LOCOMOTION: [TaskId; 6] = [
    TaskId::SparseHopper,
    TaskId::SparseWalker2d,
    TaskId::SparseHalfCheetah,
    TaskId::SparseAnt,
    TaskId::SparseHumanoidStandup,
    TaskId::SparseHumanoid,
];

fn main() {
    imap_bench::cells::maybe_serve_run_cell();
    let budget = Budget::from_env();
    let seed = base_seed();
    let sweep = SweepConfig::from_env();
    let tel = bench_telemetry("fig4", &budget, seed);
    let _sweep_span = tel.span("sweep");
    let victims_cache = Arc::new(VictimCache::open());
    let cells_cache = Arc::new(CellCache::open());
    let mut report = SweepReport::default();
    let attacks: Vec<(AttackKind, char)> = vec![
        (AttackKind::SaRl, 's'),
        (AttackKind::Imap(RegularizerKind::StateCoverage), 'S'),
        (AttackKind::Imap(RegularizerKind::PolicyCoverage), 'P'),
        (AttackKind::Imap(RegularizerKind::Risk), 'R'),
        (AttackKind::Imap(RegularizerKind::Divergence), 'D'),
    ];

    // Stage 1: one PPO victim per task.
    let victim_cells: Vec<SweepCell<GaussianPolicy>> = SPARSE_LOCOMOTION
        .into_iter()
        .map(|task| {
            let tags = [("task", task.spec().name), ("stage", "victim_train")];
            let tel = tel.clone();
            let victims = Arc::clone(&victims_cache);
            let spec = CellSpec::victim(task, DefenseMethod::Ppo, &budget, &victims_cache);
            let budget = budget.clone();
            SweepCell::new(
                format!("victim {}", task.spec().name),
                &tags,
                seed,
                move |ctx| {
                    let _t = tel.span("victim_train");
                    victims.victim_supervised(
                        &tel,
                        task,
                        DefenseMethod::Ppo,
                        &budget,
                        ctx.seed,
                        &ctx.progress,
                    )
                },
            )
            .isolated(&spec)
        })
        .collect();
    let victim_out = run_sweep(&tel, &sweep, victim_cells, &mut report, |_, _| {});
    let victims: Vec<Option<Arc<GaussianPolicy>>> = victim_out
        .iter()
        .map(|s| s.ok().map(|p| Arc::new(p.clone())))
        .collect();

    // Stage 2: attack cells, row-major per (task, attack).
    let attack_cells: Vec<SweepCell<CellResult>> = SPARSE_LOCOMOTION
        .into_iter()
        .enumerate()
        .flat_map(|(ti, task)| {
            let victim = victims[ti].clone();
            let dep = dep_skip_reason(&victim_out[ti]);
            let tel = tel.clone();
            let cells_cache = Arc::clone(&cells_cache);
            let budget = budget.clone();
            attacks
                .iter()
                .map(|(k, _)| *k)
                .collect::<Vec<_>>()
                .into_iter()
                .map(move |kind| {
                    let label = kind.label();
                    let cell_label = format!("{} {}", task.spec().name, label);
                    let tags = [("task", task.spec().name), ("attack", label.as_str())];
                    match (&victim, &dep) {
                        (Some(victim), None) => {
                            let tel = tel.clone();
                            let victim = Arc::clone(victim);
                            let cells = Arc::clone(&cells_cache);
                            let spec = CellSpec::attack(
                                task,
                                DefenseMethod::Ppo,
                                &victim,
                                kind,
                                &budget,
                                &cells,
                            );
                            let budget = budget.clone();
                            SweepCell::new(cell_label, &tags, seed, move |ctx| {
                                let _t = tel.span("attack_cell");
                                run_attack_cell_cached(
                                    &cells,
                                    task,
                                    DefenseMethod::Ppo,
                                    &victim,
                                    kind,
                                    &budget,
                                    ctx.seed,
                                    &ctx.progress,
                                )
                            })
                            .isolated(&spec)
                        }
                        (_, reason) => SweepCell::skipped(
                            cell_label,
                            &tags,
                            reason.clone().unwrap_or_else(|| "victim_missing".into()),
                        ),
                    }
                })
        })
        .collect();
    let tel_ok = tel.clone();
    let outcomes = run_sweep(&tel, &sweep, attack_cells, &mut report, |tags, result| {
        record_cell(&tel_ok, tags, result);
    });

    // Rendering.
    println!(
        "# Figure 4 — sparse locomotion attack curves (budget: {})",
        budget.name
    );
    for (ti, task) in SPARSE_LOCOMOTION.into_iter().enumerate() {
        if victims[ti].is_none() {
            continue;
        }
        println!("\n## {}", task.spec().name);
        let mut curves: Vec<(String, char, Vec<CurvePoint>)> = Vec::new();
        for (ai, (kind, glyph)) in attacks.iter().enumerate() {
            let label = kind.label();
            let Some(r) = outcomes[ti * attacks.len() + ai].ok() else {
                continue;
            };
            let tags = [("task", task.spec().name), ("attack", label.as_str())];
            record_curve(&tel, &tags, &r.curve);
            curves.push((label, *glyph, r.curve.clone()));
        }

        // Data table, downsampled to ~10 rows.
        let max_len = curves.iter().map(|(_, _, c)| c.len()).max().unwrap_or(0);
        let stride = (max_len / 10).max(1);
        print!("{:>10}", "steps");
        for (label, glyph, _) in &curves {
            print!("  {label:>10}({glyph})");
        }
        println!();
        for i in (0..max_len).step_by(stride) {
            let steps = curves
                .iter()
                .filter_map(|(_, _, c)| c.get(i).map(|p| p.steps))
                .max()
                .unwrap_or(0);
            print!("{steps:>10}");
            for (_, _, c) in &curves {
                match c.get(i) {
                    Some(p) => print!("  {:>13.2}", p.victim_sparse),
                    None => print!("  {:>13}", "-"),
                }
            }
            println!();
        }

        // ASCII overlay: victim score (y) vs iteration (x).
        let mut canvas = Canvas::new(70, 12, (0.0, max_len.max(2) as f64 - 1.0), (-0.15, 1.05));
        for (_, glyph, c) in &curves {
            let pts: Vec<(f64, f64)> = c
                .iter()
                .enumerate()
                .map(|(i, p)| (i as f64, p.victim_sparse))
                .collect();
            canvas.trace(&pts, *glyph);
        }
        println!("\nvictim score 1.05 .. -0.15 (top..bottom), x = attack iterations:");
        print!("{}", canvas.render());
    }
    println!(
        "\nLegend: s = SA-RL, S = IMAP-SC, P = IMAP-PC, R = IMAP-R, D = IMAP-D. Lower is a stronger attack."
    );
    drop(_sweep_span);
    finish_telemetry(&tel);
    println!("{}", report.summary_line());
    std::process::exit(report.exit_code());
}
