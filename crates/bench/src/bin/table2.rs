//! Table 2: sparse-task average episode scores (+1 / −0.1 / 0) of the
//! victim under No-Attack / Random / SA-RL / four IMAP variants / best
//! IMAP+BR, across nine sparse tasks (six locomotion, two navigation, one
//! manipulation).
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin table2`

use imap_bench::{
    base_seed, bench_telemetry, cell, finish_telemetry, print_row, run_attack_cell_cached,
    run_cell_isolated, run_isolated, AttackKind, Budget, VictimCache,
};
use imap_core::regularizer::RegularizerKind;
use imap_defense::DefenseMethod;
use imap_env::TaskId;

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let tel = bench_telemetry("table2", &budget, seed);
    let cache = VictimCache::open();

    println!("# Table 2 — sparse-reward tasks (budget: {})", budget.name);
    println!();
    let mut columns = vec![AttackKind::NoAttack, AttackKind::Random, AttackKind::SaRl];
    columns.extend(RegularizerKind::ALL.into_iter().map(AttackKind::Imap));
    let mut header = vec!["Env".to_string()];
    header.extend(columns.iter().map(|k| k.label()));
    header.push("IMAP+BR (best)".to_string());
    print_row(&header);

    let mut col_sums = vec![0.0; columns.len() + 1];
    let mut col_counts = vec![0usize; columns.len() + 1];
    let mut imap_beats_sarl = 0usize;

    for task in TaskId::SPARSE {
        let victim_tags = [("task", task.spec().name), ("stage", "victim_train")];
        let Some(victim) = run_isolated(&tel, &victim_tags, || {
            let _t = tel.span("victim_train");
            cache.victim_with(&tel, task, DefenseMethod::Ppo, &budget, seed)
        }) else {
            continue;
        };
        let mut row = vec![task.spec().name.to_string()];
        let mut values = Vec::new();
        for (ci, &kind) in columns.iter().enumerate() {
            let label = kind.label();
            let tags = [("task", task.spec().name), ("attack", label.as_str())];
            match run_cell_isolated(&tel, &tags, || {
                let _t = tel.span("attack_cell");
                run_attack_cell_cached(task, DefenseMethod::Ppo, &victim, kind, &budget, seed)
            }) {
                Some(r) => {
                    row.push(cell(r.eval.sparse, r.eval.sparse_std, false));
                    values.push(r.eval.sparse);
                    col_sums[ci] += r.eval.sparse;
                    col_counts[ci] += 1;
                }
                None => {
                    row.push("failed".to_string());
                    values.push(f64::NAN);
                }
            }
        }
        // Best IMAP+BR across the four regularizers (paper's last column).
        let mut best_br = f64::INFINITY;
        let mut best_kind = RegularizerKind::PolicyCoverage;
        let mut best_std = 0.0;
        for k in RegularizerKind::ALL {
            let kind = AttackKind::ImapBr(k);
            let label = kind.label();
            let tags = [("task", task.spec().name), ("attack", label.as_str())];
            let Some(r) = run_cell_isolated(&tel, &tags, || {
                let _t = tel.span("attack_cell");
                run_attack_cell_cached(task, DefenseMethod::Ppo, &victim, kind, &budget, seed)
            }) else {
                continue;
            };
            if r.eval.sparse < best_br {
                best_br = r.eval.sparse;
                best_std = r.eval.sparse_std;
                best_kind = k;
            }
        }
        if best_br.is_finite() {
            row.push(format!(
                "{} ({})",
                cell(best_br, best_std, false),
                best_kind.short_name()
            ));
            col_sums[columns.len()] += best_br;
            col_counts[columns.len()] += 1;
        } else {
            row.push("failed".to_string());
        }
        print_row(&row);

        let sa_rl = values[2];
        let best_imap = values[3..].iter().cloned().fold(f64::INFINITY, f64::min);
        if sa_rl.is_finite() && best_imap.is_finite() && best_imap <= sa_rl {
            imap_beats_sarl += 1;
        }
    }

    println!();
    let mut avg_row = vec!["Average".to_string()];
    avg_row.extend(col_sums.iter().zip(&col_counts).map(|(s, &n)| match n {
        0 => "failed".to_string(),
        _ => format!("{:>5.2}", s / n as f64),
    }));
    print_row(&avg_row);
    println!();
    println!(
        "Best IMAP ≤ SA-RL on {imap_beats_sarl}/9 sparse tasks (paper: 9/9, \"IMAP dominates SA-RL across all nine tasks\")."
    );
    finish_telemetry(&tel);
}
