//! Table 2: sparse-task average episode scores (+1 / −0.1 / 0) of the
//! victim under No-Attack / Random / SA-RL / four IMAP variants / best
//! IMAP+BR, across nine sparse tasks (six locomotion, two navigation, one
//! manipulation).
//!
//! Cells run on the supervised sweep pool (`--jobs N` /
//! `IMAP_MAX_PARALLEL`); the binary exits nonzero if any cell errored or
//! timed out.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin table2 [-- --jobs N]`

use std::sync::Arc;

use imap_bench::cells::CellSpec;
use imap_bench::exec::{dep_skip_reason, run_sweep, SweepCell, SweepConfig, SweepReport};
use imap_bench::{
    base_seed, bench_telemetry, cell, finish_telemetry, print_row, record_cell,
    run_attack_cell_cached, AttackKind, Budget, CellCache, CellResult, VictimCache,
};
use imap_core::regularizer::RegularizerKind;
use imap_defense::DefenseMethod;
use imap_env::TaskId;
use imap_harness::JobStatus;
use imap_rl::GaussianPolicy;

fn main() {
    imap_bench::cells::maybe_serve_run_cell();
    let budget = Budget::from_env();
    let seed = base_seed();
    let sweep = SweepConfig::from_env();
    let tel = bench_telemetry("table2", &budget, seed);
    let _sweep_span = tel.span("sweep");
    let victims_cache = Arc::new(VictimCache::open());
    let cells_cache = Arc::new(CellCache::open());
    let mut report = SweepReport::default();

    let mut columns = vec![AttackKind::NoAttack, AttackKind::Random, AttackKind::SaRl];
    columns.extend(RegularizerKind::ALL.into_iter().map(AttackKind::Imap));
    // Per task: the printed columns, then the four IMAP+BR candidates
    // feeding the "best BR" column.
    let br_kinds: Vec<AttackKind> = RegularizerKind::ALL
        .into_iter()
        .map(AttackKind::ImapBr)
        .collect();
    let per_task = columns.len() + br_kinds.len();

    // Stage 1: one PPO victim per sparse task.
    let victim_cells: Vec<SweepCell<GaussianPolicy>> = TaskId::SPARSE
        .into_iter()
        .map(|task| {
            let tags = [("task", task.spec().name), ("stage", "victim_train")];
            let tel = tel.clone();
            let victims = Arc::clone(&victims_cache);
            let spec = CellSpec::victim(task, DefenseMethod::Ppo, &budget, &victims_cache);
            let budget = budget.clone();
            SweepCell::new(
                format!("victim {}", task.spec().name),
                &tags,
                seed,
                move |ctx| {
                    let _t = tel.span("victim_train");
                    victims.victim_supervised(
                        &tel,
                        task,
                        DefenseMethod::Ppo,
                        &budget,
                        ctx.seed,
                        &ctx.progress,
                    )
                },
            )
            .isolated(&spec)
        })
        .collect();
    let victim_out = run_sweep(&tel, &sweep, victim_cells, &mut report, |_, _| {});
    let victims: Vec<Option<Arc<GaussianPolicy>>> = victim_out
        .iter()
        .map(|s| s.ok().map(|p| Arc::new(p.clone())))
        .collect();

    // Stage 2: the attack grid, row-major.
    let all_kinds: Vec<AttackKind> = columns.iter().chain(br_kinds.iter()).cloned().collect();
    let attack_cells: Vec<SweepCell<CellResult>> = TaskId::SPARSE
        .into_iter()
        .enumerate()
        .flat_map(|(ti, task)| {
            let victim = victims[ti].clone();
            let dep = dep_skip_reason(&victim_out[ti]);
            let tel = tel.clone();
            let cells_cache = Arc::clone(&cells_cache);
            let budget = budget.clone();
            all_kinds.clone().into_iter().map(move |kind| {
                let label = kind.label();
                let cell_label = format!("{} {}", task.spec().name, label);
                let tags = [("task", task.spec().name), ("attack", label.as_str())];
                match (&victim, &dep) {
                    (Some(victim), None) => {
                        let tel = tel.clone();
                        let victim = Arc::clone(victim);
                        let cells = Arc::clone(&cells_cache);
                        let spec = CellSpec::attack(
                            task,
                            DefenseMethod::Ppo,
                            &victim,
                            kind,
                            &budget,
                            &cells,
                        );
                        let budget = budget.clone();
                        SweepCell::new(cell_label, &tags, seed, move |ctx| {
                            let _t = tel.span("attack_cell");
                            run_attack_cell_cached(
                                &cells,
                                task,
                                DefenseMethod::Ppo,
                                &victim,
                                kind,
                                &budget,
                                ctx.seed,
                                &ctx.progress,
                            )
                        })
                        .isolated(&spec)
                    }
                    (_, reason) => SweepCell::skipped(
                        cell_label,
                        &tags,
                        reason.clone().unwrap_or_else(|| "victim_missing".into()),
                    ),
                }
            })
        })
        .collect();
    let tel_ok = tel.clone();
    let outcomes = run_sweep(&tel, &sweep, attack_cells, &mut report, |tags, result| {
        record_cell(&tel_ok, tags, result);
    });

    // Rendering: consume the committed outcomes in grid order.
    println!("# Table 2 — sparse-reward tasks (budget: {})", budget.name);
    println!();
    let mut header = vec!["Env".to_string()];
    header.extend(columns.iter().map(|k| k.label()));
    header.push("IMAP+BR (best)".to_string());
    print_row(&header);

    let mut col_sums = vec![0.0; columns.len() + 1];
    let mut col_counts = vec![0usize; columns.len() + 1];
    let mut imap_beats_sarl = 0usize;

    for (ti, task) in TaskId::SPARSE.into_iter().enumerate() {
        if victims[ti].is_none() {
            continue;
        }
        let mut row = vec![task.spec().name.to_string()];
        let mut values = Vec::new();
        for ci in 0..columns.len() {
            match outcomes[ti * per_task + ci].ok() {
                Some(r) => {
                    row.push(cell(r.eval.sparse, r.eval.sparse_std, false));
                    values.push(r.eval.sparse);
                    col_sums[ci] += r.eval.sparse;
                    col_counts[ci] += 1;
                }
                None => {
                    row.push(status_text(&outcomes[ti * per_task + ci]));
                    values.push(f64::NAN);
                }
            }
        }
        // Best IMAP+BR across the four regularizers (paper's last column).
        let mut best_br = f64::INFINITY;
        let mut best_kind = RegularizerKind::PolicyCoverage;
        let mut best_std = 0.0;
        for (bi, k) in RegularizerKind::ALL.into_iter().enumerate() {
            let Some(r) = outcomes[ti * per_task + columns.len() + bi].ok() else {
                continue;
            };
            if r.eval.sparse < best_br {
                best_br = r.eval.sparse;
                best_std = r.eval.sparse_std;
                best_kind = k;
            }
        }
        if best_br.is_finite() {
            row.push(format!(
                "{} ({})",
                cell(best_br, best_std, false),
                best_kind.short_name()
            ));
            col_sums[columns.len()] += best_br;
            col_counts[columns.len()] += 1;
        } else {
            row.push("failed".to_string());
        }
        print_row(&row);

        let sa_rl = values[2];
        let best_imap = values[3..].iter().cloned().fold(f64::INFINITY, f64::min);
        if sa_rl.is_finite() && best_imap.is_finite() && best_imap <= sa_rl {
            imap_beats_sarl += 1;
        }
    }

    println!();
    let mut avg_row = vec!["Average".to_string()];
    avg_row.extend(col_sums.iter().zip(&col_counts).map(|(s, &n)| match n {
        0 => "failed".to_string(),
        _ => format!("{:>5.2}", s / n as f64),
    }));
    print_row(&avg_row);
    println!();
    println!(
        "Best IMAP ≤ SA-RL on {imap_beats_sarl}/9 sparse tasks (paper: 9/9, \"IMAP dominates SA-RL across all nine tasks\")."
    );
    drop(_sweep_span);
    finish_telemetry(&tel);
    println!("{}", report.summary_line());
    std::process::exit(report.exit_code());
}

fn status_text(status: &JobStatus<CellResult>) -> String {
    match status {
        JobStatus::Timeout { .. } => "timeout".to_string(),
        JobStatus::Skipped { .. } => "skipped".to_string(),
        _ => "failed".to_string(),
    }
}
