//! Figures 1–3 analog: qualitative behaviour renders.
//!
//! The paper's Figures 1–2 are MuJoCo screenshots showing (1) a robust
//! Walker lured to lean forward and fall under IMAP while SA-RL fails, and
//! (2) an IMAP blocker intercepting the runner while AP-MARL's blocker
//! fails. This binary reproduces both as ASCII traces.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin render`

use imap_bench::{
    base_seed, default_xi, marl_victim, run_attack_cell_cached, run_multi_attack_cell_cached,
    AttackKind, Budget, CellCache, VictimCache,
};
use imap_core::regularizer::RegularizerKind;
use imap_core::threat::PerturbationEnv;
use imap_core::{ImapConfig, ImapTrainer};
use imap_defense::DefenseMethod;
use imap_env::render::{sparkline, Canvas};
use imap_env::{build_task, Env, EnvRng, MultiTaskId, TaskId};
use rand::SeedableRng;

/// Re-trains the learned attack for a cell (cheap at quick budget) and
/// rolls one attacked episode, returning the victim's pitch trace.
fn walker_pitch_trace(kind: AttackKind, budget: &Budget, seed: u64) -> (Vec<f64>, bool) {
    let cache = VictimCache::open();
    let task = TaskId::Walker2d;
    let victim = cache
        .victim_supervised(
            &imap_telemetry::Telemetry::null(),
            task,
            DefenseMethod::Wocar,
            budget,
            seed,
            &imap_rl::Progress::null(),
        )
        .expect("render victim training");
    let eps = task.spec().eps;
    // Reuse the cached evaluation to pick the attack, then retrain the
    // policy itself (curves are cached; policies are small enough to retrain
    // deterministically at the same seed).
    let _ = run_attack_cell_cached(
        &CellCache::open(),
        task,
        DefenseMethod::Wocar,
        &victim,
        kind,
        budget,
        seed,
        &imap_rl::Progress::null(),
    );
    let cfg = match kind {
        AttackKind::SaRl => ImapConfig::baseline(budget.attack_train(seed)),
        AttackKind::Imap(k) => ImapConfig::imap(
            budget.attack_train(seed),
            imap_core::regularizer::RegularizerConfig::new(k),
        ),
        _ => unreachable!(),
    };
    let mut env = PerturbationEnv::new(build_task(task), victim.clone(), eps);
    let out = ImapTrainer::new(cfg).train(&mut env, None).expect("attack");

    let mut penv = PerturbationEnv::new(build_task(task), victim, eps);
    let mut rng = EnvRng::seed_from_u64(1234);
    let mut obs = penv.reset(&mut rng);
    let mut pitch = Vec::new();
    let mut fell = false;
    for _ in 0..200 {
        let a = out.policy.act_deterministic(&obs).expect("dims");
        let s = penv.step(&a, &mut rng);
        pitch.push(s.obs[0]);
        if s.done {
            fell = s.unhealthy;
            break;
        }
        obs = s.obs;
    }
    (pitch, fell)
}

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();

    println!("# Figure 1 analog — WocaR Walker2d pitch under attack");
    println!("(pitch trace over one attacked episode; |pitch| > 0.25 is a fall)\n");
    for kind in [
        AttackKind::SaRl,
        AttackKind::Imap(RegularizerKind::PolicyCoverage),
    ] {
        let (pitch, fell) = walker_pitch_trace(kind, &budget, seed);
        println!(
            "## {} — episode length {}, victim fell: {fell}",
            kind.label(),
            pitch.len()
        );
        print!("{}", sparkline(&pitch, 8));
        println!();
    }

    println!("\n# Figure 2 analog — YouShallNotPass trajectories");
    println!("(r = runner trace, b = blocker trace, | = finish line x=3)\n");
    let game = MultiTaskId::YouShallNotPass;
    let victim = marl_victim(game, &budget, seed).expect("render MARL victim training");
    for (label, kind) in [
        ("AP-MARL", AttackKind::SaRl),
        (
            "IMAP-PC+BR",
            AttackKind::ImapBr(RegularizerKind::PolicyCoverage),
        ),
    ] {
        // The cached cell gives the evaluation; retrain the opponent policy
        // at the same seed for the qualitative rollout.
        let r = run_multi_attack_cell_cached(
            &CellCache::open(),
            game,
            &victim,
            kind,
            &budget,
            seed,
            default_xi(),
            &imap_rl::Progress::null(),
        )
        .expect("render attack cell");
        println!("## {label} (evaluated ASR {:.0}%)", 100.0 * r.eval.asr);
        let (_, outcome) = imap_bench::run_multi_attack_cell(
            game,
            &victim,
            kind,
            &budget,
            seed,
            default_xi(),
            &imap_rl::Progress::null(),
        )
        .expect("render attack cell");
        let adv = outcome.expect("learned attack").policy;

        let mut env = imap_env::multiagent::YouShallNotPass::new();
        let mut rng = EnvRng::seed_from_u64(777);
        use imap_env::MultiAgentEnv;
        let (mut vobs, mut aobs) = env.reset(&mut rng);
        let mut canvas = Canvas::new(72, 14, (-3.5, 3.5), (-3.0, 3.0));
        for y in -30..=30 {
            canvas.plot(3.0, y as f64 / 10.0, '|');
        }
        let mut won = None;
        for _ in 0..env.max_steps() {
            let va = victim.act(&vobs, &mut rng).expect("dims").0;
            let aa = adv.act_deterministic(&aobs).expect("dims");
            let (rx, ry) = env.runner_position();
            let (bx, by) = env.blocker_position();
            canvas.plot(rx, ry, 'r');
            canvas.plot(bx, by, 'b');
            let ms = env.step(&va, &aa, &mut rng);
            vobs = ms.victim_obs;
            aobs = ms.adversary_obs;
            if ms.done {
                won = ms.victim_won;
                break;
            }
        }
        println!("one rollout, victim won: {won:?}");
        print!("{}", canvas.render());
        println!();
    }
}
