//! Table 1: average episode rewards of six victims (PPO, ATLA, SA, ATLA-SA,
//! RADIAL, WocaR) across four dense-reward locomotion tasks under
//! No-Attack / Random / SA-RL / IMAP-SC / IMAP-PC / IMAP-R / IMAP-D.
//!
//! As in the paper, Ant carries only the PPO/ATLA/SA/ATLA-SA victims. The
//! footer reproduces the §6.3.1 average-reduction claims and the §7 claim
//! that IMAP degrades even WocaR victims substantially.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin table1`

use imap_bench::{
    base_seed, bench_telemetry, cell, finish_telemetry, print_row, run_attack_cell_cached,
    run_cell_isolated, run_isolated, AttackKind, Budget, VictimCache,
};
use imap_defense::DefenseMethod;
use imap_env::TaskId;

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let tel = bench_telemetry("table1", &budget, seed);
    let cache = VictimCache::open();
    let columns = AttackKind::table1_columns();

    println!("# Table 1 — dense-reward tasks (budget: {})", budget.name);
    println!();
    let mut header = vec!["Env".to_string(), "Victim".to_string()];
    header.extend(columns.iter().map(|k| k.label()));
    print_row(&header);

    // Per-attack averages across all victims (for the footer claims).
    let mut col_sums = vec![0.0; columns.len()];
    let mut col_counts = vec![0usize; columns.len()];
    let mut wocar_rows: Vec<(TaskId, Vec<f64>)> = Vec::new();
    let mut best_imap_wins = 0usize;
    let mut rows = 0usize;

    for task in TaskId::DENSE {
        let methods: &[DefenseMethod] = if task == TaskId::Ant {
            &[
                DefenseMethod::Ppo,
                DefenseMethod::Atla,
                DefenseMethod::Sa,
                DefenseMethod::AtlaSa,
            ]
        } else {
            &DefenseMethod::ALL
        };
        let mut task_col_sums = vec![0.0; columns.len()];
        let mut task_col_counts = vec![0usize; columns.len()];
        for &method in methods {
            let victim_tags = [
                ("task", task.spec().name),
                ("victim", method.name()),
                ("stage", "victim_train"),
            ];
            let Some(victim) = run_isolated(&tel, &victim_tags, || {
                let _t = tel.span("victim_train");
                cache.victim_with(&tel, task, method, &budget, seed)
            }) else {
                continue;
            };
            let mut row = vec![
                format!("{} (ε={})", task.spec().name, task.spec().eps),
                method.name().to_string(),
            ];
            let mut values = Vec::with_capacity(columns.len());
            for (ci, &kind) in columns.iter().enumerate() {
                let label = kind.label();
                let tags = [
                    ("task", task.spec().name),
                    ("victim", method.name()),
                    ("attack", label.as_str()),
                ];
                match run_cell_isolated(&tel, &tags, || {
                    let _t = tel.span("attack_cell");
                    run_attack_cell_cached(task, method, &victim, kind, &budget, seed)
                }) {
                    Some(r) => {
                        row.push(cell(r.eval.victim_return, r.eval.victim_return_std, true));
                        values.push(r.eval.victim_return);
                        col_sums[ci] += r.eval.victim_return;
                        col_counts[ci] += 1;
                        task_col_sums[ci] += r.eval.victim_return;
                        task_col_counts[ci] += 1;
                    }
                    None => {
                        row.push("failed".to_string());
                        values.push(f64::NAN);
                    }
                }
            }
            print_row(&row);
            // Bold-equivalent bookkeeping: does the best IMAP beat SA-RL?
            // (Failed cells are NaN; `f64::min` skips them, and a row with a
            // failed SA-RL cell is left out of the claim entirely.)
            let sa_rl = values[2];
            let best_imap = values[3..].iter().cloned().fold(f64::INFINITY, f64::min);
            if sa_rl.is_finite() && best_imap.is_finite() {
                rows += 1;
                if best_imap <= sa_rl {
                    best_imap_wins += 1;
                }
            }
            if method == DefenseMethod::Wocar {
                wocar_rows.push((task, values.clone()));
            }
        }
        let mut avg_row = vec![format!("{} avg", task.spec().name), String::new()];
        avg_row.extend(
            task_col_sums
                .iter()
                .zip(&task_col_counts)
                .map(|(s, &n)| match n {
                    0 => "failed".to_string(),
                    _ => format!("{:>6.0}", s / n as f64),
                }),
        );
        print_row(&avg_row);
    }

    println!();
    println!("## Footer (paper §6.3.1 / §7 claims)");
    let clean_avg = col_sums[0] / col_counts[0].max(1) as f64;
    for (ci, kind) in columns.iter().enumerate().skip(2) {
        if col_counts[ci] == 0 {
            println!("{:<10} all cells failed", kind.label());
            continue;
        }
        let avg = col_sums[ci] / col_counts[ci] as f64;
        println!(
            "{:<10} average across all victims: {:>7.0} ({:+.1}% vs clean)",
            kind.label(),
            avg,
            100.0 * (avg - clean_avg) / clean_avg
        );
    }
    println!("Best-IMAP ≤ SA-RL on {best_imap_wins}/{rows} victim rows (paper: 15/22).");
    for (task, values) in &wocar_rows {
        let clean = values[0];
        let best_imap = values[3..].iter().cloned().fold(f64::INFINITY, f64::min);
        if !clean.is_finite() || !best_imap.is_finite() {
            continue;
        }
        println!(
            "WocaR {} reduced by {:.0}% under the best IMAP (paper: 34–54%).",
            task.spec().name,
            100.0 * (clean - best_imap) / clean.max(1e-9)
        );
    }
    finish_telemetry(&tel);
}
