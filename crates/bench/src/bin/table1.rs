//! Table 1: average episode rewards of six victims (PPO, ATLA, SA, ATLA-SA,
//! RADIAL, WocaR) across four dense-reward locomotion tasks under
//! No-Attack / Random / SA-RL / IMAP-SC / IMAP-PC / IMAP-R / IMAP-D.
//!
//! As in the paper, Ant carries only the PPO/ATLA/SA/ATLA-SA victims. The
//! footer reproduces the §6.3.1 average-reduction claims and the §7 claim
//! that IMAP degrades even WocaR victims substantially.
//!
//! Cells run on the supervised sweep pool (`--jobs N` /
//! `IMAP_MAX_PARALLEL`); the binary exits nonzero if any cell errored or
//! timed out.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin table1 [-- --jobs N]`

use imap_bench::exec::{SweepConfig, SweepReport};
use imap_bench::table1::{run, Table1Options};
use imap_bench::{base_seed, bench_telemetry, finish_telemetry, Budget};

fn main() {
    // Serve `table1 run-cell` (the isolated cell executor) and never
    // return if so; a normal invocation falls through.
    imap_bench::cells::maybe_serve_run_cell();
    let budget = Budget::from_env();
    let seed = base_seed();
    let sweep = SweepConfig::from_env();
    let tel = bench_telemetry("table1", &budget, seed);
    let _sweep_span = tel.span("sweep");
    let opts = Table1Options::new(budget, seed, sweep);
    let mut report = SweepReport::default();
    let table = run(&tel, &opts, &mut report);
    print!("{table}");
    drop(_sweep_span);
    finish_telemetry(&tel);
    println!("{}", report.summary_line());
    std::process::exit(report.exit_code());
}
