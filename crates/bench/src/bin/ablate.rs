//! Ablations of this reproduction's own design choices (beyond the paper's
//! η and ξ ablations in fig6/fig7):
//!
//! - the KNN neighbourhood size `K` of the density estimators (§5.2);
//! - the union-buffer capacity (decimation) behind the PC regularizer;
//! - the intrinsic-advantage scale (the τ-calibration knob, DESIGN.md §1).
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin ablate`

use imap_bench::{
    base_seed, bench_telemetry, finish_telemetry, run_cell_isolated, run_isolated, Budget,
    CellResult, VictimCache,
};
use imap_core::eval::{eval_under_attack, Attacker};
use imap_core::regularizer::{RegularizerConfig, RegularizerKind};
use imap_core::threat::PerturbationEnv;
use imap_core::{ImapConfig, ImapTrainer};
use imap_defense::DefenseMethod;
use imap_env::{build_task, EnvRng, TaskId};
use rand::SeedableRng;

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let tel = bench_telemetry("ablate", &budget, seed);
    let cache = VictimCache::open();
    let task = TaskId::SparseHopper;
    let eps = task.spec().eps;
    let victim_tags = [("task", task.spec().name), ("stage", "victim_train")];
    let Some(victim) = run_isolated(&tel, &victim_tags, || {
        let _t = tel.span("victim_train");
        cache.victim_with(&tel, task, DefenseMethod::Ppo, &budget, seed)
    }) else {
        finish_telemetry(&tel);
        return;
    };

    let run = |label: String, cfg: ImapConfig| {
        let tags = [
            ("task", task.spec().name),
            ("attack", "IMAP-PC"),
            ("variant", label.as_str()),
        ];
        match run_cell_isolated(&tel, &tags, || {
            let mut env = PerturbationEnv::new(build_task(task), victim.clone(), eps);
            let out = {
                let _t = tel.span("attack_cell");
                ImapTrainer::new(cfg).train(&mut env, None)?
            };
            let mut rng = EnvRng::seed_from_u64(seed ^ 0xab1a);
            let eval = eval_under_attack(
                build_task(task),
                &victim,
                Attacker::Policy(&out.policy),
                eps,
                budget.eval_episodes,
                &mut rng,
            )?;
            Ok(CellResult {
                eval,
                curve: out.curve,
            })
        }) {
            Some(r) => println!(
                "{label:<28} victim score {:>6.2} ± {:<5.2}",
                r.eval.sparse, r.eval.sparse_std
            ),
            None => println!("{label:<28} failed"),
        }
    };

    println!(
        "# Design-choice ablations on {} / IMAP-PC (budget: {})",
        task.spec().name,
        budget.name
    );
    println!("\n## KNN neighbourhood size K (paper uses a fixed small K)");
    for k in [1usize, 3, 5, 10, 20] {
        let mut rc = RegularizerConfig::new(RegularizerKind::PolicyCoverage);
        rc.k = k;
        run(
            format!("K = {k}"),
            ImapConfig::imap(budget.attack_train(seed), rc),
        );
    }

    println!("\n## Union-buffer capacity (decimation pressure on B)");
    for cap in [500usize, 5_000, 50_000] {
        let mut rc = RegularizerConfig::new(RegularizerKind::PolicyCoverage);
        rc.union_cap = cap;
        run(
            format!("cap = {cap}"),
            ImapConfig::imap(budget.attack_train(seed), rc),
        );
    }

    println!("\n## Intrinsic-advantage scale (τ-calibration)");
    for scale in [0.1f64, 0.5, 1.0, 2.0] {
        let rc = RegularizerConfig::new(RegularizerKind::PolicyCoverage);
        run(
            format!("scale = {scale}"),
            ImapConfig::imap(budget.attack_train(seed), rc).with_intrinsic_scale(scale),
        );
    }
    finish_telemetry(&tel);
}
