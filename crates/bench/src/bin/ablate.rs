//! Ablations of this reproduction's own design choices (beyond the paper's
//! η and ξ ablations in fig6/fig7):
//!
//! - the KNN neighbourhood size `K` of the density estimators (§5.2);
//! - the union-buffer capacity (decimation) behind the PC regularizer;
//! - the intrinsic-advantage scale (the τ-calibration knob, DESIGN.md §1).
//!
//! Cells run on the supervised sweep pool (`--jobs N` /
//! `IMAP_MAX_PARALLEL`); the binary exits nonzero if any cell errored or
//! timed out.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin ablate [-- --jobs N]`

use std::sync::Arc;

use imap_bench::cells::CellSpec;
use imap_bench::exec::{dep_skip_reason, run_sweep, SweepCell, SweepConfig, SweepReport};
use imap_bench::{
    base_seed, bench_telemetry, finish_telemetry, record_cell, run_ablate_cell, AblateVariant,
    Budget, CellResult, VictimCache,
};
use imap_defense::DefenseMethod;
use imap_env::TaskId;
use imap_rl::GaussianPolicy;

fn main() {
    imap_bench::cells::maybe_serve_run_cell();
    let budget = Budget::from_env();
    let seed = base_seed();
    let sweep = SweepConfig::from_env();
    let tel = bench_telemetry("ablate", &budget, seed);
    let _sweep_span = tel.span("sweep");
    let victims_cache = Arc::new(VictimCache::open());
    let mut report = SweepReport::default();
    let task = TaskId::SparseHopper;

    let mut variants: Vec<(String, AblateVariant)> = Vec::new();
    for k in [1usize, 3, 5, 10, 20] {
        variants.push((format!("K = {k}"), AblateVariant::Knn(k)));
    }
    for cap in [500usize, 5_000, 50_000] {
        variants.push((format!("cap = {cap}"), AblateVariant::UnionCap(cap)));
    }
    for scale in [0.1f64, 0.5, 1.0, 2.0] {
        variants.push((
            format!("scale = {scale}"),
            AblateVariant::IntrinsicScale(scale),
        ));
    }

    // Stage 1: the shared victim.
    let victim_cells = vec![{
        let tags = [("task", task.spec().name), ("stage", "victim_train")];
        let tel = tel.clone();
        let victims = Arc::clone(&victims_cache);
        let spec = CellSpec::victim(task, DefenseMethod::Ppo, &budget, &victims_cache);
        let budget = budget.clone();
        SweepCell::new(
            format!("victim {}", task.spec().name),
            &tags,
            seed,
            move |ctx| {
                let _t = tel.span("victim_train");
                victims.victim_supervised(
                    &tel,
                    task,
                    DefenseMethod::Ppo,
                    &budget,
                    ctx.seed,
                    &ctx.progress,
                )
            },
        )
        .isolated(&spec)
    }];
    let victim_out = run_sweep(&tel, &sweep, victim_cells, &mut report, |_, _| {});
    let victim: Option<Arc<GaussianPolicy>> = victim_out[0].ok().map(|p| Arc::new(p.clone()));

    // Stage 2: one IMAP-PC cell per variant.
    let attack_cells: Vec<SweepCell<CellResult>> = variants
        .iter()
        .map(|(label, variant)| {
            let tags = [
                ("task", task.spec().name),
                ("attack", "IMAP-PC"),
                ("variant", label.as_str()),
            ];
            let cell_label = format!("{} IMAP-PC {label}", task.spec().name);
            match (&victim, dep_skip_reason(&victim_out[0])) {
                (Some(victim), None) => {
                    let tel = tel.clone();
                    let victim = Arc::clone(victim);
                    let spec = CellSpec::ablate(task, &victim, *variant, &budget);
                    let budget = budget.clone();
                    let variant = *variant;
                    SweepCell::new(cell_label, &tags, seed, move |ctx| {
                        let _t = tel.span("attack_cell");
                        run_ablate_cell(task, &victim, variant, &budget, ctx.seed, &ctx.progress)
                    })
                    .isolated(&spec)
                }
                (_, reason) => SweepCell::skipped(
                    cell_label,
                    &tags,
                    reason.unwrap_or_else(|| "victim_missing".into()),
                ),
            }
        })
        .collect();
    let tel_ok = tel.clone();
    let outcomes = run_sweep(&tel, &sweep, attack_cells, &mut report, |tags, result| {
        record_cell(&tel_ok, tags, result);
    });

    // Rendering.
    println!(
        "# Design-choice ablations on {} / IMAP-PC (budget: {})",
        task.spec().name,
        budget.name
    );
    let mut lines = variants
        .iter()
        .zip(outcomes.iter())
        .map(|((label, _), s)| match s.ok() {
            Some(r) => format!(
                "{label:<28} victim score {:>6.2} ± {:<5.2}",
                r.eval.sparse, r.eval.sparse_std
            ),
            None => format!("{label:<28} failed"),
        });
    println!("\n## KNN neighbourhood size K (paper uses a fixed small K)");
    for _ in 0..5 {
        if let Some(line) = lines.next() {
            println!("{line}");
        }
    }
    println!("\n## Union-buffer capacity (decimation pressure on B)");
    for _ in 0..3 {
        if let Some(line) = lines.next() {
            println!("{line}");
        }
    }
    println!("\n## Intrinsic-advantage scale (τ-calibration)");
    for line in lines {
        println!("{line}");
    }
    drop(_sweep_span);
    finish_telemetry(&tel);
    println!("{}", report.summary_line());
    std::process::exit(report.exit_code());
}
