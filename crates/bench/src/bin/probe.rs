//! Calibration probe: verifies the headline attack effects hold before the
//! full tables run. Prints clean / random / SA-RL / IMAP-PC results on one
//! dense task and one sparse task.

use imap_bench::{base_seed, run_attack_cell, AttackKind, Budget, VictimCache};
use imap_core::regularizer::RegularizerKind;
use imap_defense::DefenseMethod;
use imap_env::TaskId;
use imap_rl::Progress;

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let cache = VictimCache::open();
    let task: TaskId = std::env::var("PROBE_TASK")
        .ok()
        .and_then(|name| {
            TaskId::ALL
                .into_iter()
                .find(|t| t.spec().name.eq_ignore_ascii_case(&name))
        })
        .unwrap_or(TaskId::Hopper);
    let method = match std::env::var("PROBE_METHOD").as_deref() {
        Ok("Sa") => DefenseMethod::Sa,
        Ok("Wocar") => DefenseMethod::Wocar,
        _ => DefenseMethod::Ppo,
    };
    eprintln!(
        "probe: task={task:?} method={method:?} budget={}",
        budget.name
    );
    let t0 = std::time::Instant::now();
    let victim = cache
        .victim_supervised(
            &imap_telemetry::Telemetry::null(),
            task,
            method,
            &budget,
            seed,
            &Progress::null(),
        )
        .expect("probe victim training");
    eprintln!(
        "victim trained/loaded in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    for kind in [
        AttackKind::NoAttack,
        AttackKind::Random,
        AttackKind::SaRl,
        AttackKind::Imap(RegularizerKind::PolicyCoverage),
        AttackKind::Imap(RegularizerKind::Risk),
    ] {
        let t = std::time::Instant::now();
        let (eval, _) = run_attack_cell(task, &victim, kind, &budget, seed, &Progress::null())
            .expect("probe attack cell");
        println!(
            "{:<12} dense={:>8.1} ± {:<7.1} sparse={:>5.2} success={:.2} ({:.1}s)",
            kind.label(),
            eval.victim_return,
            eval.victim_return_std,
            eval.sparse,
            eval.success_rate,
            t.elapsed().as_secs_f64()
        );
    }
}
