//! `sweepdemo`: a deterministic, fault-injectable two-stage demo sweep.
//!
//! Not one of the paper's tables — a test fixture for the isolation and
//! resume machinery. Integration tests (and CI) drive this binary because
//! the libtest harness owns `argv[1]`, so a `cargo test` binary cannot
//! serve the hidden `run-cell` subcommand itself; `sweepdemo` can, and it
//! is cheap enough to SIGKILL mid-sweep and resume.
//!
//! Each cell rolls a seeded Hopper trajectory (optionally through
//! [`imap_env::FaultyEnv`]) and reports an FNV checksum, printed in hex —
//! so two runs of the same grid are byte-comparable on stdout.
//!
//! Environment knobs (on top of the usual sweep flags — `--jobs`,
//! `--isolate`, `--resume`, `IMAP_ISOLATE`, `IMAP_CELL_TIMEOUT`, ...):
//!
//! - `IMAP_DEMO_CELLS=N` — number of stage-2 cells (default 4)
//! - `IMAP_DEMO_FAULTS="idx:mode,..."` — inject a fault into stage-2 cell
//!   `idx`; `mode` is `ok`, `panic`, `abort`, `hang` (cooperative),
//!   `hang_hard` (only SIGKILL ends it), `leak`, `slow`, or
//!   `partial_write` (tears the file named by `IMAP_PARTIAL_WRITE_PATH`)
//! - `IMAP_DEMO_STEPS=N` — rollout length per cell (default 40)
//! - `IMAP_DEMO_SLEEP_MS=N` — per-fire sleep for `slow` cells (default 5);
//!   widens the kill window for crash tests without touching checksums
//!
//! Multi-host knobs (lease-file protocol; see DESIGN.md §14):
//!
//! - `IMAP_LEASE_DIR=dir` — claim ONE shard lease from the shared board in
//!   `dir` and run only that slice of the grid; exits 0 with a note when no
//!   lease is claimable. A SIGKILLed worker leaves its lease claimed until
//!   the coordinator reclaims it after the heartbeat goes stale.
//! - `IMAP_SHARD_COUNT=N` — initialise the board to N shards first
//!   (idempotent; safe to pass on every worker)
//! - `IMAP_LEASE_RENEW_MS=N` — heartbeat renewal interval (default 250)
//! - `IMAP_WORKER=name` — worker name recorded in lease files
//!   (default `pid-<pid>`)

use imap_bench::cells::{run_fault_spec, CellSpec};
use imap_bench::exec::{run_sweep, SweepCell, SweepConfig, SweepReport};
use imap_bench::{base_seed, bench_telemetry, finish_telemetry, Budget};
use imap_harness::{JobStatus, Lease, LeaseBoard, LeaseConfig};
use imap_nn::NnError;
use std::time::Duration;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `IMAP_DEMO_FAULTS="1:panic,3:hang"` into (index, mode) pairs.
fn demo_faults() -> Vec<(usize, String)> {
    let Ok(raw) = std::env::var("IMAP_DEMO_FAULTS") else {
        return Vec::new();
    };
    raw.split(',')
        .filter(|s| !s.trim().is_empty())
        .filter_map(|pair| {
            let (idx, mode) = pair.split_once(':')?;
            Some((idx.trim().parse().ok()?, mode.trim().to_string()))
        })
        .collect()
}

fn fault_cell(label: String, tags: &[(&str, &str)], seed: u64, spec: CellSpec) -> SweepCell<u64> {
    let closure_spec = spec.clone();
    SweepCell::new(label, tags, seed, move |ctx| {
        run_fault_spec(&closure_spec, ctx).map_err(|context| NnError::Numeric { context })
    })
    .isolated(&spec)
}

/// Claims one shard lease from `IMAP_LEASE_DIR` (initialising the board
/// first when `IMAP_SHARD_COUNT` is set). Exits 0 when the board is fully
/// claimed — that worker simply has nothing to do.
fn maybe_claim_lease() -> Option<Lease> {
    let dir = std::env::var("IMAP_LEASE_DIR").ok()?;
    let worker =
        std::env::var("IMAP_WORKER").unwrap_or_else(|_| format!("pid-{}", std::process::id()));
    let board = LeaseBoard::new(LeaseConfig::new(&dir, worker));
    if let Ok(raw) = std::env::var("IMAP_SHARD_COUNT") {
        let count: usize = raw.parse().unwrap_or_else(|_| {
            eprintln!("sweepdemo: bad IMAP_SHARD_COUNT {raw:?}");
            std::process::exit(2);
        });
        if let Err(e) = board.init(count) {
            eprintln!("sweepdemo: lease board init failed: {e}");
            std::process::exit(2);
        }
    }
    match board.claim() {
        Ok(Some(lease)) => Some(lease),
        Ok(None) => {
            println!("no claimable shard lease in {dir}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("sweepdemo: lease claim failed: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    imap_bench::cells::maybe_serve_run_cell();
    let seed = base_seed();
    let mut sweep = SweepConfig::from_env();
    // Multi-host mode: the claimed lease decides the shard, and a
    // background heartbeat keeps it from going stale while cells run.
    let lease = maybe_claim_lease();
    if let Some(lease) = &lease {
        sweep.shard = Some(lease.shard());
        eprintln!("claimed shard lease {}", lease.shard());
    }
    let renew = Duration::from_millis(env_usize("IMAP_LEASE_RENEW_MS", 250) as u64);
    let renewer = lease.as_ref().map(|l| l.auto_renew(renew));
    let budget = Budget::quick(); // names the telemetry run; no training here
    let tel = bench_telemetry("sweepdemo", &budget, seed);
    let _sweep_span = tel.span("sweep");
    let cells = env_usize("IMAP_DEMO_CELLS", 4);
    let steps = env_usize("IMAP_DEMO_STEPS", 40) as u64;
    let sleep_ms: Option<u64> = std::env::var("IMAP_DEMO_SLEEP_MS")
        .ok()
        .and_then(|v| v.parse().ok());
    let faults = demo_faults();
    let mut report = SweepReport::default();

    // Stage 1: a single warmup cell, so multi-stage ledgers are exercised.
    let warmup = vec![fault_cell(
        "warmup".into(),
        &[("cell", "warmup"), ("stage", "warmup")],
        seed,
        CellSpec::fault("ok", 0, 0, steps),
    )];
    let warmup_out = run_sweep(&tel, &sweep, warmup, &mut report, |_, _| {});

    // Stage 2: the demo grid, with faults injected where requested.
    let grid: Vec<SweepCell<u64>> = (0..cells)
        .map(|i| {
            let mode = faults
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, m)| m.as_str())
                .unwrap_or("ok");
            let mode_owned = mode.to_string();
            let tags = [("cell", "demo"), ("mode", mode_owned.as_str())];
            let mut spec = CellSpec::fault(mode, 5, 1, steps);
            if sleep_ms.is_some() {
                spec.sleep_ms = sleep_ms;
            }
            fault_cell(
                format!("demo-{i}-{mode}"),
                &tags,
                seed.wrapping_add(i as u64),
                spec,
            )
        })
        .collect();
    let outcomes = run_sweep(&tel, &sweep, grid, &mut report, |_, _| {});

    // Rendering: one deterministic row per cell. Failure rows print only
    // the status name so stdout stays byte-comparable across runs.
    println!("# sweepdemo — {cells} cells, {} fault(s)", faults.len());
    match &warmup_out[0] {
        JobStatus::Ok(checksum) => println!("warmup           {checksum:016x}"),
        status => println!("warmup           {}", status.name()),
    }
    for (i, status) in outcomes.iter().enumerate() {
        let mode = faults
            .iter()
            .find(|(idx, _)| *idx == i)
            .map(|(_, m)| m.as_str())
            .unwrap_or("ok");
        match status {
            JobStatus::Ok(checksum) => println!("cell {i:>3} {mode:<9} {checksum:016x}"),
            status => println!("cell {i:>3} {mode:<9} {}", status.name()),
        }
    }
    drop(_sweep_span);
    finish_telemetry(&tel);
    println!("{}", report.summary_line());
    // The sweep finished, so every owned cell has a committed ledger row —
    // even a poison cell's error row counts as done for the lease board
    // (the merged ledger carries the error; nothing is left to re-run).
    drop(renewer);
    if let Some(lease) = lease {
        if let Err(e) = lease.complete() {
            eprintln!("sweepdemo: lease completion failed: {e}");
            std::process::exit(2);
        }
    }
    std::process::exit(report.exit_code());
}
