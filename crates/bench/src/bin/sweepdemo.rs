//! `sweepdemo`: a deterministic, fault-injectable two-stage demo sweep.
//!
//! Not one of the paper's tables — a test fixture for the isolation and
//! resume machinery. Integration tests (and CI) drive this binary because
//! the libtest harness owns `argv[1]`, so a `cargo test` binary cannot
//! serve the hidden `run-cell` subcommand itself; `sweepdemo` can, and it
//! is cheap enough to SIGKILL mid-sweep and resume.
//!
//! Each cell rolls a seeded Hopper trajectory (optionally through
//! [`imap_env::FaultyEnv`]) and reports an FNV checksum, printed in hex —
//! so two runs of the same grid are byte-comparable on stdout.
//!
//! Environment knobs (on top of the usual sweep flags — `--jobs`,
//! `--isolate`, `--resume`, `IMAP_ISOLATE`, `IMAP_CELL_TIMEOUT`, ...):
//!
//! - `IMAP_DEMO_CELLS=N` — number of stage-2 cells (default 4)
//! - `IMAP_DEMO_FAULTS="idx:mode,..."` — inject a fault into stage-2 cell
//!   `idx`; `mode` is `ok`, `panic`, `abort`, `hang` (cooperative),
//!   `hang_hard` (only SIGKILL ends it), `leak`, or `slow`
//! - `IMAP_DEMO_STEPS=N` — rollout length per cell (default 40)

use imap_bench::cells::{run_fault_spec, CellSpec};
use imap_bench::exec::{run_sweep, SweepCell, SweepConfig, SweepReport};
use imap_bench::{base_seed, bench_telemetry, finish_telemetry, Budget};
use imap_harness::JobStatus;
use imap_nn::NnError;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `IMAP_DEMO_FAULTS="1:panic,3:hang"` into (index, mode) pairs.
fn demo_faults() -> Vec<(usize, String)> {
    let Ok(raw) = std::env::var("IMAP_DEMO_FAULTS") else {
        return Vec::new();
    };
    raw.split(',')
        .filter(|s| !s.trim().is_empty())
        .filter_map(|pair| {
            let (idx, mode) = pair.split_once(':')?;
            Some((idx.trim().parse().ok()?, mode.trim().to_string()))
        })
        .collect()
}

fn fault_cell(label: String, tags: &[(&str, &str)], seed: u64, spec: CellSpec) -> SweepCell<u64> {
    let closure_spec = spec.clone();
    SweepCell::new(label, tags, seed, move |ctx| {
        run_fault_spec(&closure_spec, ctx).map_err(|context| NnError::Numeric { context })
    })
    .isolated(&spec)
}

fn main() {
    imap_bench::cells::maybe_serve_run_cell();
    let seed = base_seed();
    let sweep = SweepConfig::from_env();
    let budget = Budget::quick(); // names the telemetry run; no training here
    let tel = bench_telemetry("sweepdemo", &budget, seed);
    let _sweep_span = tel.span("sweep");
    let cells = env_usize("IMAP_DEMO_CELLS", 4);
    let steps = env_usize("IMAP_DEMO_STEPS", 40) as u64;
    let faults = demo_faults();
    let mut report = SweepReport::default();

    // Stage 1: a single warmup cell, so multi-stage ledgers are exercised.
    let warmup = vec![fault_cell(
        "warmup".into(),
        &[("cell", "warmup"), ("stage", "warmup")],
        seed,
        CellSpec::fault("ok", 0, 0, steps),
    )];
    let warmup_out = run_sweep(&tel, &sweep, warmup, &mut report, |_, _| {});

    // Stage 2: the demo grid, with faults injected where requested.
    let grid: Vec<SweepCell<u64>> = (0..cells)
        .map(|i| {
            let mode = faults
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, m)| m.as_str())
                .unwrap_or("ok");
            let mode_owned = mode.to_string();
            let tags = [("cell", "demo"), ("mode", mode_owned.as_str())];
            fault_cell(
                format!("demo-{i}-{mode}"),
                &tags,
                seed.wrapping_add(i as u64),
                CellSpec::fault(mode, 5, 1, steps),
            )
        })
        .collect();
    let outcomes = run_sweep(&tel, &sweep, grid, &mut report, |_, _| {});

    // Rendering: one deterministic row per cell. Failure rows print only
    // the status name so stdout stays byte-comparable across runs.
    println!("# sweepdemo — {cells} cells, {} fault(s)", faults.len());
    match &warmup_out[0] {
        JobStatus::Ok(checksum) => println!("warmup           {checksum:016x}"),
        status => println!("warmup           {}", status.name()),
    }
    for (i, status) in outcomes.iter().enumerate() {
        let mode = faults
            .iter()
            .find(|(idx, _)| *idx == i)
            .map(|(_, m)| m.as_str())
            .unwrap_or("ok");
        match status {
            JobStatus::Ok(checksum) => println!("cell {i:>3} {mode:<9} {checksum:016x}"),
            status => println!("cell {i:>3} {mode:<9} {}", status.name()),
        }
    }
    drop(_sweep_span);
    finish_telemetry(&tel);
    println!("{}", report.summary_line());
    std::process::exit(report.exit_code());
}
