//! Table 3 (Appendix C): the full IMAP+BR grid — nine sparse tasks under
//! SA-RL, the four IMAP variants, and all four IMAP+BR variants, with
//! underline-equivalent markers where BR improves the corresponding IMAP.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin table3`

use imap_bench::{
    base_seed, bench_telemetry, cell, finish_telemetry, print_row, run_attack_cell_cached,
    run_cell_isolated, run_isolated, AttackKind, Budget, VictimCache,
};
use imap_core::regularizer::RegularizerKind;
use imap_defense::DefenseMethod;
use imap_env::TaskId;

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let tel = bench_telemetry("table3", &budget, seed);
    let cache = VictimCache::open();

    println!("# Table 3 — full IMAP+BR grid (budget: {})", budget.name);
    println!();
    let mut header = vec!["Env".to_string(), "SA-RL".to_string()];
    for k in RegularizerKind::ALL {
        header.push(format!("IMAP-{}", k.short_name()));
    }
    for k in RegularizerKind::ALL {
        header.push(format!("IMAP-{}+BR", k.short_name()));
    }
    print_row(&header);

    let mut br_improvements = 0usize;
    let mut br_cells = 0usize;
    let mut tasks_where_br_helps = 0usize;

    for task in TaskId::SPARSE {
        let victim_tags = [("task", task.spec().name), ("stage", "victim_train")];
        let Some(victim) = run_isolated(&tel, &victim_tags, || {
            let _t = tel.span("victim_train");
            cache.victim_with(&tel, task, DefenseMethod::Ppo, &budget, seed)
        }) else {
            continue;
        };
        let mut row = vec![task.spec().name.to_string()];
        let run_cell = |kind: AttackKind| {
            let label = kind.label();
            let tags = [("task", task.spec().name), ("attack", label.as_str())];
            run_cell_isolated(&tel, &tags, || {
                let _t = tel.span("attack_cell");
                run_attack_cell_cached(task, DefenseMethod::Ppo, &victim, kind, &budget, seed)
            })
        };
        match run_cell(AttackKind::SaRl) {
            Some(sa) => row.push(cell(sa.eval.sparse, sa.eval.sparse_std, false)),
            None => row.push("failed".to_string()),
        }

        let mut imap_vals = Vec::new();
        for k in RegularizerKind::ALL {
            match run_cell(AttackKind::Imap(k)) {
                Some(r) => {
                    row.push(cell(r.eval.sparse, r.eval.sparse_std, false));
                    imap_vals.push(r.eval.sparse);
                }
                None => {
                    row.push("failed".to_string());
                    imap_vals.push(f64::NAN);
                }
            }
        }
        let mut any_improved = false;
        for (i, k) in RegularizerKind::ALL.into_iter().enumerate() {
            let Some(r) = run_cell(AttackKind::ImapBr(k)) else {
                row.push("failed".to_string());
                continue;
            };
            br_cells += 1;
            // Lower victim score = stronger attack; mark BR improvements
            // with `*` (the paper's underline). A NaN baseline (failed
            // IMAP cell) compares false, so it never counts as improved.
            let improved = r.eval.sparse < imap_vals[i] - 1e-9;
            if improved {
                br_improvements += 1;
                any_improved = true;
            }
            row.push(format!(
                "{}{}",
                cell(r.eval.sparse, r.eval.sparse_std, false),
                if improved { "*" } else { " " }
            ));
        }
        if any_improved {
            tasks_where_br_helps += 1;
        }
        print_row(&row);
    }

    println!();
    println!("`*` marks BR improving the corresponding IMAP variant.");
    println!(
        "BR improved {br_improvements}/{br_cells} (task, regularizer) cells; helped on {tasks_where_br_helps}/9 tasks (paper: \"BR boosts IMAP in half of the tasks\")."
    );
    finish_telemetry(&tel);
}
