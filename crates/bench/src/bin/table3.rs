//! Table 3 (Appendix C): the full IMAP+BR grid — nine sparse tasks under
//! SA-RL, the four IMAP variants, and all four IMAP+BR variants, with
//! underline-equivalent markers where BR improves the corresponding IMAP.
//!
//! Cells run on the supervised sweep pool (`--jobs N` /
//! `IMAP_MAX_PARALLEL`); the binary exits nonzero if any cell errored or
//! timed out.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin table3 [-- --jobs N]`

use std::sync::Arc;

use imap_bench::cells::CellSpec;
use imap_bench::exec::{dep_skip_reason, run_sweep, SweepCell, SweepConfig, SweepReport};
use imap_bench::{
    base_seed, bench_telemetry, cell, finish_telemetry, print_row, record_cell,
    run_attack_cell_cached, AttackKind, Budget, CellCache, CellResult, VictimCache,
};
use imap_core::regularizer::RegularizerKind;
use imap_defense::DefenseMethod;
use imap_env::TaskId;
use imap_rl::GaussianPolicy;

fn main() {
    imap_bench::cells::maybe_serve_run_cell();
    let budget = Budget::from_env();
    let seed = base_seed();
    let sweep = SweepConfig::from_env();
    let tel = bench_telemetry("table3", &budget, seed);
    let _sweep_span = tel.span("sweep");
    let victims_cache = Arc::new(VictimCache::open());
    let cells_cache = Arc::new(CellCache::open());
    let mut report = SweepReport::default();

    // Grid columns per task: SA-RL, the four IMAPs, the four IMAP+BRs.
    let mut kinds = vec![AttackKind::SaRl];
    kinds.extend(RegularizerKind::ALL.into_iter().map(AttackKind::Imap));
    kinds.extend(RegularizerKind::ALL.into_iter().map(AttackKind::ImapBr));
    let per_task = kinds.len();

    // Stage 1: one PPO victim per sparse task.
    let victim_cells: Vec<SweepCell<GaussianPolicy>> = TaskId::SPARSE
        .into_iter()
        .map(|task| {
            let tags = [("task", task.spec().name), ("stage", "victim_train")];
            let tel = tel.clone();
            let victims = Arc::clone(&victims_cache);
            let spec = CellSpec::victim(task, DefenseMethod::Ppo, &budget, &victims_cache);
            let budget = budget.clone();
            SweepCell::new(
                format!("victim {}", task.spec().name),
                &tags,
                seed,
                move |ctx| {
                    let _t = tel.span("victim_train");
                    victims.victim_supervised(
                        &tel,
                        task,
                        DefenseMethod::Ppo,
                        &budget,
                        ctx.seed,
                        &ctx.progress,
                    )
                },
            )
            .isolated(&spec)
        })
        .collect();
    let victim_out = run_sweep(&tel, &sweep, victim_cells, &mut report, |_, _| {});
    let victims: Vec<Option<Arc<GaussianPolicy>>> = victim_out
        .iter()
        .map(|s| s.ok().map(|p| Arc::new(p.clone())))
        .collect();

    // Stage 2: the attack grid, row-major.
    let attack_cells: Vec<SweepCell<CellResult>> = TaskId::SPARSE
        .into_iter()
        .enumerate()
        .flat_map(|(ti, task)| {
            let victim = victims[ti].clone();
            let dep = dep_skip_reason(&victim_out[ti]);
            let tel = tel.clone();
            let cells_cache = Arc::clone(&cells_cache);
            let budget = budget.clone();
            kinds.clone().into_iter().map(move |kind| {
                let label = kind.label();
                let cell_label = format!("{} {}", task.spec().name, label);
                let tags = [("task", task.spec().name), ("attack", label.as_str())];
                match (&victim, &dep) {
                    (Some(victim), None) => {
                        let tel = tel.clone();
                        let victim = Arc::clone(victim);
                        let cells = Arc::clone(&cells_cache);
                        let spec = CellSpec::attack(
                            task,
                            DefenseMethod::Ppo,
                            &victim,
                            kind,
                            &budget,
                            &cells,
                        );
                        let budget = budget.clone();
                        SweepCell::new(cell_label, &tags, seed, move |ctx| {
                            let _t = tel.span("attack_cell");
                            run_attack_cell_cached(
                                &cells,
                                task,
                                DefenseMethod::Ppo,
                                &victim,
                                kind,
                                &budget,
                                ctx.seed,
                                &ctx.progress,
                            )
                        })
                        .isolated(&spec)
                    }
                    (_, reason) => SweepCell::skipped(
                        cell_label,
                        &tags,
                        reason.clone().unwrap_or_else(|| "victim_missing".into()),
                    ),
                }
            })
        })
        .collect();
    let tel_ok = tel.clone();
    let outcomes = run_sweep(&tel, &sweep, attack_cells, &mut report, |tags, result| {
        record_cell(&tel_ok, tags, result);
    });

    // Rendering.
    println!("# Table 3 — full IMAP+BR grid (budget: {})", budget.name);
    println!();
    let mut header = vec!["Env".to_string(), "SA-RL".to_string()];
    for k in RegularizerKind::ALL {
        header.push(format!("IMAP-{}", k.short_name()));
    }
    for k in RegularizerKind::ALL {
        header.push(format!("IMAP-{}+BR", k.short_name()));
    }
    print_row(&header);

    let mut br_improvements = 0usize;
    let mut br_cells = 0usize;
    let mut tasks_where_br_helps = 0usize;

    for (ti, task) in TaskId::SPARSE.into_iter().enumerate() {
        if victims[ti].is_none() {
            continue;
        }
        let mut row = vec![task.spec().name.to_string()];
        match outcomes[ti * per_task].ok() {
            Some(sa) => row.push(cell(sa.eval.sparse, sa.eval.sparse_std, false)),
            None => row.push("failed".to_string()),
        }

        let mut imap_vals = Vec::new();
        for i in 0..RegularizerKind::ALL.len() {
            match outcomes[ti * per_task + 1 + i].ok() {
                Some(r) => {
                    row.push(cell(r.eval.sparse, r.eval.sparse_std, false));
                    imap_vals.push(r.eval.sparse);
                }
                None => {
                    row.push("failed".to_string());
                    imap_vals.push(f64::NAN);
                }
            }
        }
        let mut any_improved = false;
        for i in 0..RegularizerKind::ALL.len() {
            let Some(r) = outcomes[ti * per_task + 5 + i].ok() else {
                row.push("failed".to_string());
                continue;
            };
            br_cells += 1;
            // Lower victim score = stronger attack; mark BR improvements
            // with `*` (the paper's underline). A NaN baseline (failed
            // IMAP cell) compares false, so it never counts as improved.
            let improved = r.eval.sparse < imap_vals[i] - 1e-9;
            if improved {
                br_improvements += 1;
                any_improved = true;
            }
            row.push(format!(
                "{}{}",
                cell(r.eval.sparse, r.eval.sparse_std, false),
                if improved { "*" } else { " " }
            ));
        }
        if any_improved {
            tasks_where_br_helps += 1;
        }
        print_row(&row);
    }

    println!();
    println!("`*` marks BR improving the corresponding IMAP variant.");
    println!(
        "BR improved {br_improvements}/{br_cells} (task, regularizer) cells; helped on {tasks_where_br_helps}/9 tasks (paper: \"BR boosts IMAP in half of the tasks\")."
    );
    drop(_sweep_span);
    finish_telemetry(&tel);
    println!("{}", report.summary_line());
    std::process::exit(report.exit_code());
}
