//! Figure 7: ablation on the marginal trade-off ξ (eq. 7/9) — the weight on
//! victim-state-space coverage versus adversary-state-space coverage in the
//! multi-agent regularizers.
//!
//! The paper's insight: the adversary-space term (ξ = 0 component) is
//! critical; the victim-space term can improve it further.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin fig7`

use imap_bench::{
    base_seed, bench_telemetry, finish_telemetry, marl_victim_with, run_cell_isolated,
    run_isolated, run_multi_attack_cell_cached, AttackKind, Budget,
};
use imap_core::regularizer::RegularizerKind;
use imap_env::MultiTaskId;

const XIS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let tel = bench_telemetry("fig7", &budget, seed);
    let game = MultiTaskId::YouShallNotPass;
    let victim_tags = [("game", game.name()), ("stage", "victim_train")];
    let Some(victim) = run_isolated(&tel, &victim_tags, || {
        let _t = tel.span("victim_train");
        marl_victim_with(&tel, game, &budget, seed)
    }) else {
        finish_telemetry(&tel);
        return;
    };

    println!(
        "# Figure 7 — marginal trade-off ξ ablation (budget: {})",
        budget.name
    );
    println!("\n## {} (IMAP-PC+BR; ASR, higher = stronger)", game.name());
    println!("ξ = 0: pure adversary-state coverage; ξ = 1: pure victim-state coverage.");
    for xi in XIS {
        let xi_s = format!("{xi}");
        let tags = [
            ("game", game.name()),
            ("attack", "IMAP-PC+BR"),
            ("xi", xi_s.as_str()),
        ];
        match run_cell_isolated(&tel, &tags, || {
            let _t = tel.span("attack_cell");
            run_multi_attack_cell_cached(
                game,
                &victim,
                AttackKind::ImapBr(RegularizerKind::PolicyCoverage),
                &budget,
                seed,
                xi,
            )
        }) {
            Some(r) => println!("xi = {xi:>4.2}: ASR {:>5.1}%", 100.0 * r.eval.asr),
            None => println!("xi = {xi:>4.2}: failed"),
        }
    }
    finish_telemetry(&tel);
}
