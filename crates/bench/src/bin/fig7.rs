//! Figure 7: ablation on the marginal trade-off ξ (eq. 7/9) — the weight on
//! victim-state-space coverage versus adversary-state-space coverage in the
//! multi-agent regularizers.
//!
//! The paper's insight: the adversary-space term (ξ = 0 component) is
//! critical; the victim-space term can improve it further.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin fig7`

use imap_bench::{
    base_seed, bench_telemetry, finish_telemetry, marl_victim_with, record_cell,
    run_multi_attack_cell_cached, AttackKind, Budget,
};
use imap_core::regularizer::RegularizerKind;
use imap_env::MultiTaskId;

const XIS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let tel = bench_telemetry("fig7", &budget, seed);
    let game = MultiTaskId::YouShallNotPass;
    let victim = {
        let _t = tel.span("victim_train");
        marl_victim_with(&tel, game, &budget, seed)
    };

    println!(
        "# Figure 7 — marginal trade-off ξ ablation (budget: {})",
        budget.name
    );
    println!("\n## {} (IMAP-PC+BR; ASR, higher = stronger)", game.name());
    println!("ξ = 0: pure adversary-state coverage; ξ = 1: pure victim-state coverage.");
    for xi in XIS {
        let r = {
            let _t = tel.span("attack_cell");
            run_multi_attack_cell_cached(
                game,
                &victim,
                AttackKind::ImapBr(RegularizerKind::PolicyCoverage),
                &budget,
                seed,
                xi,
            )
        };
        let xi_s = format!("{xi}");
        record_cell(
            &tel,
            &[
                ("game", game.name()),
                ("attack", "IMAP-PC+BR"),
                ("xi", xi_s.as_str()),
            ],
            &r,
        );
        println!("xi = {xi:>4.2}: ASR {:>5.1}%", 100.0 * r.eval.asr);
    }
    finish_telemetry(&tel);
}
