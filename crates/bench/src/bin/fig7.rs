//! Figure 7: ablation on the marginal trade-off ξ (eq. 7/9) — the weight on
//! victim-state-space coverage versus adversary-state-space coverage in the
//! multi-agent regularizers.
//!
//! The paper's insight: the adversary-space term (ξ = 0 component) is
//! critical; the victim-space term can improve it further.
//!
//! Cells run on the supervised sweep pool (`--jobs N` /
//! `IMAP_MAX_PARALLEL`); the binary exits nonzero if any cell errored or
//! timed out.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin fig7 [-- --jobs N]`

use std::sync::Arc;

use imap_bench::cells::CellSpec;
use imap_bench::exec::{dep_skip_reason, run_sweep, SweepCell, SweepConfig, SweepReport};
use imap_bench::{
    base_seed, bench_telemetry, finish_telemetry, marl_victim_supervised, record_cell,
    run_multi_attack_cell_cached, AttackKind, Budget, CellCache, CellResult,
};
use imap_core::regularizer::RegularizerKind;
use imap_env::MultiTaskId;
use imap_rl::GaussianPolicy;

const XIS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

fn main() {
    imap_bench::cells::maybe_serve_run_cell();
    let budget = Budget::from_env();
    let seed = base_seed();
    let sweep = SweepConfig::from_env();
    let tel = bench_telemetry("fig7", &budget, seed);
    let _sweep_span = tel.span("sweep");
    let cells_cache = Arc::new(CellCache::open());
    let mut report = SweepReport::default();
    let game = MultiTaskId::YouShallNotPass;

    // Stage 1: the self-play victim.
    let victim_cells = vec![{
        let tags = [("game", game.name()), ("stage", "victim_train")];
        let tel = tel.clone();
        let spec = CellSpec::marl_victim(game, &budget);
        let budget = budget.clone();
        SweepCell::new(format!("victim {}", game.name()), &tags, seed, move |ctx| {
            let _t = tel.span("victim_train");
            marl_victim_supervised(&tel, game, &budget, ctx.seed, &ctx.progress)
        })
        .isolated(&spec)
    }];
    let victim_out = run_sweep(&tel, &sweep, victim_cells, &mut report, |_, _| {});
    let victim: Option<Arc<GaussianPolicy>> = victim_out[0].ok().map(|p| Arc::new(p.clone()));

    // Stage 2: one cell per ξ.
    let attack_cells: Vec<SweepCell<CellResult>> = XIS
        .into_iter()
        .map(|xi| {
            let xi_s = format!("{xi}");
            let tags = [
                ("game", game.name()),
                ("attack", "IMAP-PC+BR"),
                ("xi", xi_s.as_str()),
            ];
            let cell_label = format!("{} IMAP-PC+BR xi={xi}", game.name());
            match (&victim, dep_skip_reason(&victim_out[0])) {
                (Some(victim), None) => {
                    let tel = tel.clone();
                    let victim = Arc::clone(victim);
                    let cells = Arc::clone(&cells_cache);
                    let spec = CellSpec::marl_attack(
                        game,
                        &victim,
                        AttackKind::ImapBr(RegularizerKind::PolicyCoverage),
                        &budget,
                        xi,
                        &cells,
                    );
                    let budget = budget.clone();
                    SweepCell::new(cell_label, &tags, seed, move |ctx| {
                        let _t = tel.span("attack_cell");
                        run_multi_attack_cell_cached(
                            &cells,
                            game,
                            &victim,
                            AttackKind::ImapBr(RegularizerKind::PolicyCoverage),
                            &budget,
                            ctx.seed,
                            xi,
                            &ctx.progress,
                        )
                    })
                    .isolated(&spec)
                }
                (_, reason) => SweepCell::skipped(
                    cell_label,
                    &tags,
                    reason.unwrap_or_else(|| "victim_missing".into()),
                ),
            }
        })
        .collect();
    let tel_ok = tel.clone();
    let outcomes = run_sweep(&tel, &sweep, attack_cells, &mut report, |tags, result| {
        record_cell(&tel_ok, tags, result);
    });

    // Rendering.
    println!(
        "# Figure 7 — marginal trade-off ξ ablation (budget: {})",
        budget.name
    );
    if victim.is_some() {
        println!("\n## {} (IMAP-PC+BR; ASR, higher = stronger)", game.name());
        println!("ξ = 0: pure adversary-state coverage; ξ = 1: pure victim-state coverage.");
        for (xi_i, xi) in XIS.into_iter().enumerate() {
            match outcomes[xi_i].ok() {
                Some(r) => println!("xi = {xi:>4.2}: ASR {:>5.1}%", 100.0 * r.eval.asr),
                None => println!("xi = {xi:>4.2}: failed"),
            }
        }
    }
    drop(_sweep_span);
    finish_telemetry(&tel);
    println!("{}", report.summary_line());
    std::process::exit(report.exit_code());
}
