//! Figure 6: ablation on the Bias-Reduction dual step size η.
//!
//! Sweeps η over IMAP-PC+BR on one sparse single-agent task and one
//! multi-agent game, reporting the final attack strength per η. The paper's
//! finding: IMAP is insensitive to η, with larger step sizes slightly
//! better.
//!
//! Cells run on the supervised sweep pool (`--jobs N` /
//! `IMAP_MAX_PARALLEL`); the binary exits nonzero if any cell errored or
//! timed out.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin fig6 [-- --jobs N]`

use std::sync::Arc;

use imap_bench::cells::CellSpec;
use imap_bench::exec::{dep_skip_reason, run_sweep, SweepCell, SweepConfig, SweepReport};
use imap_bench::{
    base_seed, bench_telemetry, finish_telemetry, marl_victim_supervised, record_cell,
    record_curve, run_br_attack_cell, run_marl_br_attack_cell, Budget, CellResult, VictimCache,
};
use imap_defense::DefenseMethod;
use imap_env::{MultiTaskId, TaskId};
use imap_rl::GaussianPolicy;

const ETAS: [f64; 4] = [0.5, 2.0, 5.0, 10.0];

fn main() {
    imap_bench::cells::maybe_serve_run_cell();
    let budget = Budget::from_env();
    let seed = base_seed();
    let sweep = SweepConfig::from_env();
    let tel = bench_telemetry("fig6", &budget, seed);
    let _sweep_span = tel.span("sweep");
    let victims_cache = Arc::new(VictimCache::open());
    let mut report = SweepReport::default();
    let task = TaskId::SparseHalfCheetah;
    let game = MultiTaskId::YouShallNotPass;

    // Stage 1: the single-agent victim (cell 0) and the self-play victim
    // (cell 1).
    let victim_cells: Vec<SweepCell<GaussianPolicy>> = vec![
        {
            let tags = [("task", task.spec().name), ("stage", "victim_train")];
            let tel = tel.clone();
            let victims = Arc::clone(&victims_cache);
            let spec = CellSpec::victim(task, DefenseMethod::Ppo, &budget, &victims_cache);
            let budget = budget.clone();
            SweepCell::new(
                format!("victim {}", task.spec().name),
                &tags,
                seed,
                move |ctx| {
                    let _t = tel.span("victim_train");
                    victims.victim_supervised(
                        &tel,
                        task,
                        DefenseMethod::Ppo,
                        &budget,
                        ctx.seed,
                        &ctx.progress,
                    )
                },
            )
            .isolated(&spec)
        },
        {
            let tags = [("game", game.name()), ("stage", "victim_train")];
            let tel = tel.clone();
            let spec = CellSpec::marl_victim(game, &budget);
            let budget = budget.clone();
            SweepCell::new(format!("victim {}", game.name()), &tags, seed, move |ctx| {
                let _t = tel.span("victim_train");
                marl_victim_supervised(&tel, game, &budget, ctx.seed, &ctx.progress)
            })
            .isolated(&spec)
        },
    ];
    let victim_out = run_sweep(&tel, &sweep, victim_cells, &mut report, |_, _| {});
    let victims: Vec<Option<Arc<GaussianPolicy>>> = victim_out
        .iter()
        .map(|s| s.ok().map(|p| Arc::new(p.clone())))
        .collect();

    // Stage 2: four η cells per victim — single-agent first, then
    // multi-agent, matching the printed order.
    let mut attack_cells: Vec<SweepCell<CellResult>> = Vec::new();
    for eta in ETAS {
        let eta_s = format!("{eta}");
        let tags = [
            ("task", task.spec().name),
            ("attack", "IMAP-PC+BR"),
            ("eta", eta_s.as_str()),
        ];
        let cell_label = format!("{} IMAP-PC+BR eta={eta}", task.spec().name);
        match (&victims[0], dep_skip_reason(&victim_out[0])) {
            (Some(victim), None) => {
                let tel = tel.clone();
                let victim = Arc::clone(victim);
                let spec = CellSpec::br_single(task, &victim, eta, &budget);
                let budget = budget.clone();
                attack_cells.push(
                    SweepCell::new(cell_label, &tags, seed, move |ctx| {
                        let _t = tel.span("attack_cell");
                        run_br_attack_cell(task, &victim, eta, &budget, ctx.seed, &ctx.progress)
                    })
                    .isolated(&spec),
                );
            }
            (_, reason) => attack_cells.push(SweepCell::skipped(
                cell_label,
                &tags,
                reason.unwrap_or_else(|| "victim_missing".into()),
            )),
        }
    }
    for eta in ETAS {
        let eta_s = format!("{eta}");
        let tags = [
            ("game", game.name()),
            ("attack", "IMAP-PC+BR"),
            ("eta", eta_s.as_str()),
        ];
        let cell_label = format!("{} IMAP-PC+BR eta={eta}", game.name());
        match (&victims[1], dep_skip_reason(&victim_out[1])) {
            (Some(victim), None) => {
                let tel = tel.clone();
                let victim = Arc::clone(victim);
                let spec = CellSpec::br_multi(game, &victim, eta, &budget);
                let budget = budget.clone();
                attack_cells.push(
                    SweepCell::new(cell_label, &tags, seed, move |ctx| {
                        let _t = tel.span("attack_cell");
                        run_marl_br_attack_cell(
                            game,
                            &victim,
                            eta,
                            &budget,
                            ctx.seed,
                            &ctx.progress,
                        )
                    })
                    .isolated(&spec),
                );
            }
            (_, reason) => attack_cells.push(SweepCell::skipped(
                cell_label,
                &tags,
                reason.unwrap_or_else(|| "victim_missing".into()),
            )),
        }
    }
    let tel_ok = tel.clone();
    let outcomes = run_sweep(&tel, &sweep, attack_cells, &mut report, |tags, result| {
        record_cell(&tel_ok, tags, result);
    });

    // Rendering.
    println!(
        "# Figure 6 — BR step-size η ablation (budget: {})",
        budget.name
    );
    if victims[0].is_some() {
        println!(
            "\n## {} (IMAP-PC+BR; victim score, lower = stronger)",
            task.spec().name
        );
        for (ei, eta) in ETAS.into_iter().enumerate() {
            let Some(r) = outcomes[ei].ok() else {
                println!("eta = {eta:>5.1}: failed");
                continue;
            };
            let eta_s = format!("{eta}");
            let tags = [
                ("task", task.spec().name),
                ("attack", "IMAP-PC+BR"),
                ("eta", eta_s.as_str()),
            ];
            record_curve(&tel, &tags, &r.curve);
            let final_tau = r.curve.last().map(|p| p.tau).unwrap_or(1.0);
            println!(
                "eta = {eta:>5.1}: victim score {:>6.2} ± {:<5.2}  (final τ = {final_tau:.2})",
                r.eval.sparse, r.eval.sparse_std
            );
        }
    }
    if victims[1].is_some() {
        println!("\n## {} (IMAP-PC+BR; ASR, higher = stronger)", game.name());
        for (ei, eta) in ETAS.into_iter().enumerate() {
            let Some(r) = outcomes[ETAS.len() + ei].ok() else {
                println!("eta = {eta:>5.1}: failed");
                continue;
            };
            let eta_s = format!("{eta}");
            let tags = [
                ("game", game.name()),
                ("attack", "IMAP-PC+BR"),
                ("eta", eta_s.as_str()),
            ];
            record_curve(&tel, &tags, &r.curve);
            let final_tau = r.curve.last().map(|p| p.tau).unwrap_or(1.0);
            println!(
                "eta = {eta:>5.1}: ASR {:>5.1}%  (final τ = {final_tau:.2})",
                100.0 * r.eval.asr
            );
        }
    }
    drop(_sweep_span);
    finish_telemetry(&tel);
    println!("{}", report.summary_line());
    std::process::exit(report.exit_code());
}
