//! Figure 6: ablation on the Bias-Reduction dual step size η.
//!
//! Sweeps η over IMAP-PC+BR on one sparse single-agent task and one
//! multi-agent game, reporting the final attack strength per η. The paper's
//! finding: IMAP is insensitive to η, with larger step sizes slightly
//! better.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin fig6`

use imap_bench::{
    base_seed, bench_telemetry, default_xi, finish_telemetry, marl_victim_with, record_curve,
    run_cell_isolated, run_isolated, Budget, CellResult, VictimCache,
};
use imap_core::eval::{eval_multi_attack, eval_under_attack, Attacker};
use imap_core::regularizer::{RegularizerConfig, RegularizerKind};
use imap_core::threat::{OpponentEnv, PerturbationEnv};
use imap_core::{ImapConfig, ImapTrainer};
use imap_defense::DefenseMethod;
use imap_env::{build_multi_task, build_task, EnvRng, MultiTaskId, TaskId};
use rand::SeedableRng;

const ETAS: [f64; 4] = [0.5, 2.0, 5.0, 10.0];

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let tel = bench_telemetry("fig6", &budget, seed);
    let cache = VictimCache::open();

    println!(
        "# Figure 6 — BR step-size η ablation (budget: {})",
        budget.name
    );

    // Single-agent: IMAP-PC+BR on SparseHalfCheetah.
    let task = TaskId::SparseHalfCheetah;
    let victim_tags = [("task", task.spec().name), ("stage", "victim_train")];
    let victim = run_isolated(&tel, &victim_tags, || {
        let _t = tel.span("victim_train");
        cache.victim_with(&tel, task, DefenseMethod::Ppo, &budget, seed)
    });
    if let Some(victim) = victim {
        println!(
            "\n## {} (IMAP-PC+BR; victim score, lower = stronger)",
            task.spec().name
        );
        for eta in ETAS {
            let eta_s = format!("{eta}");
            let tags = [
                ("task", task.spec().name),
                ("attack", "IMAP-PC+BR"),
                ("eta", eta_s.as_str()),
            ];
            let Some(r) = run_cell_isolated(&tel, &tags, || {
                let cfg = ImapConfig::imap(
                    budget.attack_train(seed),
                    RegularizerConfig::new(RegularizerKind::PolicyCoverage),
                )
                .with_br(eta);
                let mut env =
                    PerturbationEnv::new(build_task(task), victim.clone(), task.spec().eps);
                let out = {
                    let _t = tel.span("attack_cell");
                    ImapTrainer::new(cfg).train(&mut env, None)?
                };
                let mut rng = EnvRng::seed_from_u64(seed ^ 0xf16);
                let eval = eval_under_attack(
                    build_task(task),
                    &victim,
                    Attacker::Policy(&out.policy),
                    task.spec().eps,
                    budget.eval_episodes,
                    &mut rng,
                )?;
                Ok(CellResult {
                    eval,
                    curve: out.curve,
                })
            }) else {
                println!("eta = {eta:>5.1}: failed");
                continue;
            };
            record_curve(&tel, &tags, &r.curve);
            let final_tau = r.curve.last().map(|p| p.tau).unwrap_or(1.0);
            println!(
                "eta = {eta:>5.1}: victim score {:>6.2} ± {:<5.2}  (final τ = {final_tau:.2})",
                r.eval.sparse, r.eval.sparse_std
            );
        }
    }

    // Multi-agent: IMAP-PC+BR on YouShallNotPass.
    let game = MultiTaskId::YouShallNotPass;
    let victim_tags = [("game", game.name()), ("stage", "victim_train")];
    let victim = run_isolated(&tel, &victim_tags, || {
        let _t = tel.span("victim_train");
        marl_victim_with(&tel, game, &budget, seed)
    });
    if let Some(victim) = victim {
        println!("\n## {} (IMAP-PC+BR; ASR, higher = stronger)", game.name());
        for eta in ETAS {
            let eta_s = format!("{eta}");
            let tags = [
                ("game", game.name()),
                ("attack", "IMAP-PC+BR"),
                ("eta", eta_s.as_str()),
            ];
            let Some(r) = run_cell_isolated(&tel, &tags, || {
                let mut rc = RegularizerConfig::new(RegularizerKind::PolicyCoverage);
                let mut env = OpponentEnv::new(build_multi_task(game), victim.clone());
                rc.marginal_split = Some(env.summary_split());
                rc.xi = default_xi();
                let train = imap_rl::TrainConfig {
                    iterations: budget.marl_attack_iters,
                    ..budget.attack_train(seed)
                };
                let cfg = ImapConfig::imap(train, rc)
                    .with_intrinsic_scale(imap_bench::marl_intrinsic_scale())
                    .with_br(eta);
                let out = {
                    let _t = tel.span("attack_cell");
                    ImapTrainer::new(cfg).train(&mut env, None)?
                };
                let mut rng = EnvRng::seed_from_u64(seed ^ 0xf17);
                let eval = eval_multi_attack(
                    build_multi_task(game),
                    &victim,
                    Attacker::Policy(&out.policy),
                    budget.eval_episodes,
                    &mut rng,
                )?;
                Ok(CellResult {
                    eval,
                    curve: out.curve,
                })
            }) else {
                println!("eta = {eta:>5.1}: failed");
                continue;
            };
            record_curve(&tel, &tags, &r.curve);
            let final_tau = r.curve.last().map(|p| p.tau).unwrap_or(1.0);
            println!(
                "eta = {eta:>5.1}: ASR {:>5.1}%  (final τ = {final_tau:.2})",
                100.0 * r.eval.asr
            );
        }
    }
    finish_telemetry(&tel);
}
