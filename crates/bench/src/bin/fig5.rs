//! Figure 5: multi-agent attack learning curves — ASR vs training samples
//! for AP-MARL vs IMAP-PC and IMAP-PC+BR in YouShallNotPass and
//! KickAndDefend, plus the final evaluated ASRs.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin fig5`

use imap_bench::{
    base_seed, bench_telemetry, default_xi, finish_telemetry, marl_victim_with, record_curve,
    run_cell_isolated, run_isolated, run_multi_attack_cell_cached, AttackKind, Budget,
};
use imap_core::regularizer::RegularizerKind;
use imap_env::render::Canvas;
use imap_env::MultiTaskId;

fn main() {
    let budget = Budget::from_env();
    let seed = base_seed();
    let tel = bench_telemetry("fig5", &budget, seed);
    let attacks: Vec<(&str, AttackKind, char)> = vec![
        ("AP-MARL", AttackKind::SaRl, 'a'),
        (
            "IMAP-PC",
            AttackKind::Imap(RegularizerKind::PolicyCoverage),
            'P',
        ),
        (
            "IMAP-PC+BR",
            AttackKind::ImapBr(RegularizerKind::PolicyCoverage),
            'B',
        ),
    ];

    println!(
        "# Figure 5 — multi-agent ASR curves (budget: {})",
        budget.name
    );
    for game in MultiTaskId::ALL {
        let victim_tags = [("game", game.name()), ("stage", "victim_train")];
        let Some(victim) = run_isolated(&tel, &victim_tags, || {
            let _t = tel.span("victim_train");
            marl_victim_with(&tel, game, &budget, seed)
        }) else {
            continue;
        };
        println!("\n## {}", game.name());
        let mut curves = Vec::new();
        for (label, kind, glyph) in &attacks {
            let tags = [("game", game.name()), ("attack", *label)];
            let Some(r) = run_cell_isolated(&tel, &tags, || {
                let _t = tel.span("attack_cell");
                run_multi_attack_cell_cached(game, &victim, *kind, &budget, seed, default_xi())
            }) else {
                println!("{label:<12} failed");
                continue;
            };
            record_curve(&tel, &tags, &r.curve);
            println!(
                "{label:<12} final evaluated ASR = {:.2}% over {} episodes",
                100.0 * r.eval.asr,
                r.eval.episodes
            );
            curves.push((*label, *glyph, r.curve));
        }

        let max_len = curves.iter().map(|(_, _, c)| c.len()).max().unwrap_or(0);
        let stride = (max_len / 10).max(1);
        print!("\n{:>10}", "steps");
        for (label, glyph, _) in &curves {
            print!("  {label:>10}({glyph})");
        }
        println!();
        for i in (0..max_len).step_by(stride) {
            let steps = curves
                .iter()
                .filter_map(|(_, _, c)| c.get(i).map(|p| p.steps))
                .max()
                .unwrap_or(0);
            print!("{steps:>10}");
            for (_, _, c) in &curves {
                match c.get(i) {
                    Some(p) => print!("  {:>13.2}", p.asr),
                    None => print!("  {:>13}", "-"),
                }
            }
            println!();
        }

        let mut canvas = Canvas::new(70, 12, (0.0, max_len.max(2) as f64 - 1.0), (0.0, 1.0));
        for (_, glyph, c) in &curves {
            let pts: Vec<(f64, f64)> = c
                .iter()
                .enumerate()
                .map(|(i, p)| (i as f64, p.asr))
                .collect();
            canvas.trace(&pts, *glyph);
        }
        println!("\ntraining ASR 1.0 .. 0.0 (top..bottom), x = attack iterations:");
        print!("{}", canvas.render());
    }
    println!("\nLegend: a = AP-MARL, P = IMAP-PC, B = IMAP-PC+BR. Higher ASR = stronger attack.");
    finish_telemetry(&tel);
}
