//! Figure 5: multi-agent attack learning curves — ASR vs training samples
//! for AP-MARL vs IMAP-PC and IMAP-PC+BR in YouShallNotPass and
//! KickAndDefend, plus the final evaluated ASRs.
//!
//! Cells run on the supervised sweep pool (`--jobs N` /
//! `IMAP_MAX_PARALLEL`); the binary exits nonzero if any cell errored or
//! timed out.
//!
//! Usage: `IMAP_BUDGET=quick|full cargo run --release -p imap-bench --bin fig5 [-- --jobs N]`

use std::sync::Arc;

use imap_bench::cells::CellSpec;
use imap_bench::exec::{dep_skip_reason, run_sweep, SweepCell, SweepConfig, SweepReport};
use imap_bench::{
    base_seed, bench_telemetry, default_xi, finish_telemetry, marl_victim_supervised, record_cell,
    record_curve, run_multi_attack_cell_cached, AttackKind, Budget, CellCache, CellResult,
};
use imap_core::regularizer::RegularizerKind;
use imap_env::render::Canvas;
use imap_env::MultiTaskId;
use imap_rl::GaussianPolicy;

fn main() {
    imap_bench::cells::maybe_serve_run_cell();
    let budget = Budget::from_env();
    let seed = base_seed();
    let sweep = SweepConfig::from_env();
    let tel = bench_telemetry("fig5", &budget, seed);
    let _sweep_span = tel.span("sweep");
    let cells_cache = Arc::new(CellCache::open());
    let mut report = SweepReport::default();
    let attacks: Vec<(&str, AttackKind, char)> = vec![
        ("AP-MARL", AttackKind::SaRl, 'a'),
        (
            "IMAP-PC",
            AttackKind::Imap(RegularizerKind::PolicyCoverage),
            'P',
        ),
        (
            "IMAP-PC+BR",
            AttackKind::ImapBr(RegularizerKind::PolicyCoverage),
            'B',
        ),
    ];

    // Stage 1: one self-play victim per game.
    let victim_cells: Vec<SweepCell<GaussianPolicy>> = MultiTaskId::ALL
        .into_iter()
        .map(|game| {
            let tags = [("game", game.name()), ("stage", "victim_train")];
            let tel = tel.clone();
            let spec = CellSpec::marl_victim(game, &budget);
            let budget = budget.clone();
            SweepCell::new(format!("victim {}", game.name()), &tags, seed, move |ctx| {
                let _t = tel.span("victim_train");
                marl_victim_supervised(&tel, game, &budget, ctx.seed, &ctx.progress)
            })
            .isolated(&spec)
        })
        .collect();
    let victim_out = run_sweep(&tel, &sweep, victim_cells, &mut report, |_, _| {});
    let victims: Vec<Option<Arc<GaussianPolicy>>> = victim_out
        .iter()
        .map(|s| s.ok().map(|p| Arc::new(p.clone())))
        .collect();

    // Stage 2: attack cells, row-major per (game, attack).
    let attack_cells: Vec<SweepCell<CellResult>> = MultiTaskId::ALL
        .into_iter()
        .enumerate()
        .flat_map(|(gi, game)| {
            let victim = victims[gi].clone();
            let dep = dep_skip_reason(&victim_out[gi]);
            let cells_cache = Arc::clone(&cells_cache);
            let budget = budget.clone();
            attacks
                .iter()
                .map(|(l, k, _)| (*l, *k))
                .collect::<Vec<_>>()
                .into_iter()
                .map(move |(label, kind)| {
                    let cell_label = format!("{} {label}", game.name());
                    let tags = [("game", game.name()), ("attack", label)];
                    match (&victim, &dep) {
                        (Some(victim), None) => {
                            let victim = Arc::clone(victim);
                            let cells = Arc::clone(&cells_cache);
                            let spec = CellSpec::marl_attack(
                                game,
                                &victim,
                                kind,
                                &budget,
                                default_xi(),
                                &cells,
                            );
                            let budget = budget.clone();
                            SweepCell::new(cell_label, &tags, seed, move |ctx| {
                                run_multi_attack_cell_cached(
                                    &cells,
                                    game,
                                    &victim,
                                    kind,
                                    &budget,
                                    ctx.seed,
                                    default_xi(),
                                    &ctx.progress,
                                )
                            })
                            .isolated(&spec)
                        }
                        (_, reason) => SweepCell::skipped(
                            cell_label,
                            &tags,
                            reason.clone().unwrap_or_else(|| "victim_missing".into()),
                        ),
                    }
                })
        })
        .collect();
    let tel_ok = tel.clone();
    let outcomes = run_sweep(&tel, &sweep, attack_cells, &mut report, |tags, result| {
        record_cell(&tel_ok, tags, result);
    });

    // Rendering.
    println!(
        "# Figure 5 — multi-agent ASR curves (budget: {})",
        budget.name
    );
    for (gi, game) in MultiTaskId::ALL.into_iter().enumerate() {
        if victims[gi].is_none() {
            continue;
        }
        println!("\n## {}", game.name());
        let mut curves = Vec::new();
        for (ai, (label, _, glyph)) in attacks.iter().enumerate() {
            let Some(r) = outcomes[gi * attacks.len() + ai].ok() else {
                println!("{label:<12} failed");
                continue;
            };
            let tags = [("game", game.name()), ("attack", *label)];
            record_curve(&tel, &tags, &r.curve);
            println!(
                "{label:<12} final evaluated ASR = {:.2}% over {} episodes",
                100.0 * r.eval.asr,
                r.eval.episodes
            );
            curves.push((*label, *glyph, r.curve.clone()));
        }

        let max_len = curves.iter().map(|(_, _, c)| c.len()).max().unwrap_or(0);
        let stride = (max_len / 10).max(1);
        print!("\n{:>10}", "steps");
        for (label, glyph, _) in &curves {
            print!("  {label:>10}({glyph})");
        }
        println!();
        for i in (0..max_len).step_by(stride) {
            let steps = curves
                .iter()
                .filter_map(|(_, _, c)| c.get(i).map(|p| p.steps))
                .max()
                .unwrap_or(0);
            print!("{steps:>10}");
            for (_, _, c) in &curves {
                match c.get(i) {
                    Some(p) => print!("  {:>13.2}", p.asr),
                    None => print!("  {:>13}", "-"),
                }
            }
            println!();
        }

        let mut canvas = Canvas::new(70, 12, (0.0, max_len.max(2) as f64 - 1.0), (0.0, 1.0));
        for (_, glyph, c) in &curves {
            let pts: Vec<(f64, f64)> = c
                .iter()
                .enumerate()
                .map(|(i, p)| (i as f64, p.asr))
                .collect();
            canvas.trace(&pts, *glyph);
        }
        println!("\ntraining ASR 1.0 .. 0.0 (top..bottom), x = attack iterations:");
        print!("{}", canvas.render());
    }
    println!("\nLegend: a = AP-MARL, P = IMAP-PC, B = IMAP-PC+BR. Higher ASR = stronger attack.");
    drop(_sweep_span);
    finish_telemetry(&tel);
    println!("{}", report.summary_line());
    std::process::exit(report.exit_code());
}
