//! The unified experiment layer: one spec-driven runner behind every
//! victim × attack grid.
//!
//! [`run_grid`] is the two-stage sweep the legacy `table1` path always ran
//! — stage 1 trains the victim zoo, stage 2 runs the attack grid row-major
//! — extracted so any `(task, victim)` pair list drives it. Labels, tags,
//! seeds, and cell specs are bit-for-bit what `table1` emits, so a spec
//! that mirrors Table 1 commits an identical ledger: matrix runs inherit
//! sharding, isolation, and resume untouched, because they compile to
//! ordinary sweep cells.
//!
//! [`run_matrix`] runs a parsed [`ExperimentSpec`] through [`run_grid`],
//! optionally follows with the falsification probe stage (one cell per
//! trained victim hunting failure episodes), and folds everything into a
//! machine-readable [`MatrixReport`] — the `report.json` of an
//! `imap bench-matrix` run.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use imap_defense::DefenseMethod;
use imap_env::TaskId;
use imap_harness::JobStatus;
use imap_rl::GaussianPolicy;
use imap_telemetry::Telemetry;

use crate::cells::CellSpec;
use crate::exec::{dep_skip_reason, run_sweep, SweepCell, SweepConfig, SweepReport};
use crate::falsify::{probe_policy, Counterexample, ProbeOutcome};
use crate::spec::ExperimentSpec;
use crate::{
    record_cell, run_attack_cell_cached, AttackKind, Budget, CellCache, CellResult, VictimCache,
};

/// Everything the two grid stages committed, in grid order.
pub struct GridOutcome {
    /// Stage-1 victims as shareable handles (`None` where training failed).
    pub victims: Vec<Option<Arc<GaussianPolicy>>>,
    /// Raw stage-1 statuses, one per `(task, victim)` pair.
    pub victim_out: Vec<JobStatus<GaussianPolicy>>,
    /// Raw stage-2 statuses, row-major: `pair_index * columns + column`.
    pub attack_out: Vec<JobStatus<CellResult>>,
}

/// Runs the victim-zoo stage then the attack grid under sweep supervision.
///
/// Stage 1 trains one victim per `(task, method)` pair; stage 2 runs every
/// `pair × column` attack cell row-major, so committed ledger order matches
/// rendered table order. Cells whose victim failed become `status=skipped`
/// rows. `report` accumulates both stages' outcomes.
#[allow(clippy::too_many_arguments)]
pub fn run_grid(
    tel: &Telemetry,
    sweep: &SweepConfig,
    budget: &Budget,
    seed: u64,
    pairs: &[(TaskId, DefenseMethod)],
    columns: &[AttackKind],
    victim_cache: &Arc<VictimCache>,
    cell_cache: &Arc<CellCache>,
    report: &mut SweepReport,
) -> GridOutcome {
    // Stage 1: the victim zoo. One supervised job per (task, method).
    let victim_cells: Vec<SweepCell<GaussianPolicy>> = pairs
        .iter()
        .map(|&(task, method)| {
            let tags = [
                ("task", task.spec().name),
                ("victim", method.name()),
                ("stage", "victim_train"),
            ];
            let tel = tel.clone();
            let victims = Arc::clone(victim_cache);
            let spec = CellSpec::victim(task, method, budget, victim_cache);
            let budget = budget.clone();
            SweepCell::new(
                format!("victim {} {}", task.spec().name, method.name()),
                &tags,
                seed,
                move |ctx| {
                    let _t = tel.span("victim_train");
                    victims.victim_supervised(&tel, task, method, &budget, ctx.seed, &ctx.progress)
                },
            )
            .isolated(&spec)
        })
        .collect();
    let victim_out = run_sweep(tel, sweep, victim_cells, report, |_, _| {});
    let victims: Vec<Option<Arc<GaussianPolicy>>> = victim_out
        .iter()
        .map(|s| s.ok().map(|p| Arc::new(p.clone())))
        .collect();

    // Stage 2: the attack grid, row-major so committed order matches the
    // rendered table.
    let attack_cells: Vec<SweepCell<CellResult>> = pairs
        .iter()
        .enumerate()
        .flat_map(|(pi, &(task, method))| {
            let victim = victims[pi].clone();
            let dep = dep_skip_reason(&victim_out[pi]);
            columns.iter().map(move |&kind| {
                let label = kind.label();
                let cell_label = format!("{} {} {}", task.spec().name, method.name(), label);
                let tags = [
                    ("task", task.spec().name),
                    ("victim", method.name()),
                    ("attack", label.as_str()),
                ];
                match (&victim, &dep) {
                    (Some(victim), None) => {
                        let tel = tel.clone();
                        let victim = Arc::clone(victim);
                        let cells = Arc::clone(cell_cache);
                        let spec =
                            CellSpec::attack(task, method, &victim, kind, budget, cell_cache);
                        let budget = budget.clone();
                        SweepCell::new(cell_label, &tags, seed, move |ctx| {
                            let _t = tel.span("attack_cell");
                            run_attack_cell_cached(
                                &cells,
                                task,
                                method,
                                &victim,
                                kind,
                                &budget,
                                ctx.seed,
                                &ctx.progress,
                            )
                        })
                        .isolated(&spec)
                    }
                    (_, reason) => SweepCell::skipped(
                        cell_label,
                        &tags,
                        reason.clone().unwrap_or_else(|| "victim_missing".into()),
                    ),
                }
            })
        })
        .collect();
    let tel_ok = tel.clone();
    let attack_out = run_sweep(tel, sweep, attack_cells, report, |tags, result| {
        record_cell(&tel_ok, tags, result);
    });

    GridOutcome {
        victims,
        victim_out,
        attack_out,
    }
}

/// One attack cell of the matrix report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixRow {
    /// Task registry name.
    pub task: String,
    /// Victim wire code ([`DefenseMethod::code`]).
    pub victim: String,
    /// Attack wire code ([`AttackKind::code`]).
    pub attack: String,
    /// `ok` / `error` / `timeout` / `skipped`.
    pub status: String,
    /// Error message or skip reason for non-`ok` cells.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub detail: Option<String>,
    /// Mean victim return under the attack.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub victim_return: Option<f64>,
    /// Std of the victim return.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub victim_return_std: Option<f64>,
    /// Attack success rate.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub asr: Option<f64>,
}

/// One probe-stage row of the matrix report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeRow {
    /// Task registry name.
    pub task: String,
    /// Victim wire code.
    pub victim: String,
    /// `ok` / `error` / `timeout` / `skipped`.
    pub status: String,
    /// Scenarios executed (0 for non-`ok` rows).
    pub scenarios: usize,
    /// Replayable failure episodes found.
    pub failures: Vec<Counterexample>,
}

/// The machine-readable result of one `bench-matrix` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixReport {
    /// Spec name (`experiment.name`).
    pub experiment: String,
    /// [`ExperimentSpec::fingerprint`] of the driving spec.
    pub fingerprint: String,
    /// Budget name (including any override suffix).
    pub budget: String,
    /// The resolved base seed.
    pub seed: u64,
    /// Attack wire codes, in grid-column order.
    pub columns: Vec<String>,
    /// Attack cells, row-major in grid order.
    pub rows: Vec<MatrixRow>,
    /// Probe-stage rows (empty when the spec has no `[probe]` table).
    pub probe: Vec<ProbeRow>,
}

fn status_detail<T>(status: &JobStatus<T>) -> Option<String> {
    match status {
        JobStatus::Ok(_) => None,
        JobStatus::Error { message, .. } => Some(message.clone()),
        JobStatus::Timeout { attempts } => Some(format!("stalled after {attempts} attempts")),
        JobStatus::Skipped { reason } => Some(reason.clone()),
    }
}

/// Runs a parsed experiment spec: the grid stages, then (when the spec has
/// a `[probe]` table) one falsification cell per trained victim. The
/// returned report is what `imap bench-matrix` writes as `report.json`.
pub fn run_matrix(
    tel: &Telemetry,
    spec: &ExperimentSpec,
    sweep: &SweepConfig,
    seed: u64,
    victim_cache: &Arc<VictimCache>,
    cell_cache: &Arc<CellCache>,
    report: &mut SweepReport,
) -> MatrixReport {
    let pairs = spec.pairs();
    let columns = &spec.attacks;
    let grid = run_grid(
        tel,
        sweep,
        &spec.budget,
        seed,
        &pairs,
        columns,
        victim_cache,
        cell_cache,
        report,
    );

    let mut rows = Vec::with_capacity(pairs.len() * columns.len());
    for (pi, &(task, method)) in pairs.iter().enumerate() {
        for (ci, kind) in columns.iter().enumerate() {
            let status = &grid.attack_out[pi * columns.len() + ci];
            let result = status.ok();
            rows.push(MatrixRow {
                task: task.spec().name.to_string(),
                victim: method.code().to_string(),
                attack: kind.code(),
                status: status.name().to_string(),
                detail: status_detail(status),
                victim_return: result.map(|r| r.eval.victim_return),
                victim_return_std: result.map(|r| r.eval.victim_return_std),
                asr: result.map(|r| r.eval.asr),
            });
        }
    }

    let probe = match &spec.probe {
        None => Vec::new(),
        Some(cfg) => {
            let probe_cells: Vec<SweepCell<ProbeOutcome>> = pairs
                .iter()
                .enumerate()
                .map(|(pi, &(task, method))| {
                    let label = format!("probe {} {}", task.spec().name, method.name());
                    let tags = [
                        ("task", task.spec().name),
                        ("victim", method.name()),
                        ("stage", "probe"),
                    ];
                    let dep = dep_skip_reason(&grid.victim_out[pi]);
                    match (&grid.victims[pi], dep) {
                        (Some(victim), None) => {
                            let victim = Arc::clone(victim);
                            let cfg = cfg.clone();
                            let spec = CellSpec::probe(task, &victim, &cfg);
                            let tel = tel.clone();
                            SweepCell::new(label, &tags, seed, move |ctx| {
                                let _t = tel.span("probe");
                                probe_policy(task, &victim, &cfg, ctx.seed, &ctx.progress)
                                    .map_err(|context| imap_nn::NnError::Numeric { context })
                            })
                            .isolated(&spec)
                        }
                        (_, reason) => SweepCell::skipped(
                            label,
                            &tags,
                            reason.unwrap_or_else(|| "victim_missing".into()),
                        ),
                    }
                })
                .collect();
            let probe_out = run_sweep(tel, sweep, probe_cells, report, |_, _| {});
            pairs
                .iter()
                .zip(&probe_out)
                .map(|(&(task, method), status)| {
                    let outcome = status.ok();
                    ProbeRow {
                        task: task.spec().name.to_string(),
                        victim: method.code().to_string(),
                        status: status.name().to_string(),
                        scenarios: outcome.map(|o| o.scenarios).unwrap_or(0),
                        failures: outcome.map(|o| o.failures.clone()).unwrap_or_default(),
                    }
                })
                .collect()
        }
    };

    MatrixReport {
        experiment: spec.name.clone(),
        fingerprint: spec.fingerprint(),
        budget: spec.budget.name.clone(),
        seed,
        columns: columns.iter().map(|k| k.code()).collect(),
        rows,
        probe,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    const TINY: &str = r#"
        [experiment]
        name = "matrix-tiny"
        seed = 11
        [grid]
        envs = ["Hopper"]
        victims = ["ppo"]
        attacks = ["no-attack", "random"]
        [budget]
        victim_iterations = 2
        victim_steps_per_iter = 128
        victim_hidden = [8]
        attack_iters = 1
        attack_steps = 128
        eval_episodes = 2
        [probe]
        scenarios = 3
        warmup = 0
        steps = 10
        fault = "nan_obs"
        fault_at = 2
    "#;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("imap-matrix-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn matrix_runs_grid_and_probe_and_reports_in_grid_order() {
        let spec = ExperimentSpec::parse(TINY).unwrap();
        let dir = scratch("report");
        let victims = Arc::new(VictimCache::open_at(dir.join("victims")));
        let cells = Arc::new(CellCache::open_at(dir.join("cells")));
        let sweep = SweepConfig {
            jobs: 2,
            status_interval: std::time::Duration::ZERO,
            ..SweepConfig::default()
        };
        let mut report = SweepReport::default();
        let tel = Telemetry::null();
        let out = run_matrix(&tel, &spec, &sweep, 11, &victims, &cells, &mut report);
        assert_eq!(out.experiment, "matrix-tiny");
        assert_eq!(out.columns, vec!["no-attack", "random"]);
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0].task, "Hopper");
        assert_eq!(out.rows[0].victim, "ppo");
        assert_eq!(out.rows[0].attack, "no-attack");
        assert_eq!(out.rows[0].status, "ok");
        assert!(out.rows[0].victim_return.is_some());
        assert_eq!(out.probe.len(), 1);
        assert_eq!(out.probe[0].status, "ok");
        assert_eq!(out.probe[0].scenarios, 3);
        assert!(
            out.probe[0]
                .failures
                .iter()
                .any(|c| c.failure == "nan_observation"),
            "planted fault must surface: {:?}",
            out.probe[0].failures
        );
        assert!(!report.failed(), "{}", report.summary_line());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Parallelism must not leak into the report: the same spec at jobs=1
    /// and jobs=4 serializes byte-identically (fresh caches both times).
    #[test]
    fn matrix_report_is_jobs_invariant() {
        let spec = ExperimentSpec::parse(TINY).unwrap();
        let render = |jobs: usize, dir: &std::path::Path| {
            let victims = Arc::new(VictimCache::open_at(dir.join("victims")));
            let cells = Arc::new(CellCache::open_at(dir.join("cells")));
            let sweep = SweepConfig {
                jobs,
                status_interval: std::time::Duration::ZERO,
                ..SweepConfig::default()
            };
            let mut report = SweepReport::default();
            let out = run_matrix(
                &Telemetry::null(),
                &spec,
                &sweep,
                11,
                &victims,
                &cells,
                &mut report,
            );
            serde_json::to_string(&out).unwrap()
        };
        let d1 = scratch("jobs1");
        let d4 = scratch("jobs4");
        assert_eq!(render(1, &d1), render(4, &d4));
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d4);
    }
}
