//! Table 1 as a library: the dense-task victim × attack grid, executed on
//! the supervised sweep pool and rendered to a string.
//!
//! The binary (`--bin table1`) is a thin wrapper; tests drive this module
//! directly with a tiny budget and isolated cache directories to prove
//! that parallel and serial sweeps produce identical output.

use std::fmt::Write as _;
use std::sync::Arc;

use imap_defense::DefenseMethod;
use imap_env::TaskId;
use imap_harness::JobStatus;
use imap_telemetry::Telemetry;

use crate::exec::{SweepConfig, SweepReport};
use crate::matrix::{run_grid, GridOutcome};
use crate::{cell, format_row, AttackKind, Budget, CellCache, VictimCache};

/// Everything a Table 1 run needs beyond the telemetry handle.
pub struct Table1Options {
    /// Compute budget for victims, attacks, and evaluation.
    pub budget: Budget,
    /// Base seed; every cell starts from it on attempt 0.
    pub seed: u64,
    /// Pool sizing and supervision policy.
    pub sweep: SweepConfig,
    /// Task rows (default: the four dense locomotion tasks).
    pub tasks: Vec<TaskId>,
    /// Victim methods per task; `None` uses the paper's rows (all six,
    /// but Ant carries only PPO/ATLA/SA/ATLA-SA).
    pub methods: Option<Vec<DefenseMethod>>,
    /// Attack columns (default: the seven Table 1 columns).
    pub columns: Vec<AttackKind>,
    /// Victim cache (shared across binaries in normal runs; tests point
    /// it at a temp dir).
    pub victims: Arc<VictimCache>,
    /// Finished-cell cache.
    pub cells: Arc<CellCache>,
}

impl Table1Options {
    /// The defaults used by the `table1` binary.
    pub fn new(budget: Budget, seed: u64, sweep: SweepConfig) -> Self {
        Table1Options {
            budget,
            seed,
            sweep,
            tasks: TaskId::DENSE.to_vec(),
            methods: None,
            columns: AttackKind::table1_columns(),
            victims: Arc::new(VictimCache::open()),
            cells: Arc::new(CellCache::open()),
        }
    }

    fn methods_for(&self, task: TaskId) -> Vec<DefenseMethod> {
        if let Some(methods) = &self.methods {
            return methods.clone();
        }
        if task == TaskId::Ant {
            vec![
                DefenseMethod::Ppo,
                DefenseMethod::Atla,
                DefenseMethod::Sa,
                DefenseMethod::AtlaSa,
            ]
        } else {
            DefenseMethod::ALL.to_vec()
        }
    }
}

/// What a non-`ok` cell renders as in the table body.
fn failure_text<T>(status: &JobStatus<T>) -> &'static str {
    match status {
        JobStatus::Ok(_) => unreachable!("only failures render placeholder text"),
        JobStatus::Error { .. } => "failed",
        JobStatus::Timeout { .. } => "timeout",
        JobStatus::Skipped { .. } => "skipped",
    }
}

/// Runs the Table 1 grid under sweep supervision and returns the rendered
/// table. Victims train first (one sweep stage), then every attack cell
/// runs as its own supervised job; cells whose victim failed become
/// `status=skipped` rows. `report` accumulates both stages' outcomes.
///
/// The grid itself is [`run_grid`] — the same two sweep stages every
/// spec-driven matrix run executes — so `table1` output and a Table 1
/// experiment spec commit identical ledgers; only the rendering below is
/// table1-specific.
pub fn run(tel: &Telemetry, opts: &Table1Options, report: &mut SweepReport) -> String {
    let budget = &opts.budget;
    let columns = &opts.columns;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 1 — dense-reward tasks (budget: {})",
        budget.name
    );
    let _ = writeln!(out);
    let mut header = vec!["Env".to_string(), "Victim".to_string()];
    header.extend(columns.iter().map(|k| k.label()));
    let _ = writeln!(out, "{}", format_row(&header));

    let pairs: Vec<(TaskId, DefenseMethod)> = opts
        .tasks
        .iter()
        .flat_map(|&task| opts.methods_for(task).into_iter().map(move |m| (task, m)))
        .collect();
    let GridOutcome {
        victims,
        attack_out: outcomes,
        ..
    } = run_grid(
        tel,
        &opts.sweep,
        budget,
        opts.seed,
        &pairs,
        columns,
        &opts.victims,
        &opts.cells,
        report,
    );

    // Rendering: consume the committed outcomes in table order.
    let mut col_sums = vec![0.0; columns.len()];
    let mut col_counts = vec![0usize; columns.len()];
    let mut wocar_rows: Vec<(TaskId, Vec<f64>)> = Vec::new();
    let mut best_imap_wins = 0usize;
    let mut rows = 0usize;
    let mut pi = 0usize;
    for &task in &opts.tasks {
        let methods = opts.methods_for(task);
        let mut task_col_sums = vec![0.0; columns.len()];
        let mut task_col_counts = vec![0usize; columns.len()];
        for &method in &methods {
            if victims[pi].is_none() {
                // The victim never materialized; its attack cells are
                // skipped rows and the table omits the row entirely.
                pi += 1;
                continue;
            }
            let mut row = vec![
                format!("{} (ε={})", task.spec().name, task.spec().eps),
                method.name().to_string(),
            ];
            let mut values = Vec::with_capacity(columns.len());
            for (ci, _) in columns.iter().enumerate() {
                let status = &outcomes[pi * columns.len() + ci];
                match status.ok() {
                    Some(r) => {
                        row.push(cell(r.eval.victim_return, r.eval.victim_return_std, true));
                        values.push(r.eval.victim_return);
                        col_sums[ci] += r.eval.victim_return;
                        col_counts[ci] += 1;
                        task_col_sums[ci] += r.eval.victim_return;
                        task_col_counts[ci] += 1;
                    }
                    None => {
                        row.push(failure_text(status).to_string());
                        values.push(f64::NAN);
                    }
                }
            }
            let _ = writeln!(out, "{}", format_row(&row));
            // Bold-equivalent bookkeeping: does the best IMAP beat SA-RL?
            // (Failed cells are NaN; `f64::min` skips them, and a row with
            // a failed SA-RL cell is left out of the claim entirely.)
            let sa_rl = values.get(2).copied().unwrap_or(f64::NAN);
            let best_imap = values
                .get(3..)
                .unwrap_or(&[])
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            if sa_rl.is_finite() && best_imap.is_finite() {
                rows += 1;
                if best_imap <= sa_rl {
                    best_imap_wins += 1;
                }
            }
            if method == DefenseMethod::Wocar {
                wocar_rows.push((task, values.clone()));
            }
            pi += 1;
        }
        let mut avg_row = vec![format!("{} avg", task.spec().name), String::new()];
        avg_row.extend(
            task_col_sums
                .iter()
                .zip(&task_col_counts)
                .map(|(s, &n)| match n {
                    0 => "failed".to_string(),
                    _ => format!("{:>6.0}", s / n as f64),
                }),
        );
        let _ = writeln!(out, "{}", format_row(&avg_row));
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "## Footer (paper §6.3.1 / §7 claims)");
    let clean_avg = col_sums[0] / col_counts[0].max(1) as f64;
    for (ci, kind) in columns.iter().enumerate().skip(2) {
        if col_counts[ci] == 0 {
            let _ = writeln!(out, "{:<10} all cells failed", kind.label());
            continue;
        }
        let avg = col_sums[ci] / col_counts[ci] as f64;
        let _ = writeln!(
            out,
            "{:<10} average across all victims: {:>7.0} ({:+.1}% vs clean)",
            kind.label(),
            avg,
            100.0 * (avg - clean_avg) / clean_avg
        );
    }
    let _ = writeln!(
        out,
        "Best-IMAP ≤ SA-RL on {best_imap_wins}/{rows} victim rows (paper: 15/22)."
    );
    for (task, values) in &wocar_rows {
        let clean = values[0];
        let best_imap = values[3..].iter().cloned().fold(f64::INFINITY, f64::min);
        if !clean.is_finite() || !best_imap.is_finite() {
            continue;
        }
        let _ = writeln!(
            out,
            "WocaR {} reduced by {:.0}% under the best IMAP (paper: 34–54%).",
            task.spec().name,
            100.0 * (clean - best_imap) / clean.max(1e-9)
        );
    }
    out
}
