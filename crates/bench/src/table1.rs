//! Table 1 as a library: the dense-task victim × attack grid, executed on
//! the supervised sweep pool and rendered to a string.
//!
//! The binary (`--bin table1`) is a thin wrapper; tests drive this module
//! directly with a tiny budget and isolated cache directories to prove
//! that parallel and serial sweeps produce identical output.

use std::fmt::Write as _;
use std::sync::Arc;

use imap_defense::DefenseMethod;
use imap_env::TaskId;
use imap_harness::JobStatus;
use imap_rl::GaussianPolicy;
use imap_telemetry::Telemetry;

use crate::cells::CellSpec;
use crate::exec::{dep_skip_reason, run_sweep, SweepCell, SweepConfig, SweepReport};
use crate::{
    cell, format_row, record_cell, run_attack_cell_cached, AttackKind, Budget, CellCache,
    CellResult, VictimCache,
};

/// Everything a Table 1 run needs beyond the telemetry handle.
pub struct Table1Options {
    /// Compute budget for victims, attacks, and evaluation.
    pub budget: Budget,
    /// Base seed; every cell starts from it on attempt 0.
    pub seed: u64,
    /// Pool sizing and supervision policy.
    pub sweep: SweepConfig,
    /// Task rows (default: the four dense locomotion tasks).
    pub tasks: Vec<TaskId>,
    /// Victim methods per task; `None` uses the paper's rows (all six,
    /// but Ant carries only PPO/ATLA/SA/ATLA-SA).
    pub methods: Option<Vec<DefenseMethod>>,
    /// Attack columns (default: the seven Table 1 columns).
    pub columns: Vec<AttackKind>,
    /// Victim cache (shared across binaries in normal runs; tests point
    /// it at a temp dir).
    pub victims: Arc<VictimCache>,
    /// Finished-cell cache.
    pub cells: Arc<CellCache>,
}

impl Table1Options {
    /// The defaults used by the `table1` binary.
    pub fn new(budget: Budget, seed: u64, sweep: SweepConfig) -> Self {
        Table1Options {
            budget,
            seed,
            sweep,
            tasks: TaskId::DENSE.to_vec(),
            methods: None,
            columns: AttackKind::table1_columns(),
            victims: Arc::new(VictimCache::open()),
            cells: Arc::new(CellCache::open()),
        }
    }

    fn methods_for(&self, task: TaskId) -> Vec<DefenseMethod> {
        if let Some(methods) = &self.methods {
            return methods.clone();
        }
        if task == TaskId::Ant {
            vec![
                DefenseMethod::Ppo,
                DefenseMethod::Atla,
                DefenseMethod::Sa,
                DefenseMethod::AtlaSa,
            ]
        } else {
            DefenseMethod::ALL.to_vec()
        }
    }
}

/// What a non-`ok` cell renders as in the table body.
fn failure_text<T>(status: &JobStatus<T>) -> &'static str {
    match status {
        JobStatus::Ok(_) => unreachable!("only failures render placeholder text"),
        JobStatus::Error { .. } => "failed",
        JobStatus::Timeout { .. } => "timeout",
        JobStatus::Skipped { .. } => "skipped",
    }
}

/// Runs the Table 1 grid under sweep supervision and returns the rendered
/// table. Victims train first (one sweep stage), then every attack cell
/// runs as its own supervised job; cells whose victim failed become
/// `status=skipped` rows. `report` accumulates both stages' outcomes.
pub fn run(tel: &Telemetry, opts: &Table1Options, report: &mut SweepReport) -> String {
    let budget = &opts.budget;
    let columns = &opts.columns;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Table 1 — dense-reward tasks (budget: {})",
        budget.name
    );
    let _ = writeln!(out);
    let mut header = vec!["Env".to_string(), "Victim".to_string()];
    header.extend(columns.iter().map(|k| k.label()));
    let _ = writeln!(out, "{}", format_row(&header));

    // Stage 1: the victim zoo. One supervised job per (task, method).
    let pairs: Vec<(TaskId, DefenseMethod)> = opts
        .tasks
        .iter()
        .flat_map(|&task| opts.methods_for(task).into_iter().map(move |m| (task, m)))
        .collect();
    let victim_cells: Vec<SweepCell<GaussianPolicy>> = pairs
        .iter()
        .map(|&(task, method)| {
            let tags = [
                ("task", task.spec().name),
                ("victim", method.name()),
                ("stage", "victim_train"),
            ];
            let tel = tel.clone();
            let victims = Arc::clone(&opts.victims);
            let spec = CellSpec::victim(task, method, budget, &opts.victims);
            let budget = budget.clone();
            SweepCell::new(
                format!("victim {} {}", task.spec().name, method.name()),
                &tags,
                opts.seed,
                move |ctx| {
                    let _t = tel.span("victim_train");
                    victims.victim_supervised(&tel, task, method, &budget, ctx.seed, &ctx.progress)
                },
            )
            .isolated(&spec)
        })
        .collect();
    let victim_out = run_sweep(tel, &opts.sweep, victim_cells, report, |_, _| {});
    let victims: Vec<Option<Arc<GaussianPolicy>>> = victim_out
        .iter()
        .map(|s| s.ok().map(|p| Arc::new(p.clone())))
        .collect();

    // Stage 2: the attack grid, row-major so committed order matches the
    // rendered table.
    let attack_cells: Vec<SweepCell<CellResult>> = pairs
        .iter()
        .enumerate()
        .flat_map(|(pi, &(task, method))| {
            let victim = victims[pi].clone();
            let dep = dep_skip_reason(&victim_out[pi]);
            columns.iter().map(move |&kind| {
                let label = kind.label();
                let cell_label = format!("{} {} {}", task.spec().name, method.name(), label);
                let tags = [
                    ("task", task.spec().name),
                    ("victim", method.name()),
                    ("attack", label.as_str()),
                ];
                match (&victim, &dep) {
                    (Some(victim), None) => {
                        let tel = tel.clone();
                        let victim = Arc::clone(victim);
                        let cells = Arc::clone(&opts.cells);
                        let spec =
                            CellSpec::attack(task, method, &victim, kind, budget, &opts.cells);
                        let budget = budget.clone();
                        SweepCell::new(cell_label, &tags, opts.seed, move |ctx| {
                            let _t = tel.span("attack_cell");
                            run_attack_cell_cached(
                                &cells,
                                task,
                                method,
                                &victim,
                                kind,
                                &budget,
                                ctx.seed,
                                &ctx.progress,
                            )
                        })
                        .isolated(&spec)
                    }
                    (_, reason) => SweepCell::skipped(
                        cell_label,
                        &tags,
                        reason.clone().unwrap_or_else(|| "victim_missing".into()),
                    ),
                }
            })
        })
        .collect();
    let tel_ok = tel.clone();
    let outcomes = run_sweep(tel, &opts.sweep, attack_cells, report, |tags, result| {
        record_cell(&tel_ok, tags, result);
    });

    // Rendering: consume the committed outcomes in table order.
    let mut col_sums = vec![0.0; columns.len()];
    let mut col_counts = vec![0usize; columns.len()];
    let mut wocar_rows: Vec<(TaskId, Vec<f64>)> = Vec::new();
    let mut best_imap_wins = 0usize;
    let mut rows = 0usize;
    let mut pi = 0usize;
    for &task in &opts.tasks {
        let methods = opts.methods_for(task);
        let mut task_col_sums = vec![0.0; columns.len()];
        let mut task_col_counts = vec![0usize; columns.len()];
        for &method in &methods {
            if victims[pi].is_none() {
                // The victim never materialized; its attack cells are
                // skipped rows and the table omits the row entirely.
                pi += 1;
                continue;
            }
            let mut row = vec![
                format!("{} (ε={})", task.spec().name, task.spec().eps),
                method.name().to_string(),
            ];
            let mut values = Vec::with_capacity(columns.len());
            for (ci, _) in columns.iter().enumerate() {
                let status = &outcomes[pi * columns.len() + ci];
                match status.ok() {
                    Some(r) => {
                        row.push(cell(r.eval.victim_return, r.eval.victim_return_std, true));
                        values.push(r.eval.victim_return);
                        col_sums[ci] += r.eval.victim_return;
                        col_counts[ci] += 1;
                        task_col_sums[ci] += r.eval.victim_return;
                        task_col_counts[ci] += 1;
                    }
                    None => {
                        row.push(failure_text(status).to_string());
                        values.push(f64::NAN);
                    }
                }
            }
            let _ = writeln!(out, "{}", format_row(&row));
            // Bold-equivalent bookkeeping: does the best IMAP beat SA-RL?
            // (Failed cells are NaN; `f64::min` skips them, and a row with
            // a failed SA-RL cell is left out of the claim entirely.)
            let sa_rl = values.get(2).copied().unwrap_or(f64::NAN);
            let best_imap = values
                .get(3..)
                .unwrap_or(&[])
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            if sa_rl.is_finite() && best_imap.is_finite() {
                rows += 1;
                if best_imap <= sa_rl {
                    best_imap_wins += 1;
                }
            }
            if method == DefenseMethod::Wocar {
                wocar_rows.push((task, values.clone()));
            }
            pi += 1;
        }
        let mut avg_row = vec![format!("{} avg", task.spec().name), String::new()];
        avg_row.extend(
            task_col_sums
                .iter()
                .zip(&task_col_counts)
                .map(|(s, &n)| match n {
                    0 => "failed".to_string(),
                    _ => format!("{:>6.0}", s / n as f64),
                }),
        );
        let _ = writeln!(out, "{}", format_row(&avg_row));
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "## Footer (paper §6.3.1 / §7 claims)");
    let clean_avg = col_sums[0] / col_counts[0].max(1) as f64;
    for (ci, kind) in columns.iter().enumerate().skip(2) {
        if col_counts[ci] == 0 {
            let _ = writeln!(out, "{:<10} all cells failed", kind.label());
            continue;
        }
        let avg = col_sums[ci] / col_counts[ci] as f64;
        let _ = writeln!(
            out,
            "{:<10} average across all victims: {:>7.0} ({:+.1}% vs clean)",
            kind.label(),
            avg,
            100.0 * (avg - clean_avg) / clean_avg
        );
    }
    let _ = writeln!(
        out,
        "Best-IMAP ≤ SA-RL on {best_imap_wins}/{rows} victim rows (paper: 15/22)."
    );
    for (task, values) in &wocar_rows {
        let clean = values[0];
        let best_imap = values[3..].iter().cloned().fold(f64::INFINITY, f64::min);
        if !clean.is_finite() || !best_imap.is_finite() {
            continue;
        }
        let _ = writeln!(
            out,
            "WocaR {} reduced by {:.0}% under the best IMAP (paper: 34–54%).",
            task.spec().name,
            100.0 * (clean - best_imap) / clean.max(1e-9)
        );
    }
    out
}
