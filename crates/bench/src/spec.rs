//! TOML experiment specs: the `env × victim × attack × budget` grid as a
//! checked-in file.
//!
//! A spec names every coordinate through the registries — tasks via
//! `imap_env::registry::TaskId`, victims via `imap_defense::DefenseId`,
//! attacks via [`AttackKind`] — so any table in the paper is reproducible
//! from one committed TOML file and `imap bench-matrix`. The parser is a
//! deliberate TOML *subset* (no external crate): comments, `[dotted.table]`
//! headers, and `key = value` lines where a value is a string, integer,
//! float, bool, or single-line array of those.
//!
//! Guarantees the tests pin down:
//!
//! - Parsing is deterministic and *order-insensitive for keys*: reordering
//!   lines, tables, whitespace, or comments yields the same
//!   [`ExperimentSpec`] and the same [`ExperimentSpec::fingerprint`].
//!   Array *element* order is meaningful (it is the grid order).
//! - Unknown keys and unknown task/victim/attack names are typed errors
//!   that name the line, suggest the nearest valid spelling, and list
//!   every valid name.

use std::fmt;

use imap_defense::DefenseMethod;
use imap_env::registry::suggest;
use imap_env::TaskId;
use imap_harness::stage_fingerprint;

use crate::falsify::ProbeConfig;
use crate::{AttackKind, Budget};

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A double-quoted string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-line array of scalars.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "bool",
            TomlValue::Array(_) => "array",
        }
    }
}

/// A typed spec failure. `Display` renders the line number (when the error
/// is positional) and, for unknown keys/names, the nearest valid spelling
/// plus the full valid list.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The text is not in the supported TOML subset.
    Toml {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A key outside the spec schema.
    UnknownKey {
        /// 1-based source line.
        line: usize,
        /// The offending dotted key.
        key: String,
        /// `unknown_name_error`-style rendered message.
        message: String,
    },
    /// A task/victim/attack name no registry recognises.
    UnknownName {
        /// 1-based source line.
        line: usize,
        /// Registry error (suggestion + valid-name list).
        message: String,
    },
    /// A known key with a value of the wrong shape.
    Invalid {
        /// 1-based source line.
        line: usize,
        /// The dotted key.
        key: String,
        /// What was expected.
        message: String,
    },
    /// A required key is absent.
    Missing {
        /// The dotted key.
        key: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Toml { line, message } => write!(f, "spec line {line}: {message}"),
            SpecError::UnknownKey { line, message, .. } => {
                write!(f, "spec line {line}: {message}")
            }
            SpecError::UnknownName { line, message } => {
                write!(f, "spec line {line}: {message}")
            }
            SpecError::Invalid { line, key, message } => {
                write!(f, "spec line {line}: key {key:?}: {message}")
            }
            SpecError::Missing { key } => write!(f, "spec is missing required key {key:?}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Every non-parameterised key the schema accepts, for the unknown-key
/// suggestion list. `grid.victims_for.<Task>` is matched by prefix.
const KNOWN_KEYS: &[&str] = &[
    "experiment.name",
    "experiment.budget",
    "experiment.seed",
    "grid.envs",
    "grid.victims",
    "grid.attacks",
    "budget.victim_iterations",
    "budget.victim_steps_per_iter",
    "budget.victim_hidden",
    "budget.attack_iters",
    "budget.attack_steps",
    "budget.eval_episodes",
    "probe.scenarios",
    "probe.threshold",
    "probe.burn",
    "probe.warmup",
    "probe.amplitude",
    "probe.steps",
    "probe.fault",
    "probe.fault_at",
];

const VICTIMS_FOR_PREFIX: &str = "grid.victims_for.";

/// Splits one line into content and comment, honouring `#` inside quoted
/// strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn valid_key_segment(seg: &str) -> bool {
    !seg.is_empty()
        && seg
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_scalar(raw: &str, line: usize) -> Result<TomlValue, SpecError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let mut out = String::new();
        let mut escaped = false;
        for c in rest.chars() {
            if escaped {
                match c {
                    '"' | '\\' => out.push(c),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    other => {
                        return Err(SpecError::Toml {
                            line,
                            message: format!("unsupported string escape \\{other}"),
                        })
                    }
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Ok(TomlValue::Str(out));
            } else {
                out.push(c);
            }
        }
        return Err(SpecError::Toml {
            line,
            message: "unterminated string".into(),
        });
    }
    match raw {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        "" => {
            return Err(SpecError::Toml {
                line,
                message: "missing value after `=`".into(),
            })
        }
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Ok(TomlValue::Int(i));
    }
    if let Ok(x) = raw.parse::<f64>() {
        return Ok(TomlValue::Float(x));
    }
    Err(SpecError::Toml {
        line,
        message: format!(
            "unparseable value {raw:?} (expected a quoted string, integer, float, or bool)"
        ),
    })
}

fn parse_value(raw: &str, line: usize) -> Result<TomlValue, SpecError> {
    let raw = raw.trim();
    let Some(inner) = raw.strip_prefix('[') else {
        return parse_scalar(raw, line);
    };
    let Some(inner) = inner.strip_suffix(']') else {
        return Err(SpecError::Toml {
            line,
            message: "unterminated array (arrays must be single-line)".into(),
        });
    };
    // Split on top-level commas, respecting quoted strings.
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => {
                return Err(SpecError::Toml {
                    line,
                    message: "nested arrays are not supported".into(),
                })
            }
            ',' if !in_str => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    items.push(&inner[start..]);
    let mut out = Vec::new();
    for item in items {
        if item.trim().is_empty() {
            continue; // tolerate a trailing comma
        }
        out.push(parse_scalar(item, line)?);
    }
    Ok(TomlValue::Array(out))
}

/// Parses the TOML subset into `(dotted key, value, line)` triples in file
/// order. Duplicate keys are errors — a silently-shadowed grid axis is
/// exactly the kind of bug a spec file exists to prevent.
pub fn parse_toml(text: &str) -> Result<Vec<(String, TomlValue, usize)>, SpecError> {
    let mut prefix = String::new();
    let mut pairs: Vec<(String, TomlValue, usize)> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = idx + 1;
        let content = strip_comment(raw_line).trim();
        if content.is_empty() {
            continue;
        }
        if let Some(rest) = content.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(SpecError::Toml {
                    line,
                    message: format!("malformed table header {content:?}"),
                });
            };
            let name = name.trim();
            if name.is_empty() || !name.split('.').all(valid_key_segment) {
                return Err(SpecError::Toml {
                    line,
                    message: format!("malformed table name {name:?}"),
                });
            }
            prefix = name.to_string();
            continue;
        }
        let Some(eq) = find_top_level_eq(content) else {
            return Err(SpecError::Toml {
                line,
                message: format!("expected `key = value` or `[table]`, got {content:?}"),
            });
        };
        let (key_raw, value_raw) = content.split_at(eq);
        let key_raw = key_raw.trim();
        if !key_raw.split('.').all(valid_key_segment) {
            return Err(SpecError::Toml {
                line,
                message: format!("malformed key {key_raw:?}"),
            });
        }
        let key = if prefix.is_empty() {
            key_raw.to_string()
        } else {
            format!("{prefix}.{key_raw}")
        };
        if pairs.iter().any(|(k, _, _)| *k == key) {
            return Err(SpecError::Toml {
                line,
                message: format!("duplicate key {key:?}"),
            });
        }
        let value = parse_value(&value_raw[1..], line)?;
        pairs.push((key, value, line));
    }
    Ok(pairs)
}

fn find_top_level_eq(content: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in content.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
        escaped = false;
    }
    None
}

/// The unified experiment description: which grid to run, under which
/// budget and seed, and (optionally) a falsification probe stage over the
/// trained victims.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (`experiment.name`; defaults to `"experiment"`).
    pub name: String,
    /// Compute budget: the named base (`experiment.budget`) with any
    /// `[budget]` knob overrides applied. Overridden budgets get a
    /// distinct `name` so cache keys never collide with the stock tiers.
    pub budget: Budget,
    /// Base seed override (`experiment.seed`); `None` defers to the
    /// runner's `--seed` / `IMAP_SEED`.
    pub seed: Option<u64>,
    /// Grid rows: tasks in declaration order (`grid.envs`).
    pub tasks: Vec<TaskId>,
    /// Victim methods per task (`grid.victims`).
    pub victims: Vec<DefenseMethod>,
    /// Per-task victim overrides (`[grid.victims_for]`), e.g. Table 1's
    /// Ant row carrying only four methods.
    pub victims_for: Vec<(TaskId, Vec<DefenseMethod>)>,
    /// Grid columns: attacks in declaration order (`grid.attacks`).
    pub attacks: Vec<AttackKind>,
    /// Optional falsification stage over every trained victim
    /// (`[probe]`).
    pub probe: Option<ProbeConfig>,
}

fn expect_str(key: &str, value: &TomlValue, line: usize) -> Result<String, SpecError> {
    match value {
        TomlValue::Str(s) => Ok(s.clone()),
        other => Err(SpecError::Invalid {
            line,
            key: key.into(),
            message: format!("expected a string, got {}", other.type_name()),
        }),
    }
}

fn expect_u64(key: &str, value: &TomlValue, line: usize) -> Result<u64, SpecError> {
    match value {
        TomlValue::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(SpecError::Invalid {
            line,
            key: key.into(),
            message: format!("expected a non-negative integer, got {other:?}"),
        }),
    }
}

fn expect_f64(key: &str, value: &TomlValue, line: usize) -> Result<f64, SpecError> {
    match value {
        TomlValue::Int(i) => Ok(*i as f64),
        TomlValue::Float(x) => Ok(*x),
        other => Err(SpecError::Invalid {
            line,
            key: key.into(),
            message: format!("expected a number, got {}", other.type_name()),
        }),
    }
}

fn expect_str_array(key: &str, value: &TomlValue, line: usize) -> Result<Vec<String>, SpecError> {
    let TomlValue::Array(items) = value else {
        return Err(SpecError::Invalid {
            line,
            key: key.into(),
            message: format!("expected an array of strings, got {}", value.type_name()),
        });
    };
    items.iter().map(|v| expect_str(key, v, line)).collect()
}

fn expect_usize_array(key: &str, value: &TomlValue, line: usize) -> Result<Vec<usize>, SpecError> {
    let TomlValue::Array(items) = value else {
        return Err(SpecError::Invalid {
            line,
            key: key.into(),
            message: format!("expected an array of integers, got {}", value.type_name()),
        });
    };
    items
        .iter()
        .map(|v| expect_u64(key, v, line).map(|n| n as usize))
        .collect()
}

fn resolve_tasks(key: &str, names: &[String], line: usize) -> Result<Vec<TaskId>, SpecError> {
    names
        .iter()
        .map(|n| {
            TaskId::resolve(n).map_err(|message| SpecError::UnknownName {
                line,
                message: format!("key {key:?}: {message}"),
            })
        })
        .collect()
}

fn resolve_victims(
    key: &str,
    names: &[String],
    line: usize,
) -> Result<Vec<DefenseMethod>, SpecError> {
    names
        .iter()
        .map(|n| {
            DefenseMethod::resolve(n).map_err(|message| SpecError::UnknownName {
                line,
                message: format!("key {key:?}: {message}"),
            })
        })
        .collect()
}

fn resolve_attacks(key: &str, names: &[String], line: usize) -> Result<Vec<AttackKind>, SpecError> {
    names
        .iter()
        .map(|n| {
            AttackKind::resolve(n).map_err(|message| SpecError::UnknownName {
                line,
                message: format!("key {key:?}: {message}"),
            })
        })
        .collect()
}

/// FNV-1a over a canonical string — used to give overridden budgets a
/// distinct cache-key-safe name.
fn fnv64(text: &str) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        acc = (acc ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    acc
}

impl ExperimentSpec {
    /// Parses a spec from TOML text. Unknown keys, unknown names, and
    /// malformed values are all typed [`SpecError`]s.
    pub fn parse(text: &str) -> Result<ExperimentSpec, SpecError> {
        let pairs = parse_toml(text)?;
        let mut name = "experiment".to_string();
        let mut budget_name: Option<String> = None;
        let mut seed = None;
        let mut tasks = None;
        let mut victims = None;
        let mut attacks = None;
        let mut victims_for: Vec<(TaskId, Vec<DefenseMethod>, usize)> = Vec::new();
        let mut budget_overrides: Vec<(String, TomlValue, usize)> = Vec::new();
        let mut probe_keys: Vec<(String, TomlValue, usize)> = Vec::new();

        for (key, value, line) in &pairs {
            let (key, line) = (key.as_str(), *line);
            match key {
                "experiment.name" => name = expect_str(key, value, line)?,
                "experiment.budget" => budget_name = Some(expect_str(key, value, line)?),
                "experiment.seed" => seed = Some(expect_u64(key, value, line)?),
                "grid.envs" => {
                    tasks = Some(resolve_tasks(
                        key,
                        &expect_str_array(key, value, line)?,
                        line,
                    )?)
                }
                "grid.victims" => {
                    victims = Some(resolve_victims(
                        key,
                        &expect_str_array(key, value, line)?,
                        line,
                    )?)
                }
                "grid.attacks" => {
                    attacks = Some(resolve_attacks(
                        key,
                        &expect_str_array(key, value, line)?,
                        line,
                    )?)
                }
                _ if key.starts_with(VICTIMS_FOR_PREFIX) => {
                    let task_name = &key[VICTIMS_FOR_PREFIX.len()..];
                    let task =
                        TaskId::resolve(task_name).map_err(|message| SpecError::UnknownName {
                            line,
                            message: format!("key {key:?}: {message}"),
                        })?;
                    let methods = resolve_victims(key, &expect_str_array(key, value, line)?, line)?;
                    victims_for.push((task, methods, line));
                }
                _ if key.starts_with("budget.") => {
                    budget_overrides.push((key.to_string(), value.clone(), line));
                }
                _ if key.starts_with("probe.") => {
                    probe_keys.push((key.to_string(), value.clone(), line));
                }
                _ => return Err(unknown_key(key, line)),
            }
        }

        let budget = build_budget(budget_name.as_deref(), &budget_overrides)?;
        let probe = build_probe(&probe_keys)?;

        let tasks = tasks.ok_or(SpecError::Missing {
            key: "grid.envs".into(),
        })?;
        let victims = victims.ok_or(SpecError::Missing {
            key: "grid.victims".into(),
        })?;
        let attacks = attacks.ok_or(SpecError::Missing {
            key: "grid.attacks".into(),
        })?;
        for field in [
            ("grid.envs", tasks.is_empty()),
            ("grid.victims", victims.is_empty()),
            ("grid.attacks", attacks.is_empty()),
        ] {
            if field.1 {
                return Err(SpecError::Invalid {
                    line: 0,
                    key: field.0.into(),
                    message: "must not be empty".into(),
                });
            }
        }
        // Overrides are keyed by task, so their declaration order is
        // irrelevant to the grid: normalize to task order for stable
        // fingerprints under table reordering.
        let mut victims_for: Vec<(TaskId, Vec<DefenseMethod>)> =
            victims_for.into_iter().map(|(t, m, _)| (t, m)).collect();
        victims_for.sort_by_key(|(t, _)| TaskId::ALL.iter().position(|x| x == t));

        Ok(ExperimentSpec {
            name,
            budget,
            seed,
            tasks,
            victims,
            victims_for,
            attacks,
            probe,
        })
    }

    /// The victim methods for one grid row: the per-task override when
    /// declared, the shared `grid.victims` axis otherwise.
    pub fn methods_for(&self, task: TaskId) -> Vec<DefenseMethod> {
        self.victims_for
            .iter()
            .find(|(t, _)| *t == task)
            .map(|(_, m)| m.clone())
            .unwrap_or_else(|| self.victims.clone())
    }

    /// Expands the grid into `(task, victim)` pairs in row order — exactly
    /// the stage-1 cell order of the matrix runner, and of the legacy
    /// `table1` path when the spec mirrors Table 1.
    pub fn pairs(&self) -> Vec<(TaskId, DefenseMethod)> {
        self.tasks
            .iter()
            .flat_map(|&task| self.methods_for(task).into_iter().map(move |m| (task, m)))
            .collect()
    }

    /// A canonical rendering of the parsed spec: every axis in grid order
    /// with registry wire codes. Two TOML files that differ only in key
    /// order, whitespace, or comments canonicalize identically.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name={};", self.name));
        out.push_str(&format!(
            "budget={}:{}x{}x{:?}v{}x{}e{};",
            self.budget.name,
            self.budget.attack_iters,
            self.budget.attack_steps,
            self.budget.victim.hidden,
            self.budget.victim.iterations,
            self.budget.victim.steps_per_iter,
            self.budget.eval_episodes,
        ));
        out.push_str(&format!("seed={:?};", self.seed));
        out.push_str("pairs=");
        for (task, method) in self.pairs() {
            out.push_str(&format!("{}+{},", task.spec().name, method.code()));
        }
        out.push_str(";attacks=");
        for a in &self.attacks {
            out.push_str(&a.code());
            out.push(',');
        }
        out.push(';');
        match &self.probe {
            None => out.push_str("probe=none;"),
            Some(p) => out.push_str(&format!(
                "probe={}b{}w{}a{}t{:?}s{:?}f{:?}@{};",
                p.scenarios,
                p.max_burn,
                p.max_warmup,
                p.amplitude,
                p.threshold,
                p.max_steps,
                p.fault,
                p.fault_at,
            )),
        }
        out
    }

    /// A 16-hex-digit fingerprint of the canonical spec, stable under key
    /// reordering and whitespace, distinct across any grid change. The
    /// matrix report carries it so resumed and sharded runs can be checked
    /// against the spec they were planned from.
    pub fn fingerprint(&self) -> String {
        let canonical = self.canonical();
        stage_fingerprint(
            u64::from(u32::MAX), // out-of-band stage: never collides with sweep stages
            [(canonical.as_str(), self.seed.unwrap_or(0), false)],
        )
    }
}

fn unknown_key(key: &str, line: usize) -> SpecError {
    let mut valid: Vec<&str> = KNOWN_KEYS.to_vec();
    valid.push("grid.victims_for.<task>");
    let suggestion = suggest(key, KNOWN_KEYS.iter().copied())
        .map(|s| format!(" (did you mean {s:?}?)"))
        .unwrap_or_default();
    SpecError::UnknownKey {
        line,
        key: key.into(),
        message: format!(
            "unknown key {key:?}{suggestion}; valid keys: {}",
            valid.join(", ")
        ),
    }
}

fn build_budget(
    base: Option<&str>,
    overrides: &[(String, TomlValue, usize)],
) -> Result<Budget, SpecError> {
    let mut budget =
        Budget::parse(base).map_err(|message| SpecError::UnknownName { line: 0, message })?;
    if overrides.is_empty() {
        return Ok(budget);
    }
    for (key, value, line) in overrides {
        let (key, line) = (key.as_str(), *line);
        match key {
            "budget.victim_iterations" => {
                budget.victim.iterations = expect_u64(key, value, line)? as usize
            }
            "budget.victim_steps_per_iter" => {
                budget.victim.steps_per_iter = expect_u64(key, value, line)? as usize
            }
            "budget.victim_hidden" => budget.victim.hidden = expect_usize_array(key, value, line)?,
            "budget.attack_iters" => budget.attack_iters = expect_u64(key, value, line)? as usize,
            "budget.attack_steps" => budget.attack_steps = expect_u64(key, value, line)? as usize,
            "budget.eval_episodes" => budget.eval_episodes = expect_u64(key, value, line)? as usize,
            _ => return Err(unknown_key(key, line)),
        }
    }
    // A custom budget must never share cache keys with the stock tier it
    // started from, so its name carries a hash of the knob values.
    let knobs = format!(
        "{}:{}:{:?}:{}:{}:{}",
        budget.victim.iterations,
        budget.victim.steps_per_iter,
        budget.victim.hidden,
        budget.attack_iters,
        budget.attack_steps,
        budget.eval_episodes,
    );
    budget.name = format!("{}-{:08x}", budget.name, fnv64(&knobs) as u32);
    Ok(budget)
}

fn build_probe(keys: &[(String, TomlValue, usize)]) -> Result<Option<ProbeConfig>, SpecError> {
    if keys.is_empty() {
        return Ok(None);
    }
    let mut cfg = ProbeConfig::default();
    for (key, value, line) in keys {
        let (key, line) = (key.as_str(), *line);
        match key {
            "probe.scenarios" => cfg.scenarios = expect_u64(key, value, line)? as usize,
            "probe.threshold" => cfg.threshold = Some(expect_f64(key, value, line)?),
            "probe.burn" => cfg.max_burn = expect_u64(key, value, line)? as u32,
            "probe.warmup" => cfg.max_warmup = expect_u64(key, value, line)? as u32,
            "probe.amplitude" => cfg.amplitude = expect_f64(key, value, line)?,
            "probe.steps" => cfg.max_steps = Some(expect_u64(key, value, line)? as usize),
            "probe.fault" => {
                let raw = expect_str(key, value, line)?;
                crate::falsify::parse_fault(&raw).map_err(|message| SpecError::UnknownName {
                    line,
                    message: format!("key {key:?}: {message}"),
                })?;
                cfg.fault = Some(raw);
            }
            "probe.fault_at" => cfg.fault_at = expect_u64(key, value, line)? as usize,
            _ => return Err(unknown_key(key, line)),
        }
    }
    Ok(Some(cfg))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TINY: &str = r#"
        # A 2x2x2 smoke grid.
        [experiment]
        name = "tiny"
        budget = "quick"
        seed = 7

        [grid]
        envs = ["Hopper", "Walker2d"]
        victims = ["ppo", "sa"]
        attacks = ["no-attack", "random"]

        [budget]
        victim_iterations = 2
        victim_steps_per_iter = 128
        victim_hidden = [8]
        attack_iters = 1
        attack_steps = 128
        eval_episodes = 2
    "#;

    #[test]
    fn tiny_spec_parses_and_expands_in_grid_order() {
        let spec = ExperimentSpec::parse(TINY).unwrap();
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.seed, Some(7));
        assert_eq!(spec.tasks, vec![TaskId::Hopper, TaskId::Walker2d]);
        assert_eq!(spec.attacks, vec![AttackKind::NoAttack, AttackKind::Random]);
        let pairs = spec.pairs();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0], (TaskId::Hopper, DefenseMethod::Ppo));
        assert_eq!(pairs[3], (TaskId::Walker2d, DefenseMethod::Sa));
        // Overridden budget gets a cache-distinct name.
        assert!(
            spec.budget.name.starts_with("quick-"),
            "{}",
            spec.budget.name
        );
        assert_eq!(spec.budget.victim.iterations, 2);
        assert_eq!(spec.budget.victim.hidden, vec![8]);
    }

    #[test]
    fn victims_for_overrides_one_row() {
        let text = r#"
            [grid]
            envs = ["Hopper", "Ant"]
            victims = ["ppo", "atla", "sa", "atla-sa", "radial", "wocar"]
            attacks = ["sa-rl"]
            [grid.victims_for]
            Ant = ["ppo", "atla", "sa", "atla-sa"]
        "#;
        let spec = ExperimentSpec::parse(text).unwrap();
        assert_eq!(spec.methods_for(TaskId::Hopper).len(), 6);
        assert_eq!(spec.methods_for(TaskId::Ant).len(), 4);
        assert_eq!(spec.pairs().len(), 10);
    }

    #[test]
    fn probe_table_round_trips_and_validates_fault() {
        let text = r#"
            [grid]
            envs = ["Hopper"]
            victims = ["ppo"]
            attacks = ["no-attack"]
            [probe]
            scenarios = 5
            threshold = 10.5
            fault = "nan_obs"
            fault_at = 2
        "#;
        let spec = ExperimentSpec::parse(text).unwrap();
        let probe = spec.probe.unwrap();
        assert_eq!(probe.scenarios, 5);
        assert_eq!(probe.threshold, Some(10.5));
        assert_eq!(probe.fault.as_deref(), Some("nan_obs"));
        assert_eq!(probe.fault_at, 2);

        let bad = text.replace("nan_obs", "nan_obz");
        let err = ExperimentSpec::parse(&bad).unwrap_err();
        assert!(
            err.to_string().contains("did you mean \"nan_obs\"?"),
            "{err}"
        );
    }

    #[test]
    fn unknown_keys_and_names_are_typed_errors_with_valid_lists() {
        let unknown_key = "[grid]\nenvs = [\"Hopper\"]\nvictims = [\"ppo\"]\nattacs = [\"sa-rl\"]";
        let err = ExperimentSpec::parse(unknown_key).unwrap_err();
        assert!(
            matches!(err, SpecError::UnknownKey { line: 4, .. }),
            "{err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("did you mean \"grid.attacks\"?"), "{msg}");
        assert!(msg.contains("valid keys:"), "{msg}");

        let unknown_task = "[grid]\nenvs = [\"Hoper\"]\nvictims = [\"ppo\"]\nattacks = [\"sa-rl\"]";
        let err = ExperimentSpec::parse(unknown_task).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("did you mean \"Hopper\"?"), "{msg}");
        assert!(msg.contains("valid tasks:"), "{msg}");

        let unknown_attack =
            "[grid]\nenvs = [\"Hopper\"]\nvictims = [\"ppo\"]\nattacks = [\"imap-pcc\"]";
        let err = ExperimentSpec::parse(unknown_attack).unwrap_err();
        assert!(err.to_string().contains("valid attacks:"), "{}", err);

        let unknown_victim =
            "[grid]\nenvs = [\"Hopper\"]\nvictims = [\"wokar\"]\nattacks = [\"sa-rl\"]";
        let err = ExperimentSpec::parse(unknown_victim).unwrap_err();
        assert!(
            err.to_string().contains("did you mean \"wocar\"?"),
            "{}",
            err
        );
    }

    #[test]
    fn malformed_toml_reports_line_numbers() {
        let err = ExperimentSpec::parse("[grid\nenvs = [\"Hopper\"]").unwrap_err();
        assert!(matches!(err, SpecError::Toml { line: 1, .. }), "{err:?}");

        let err = ExperimentSpec::parse("[grid]\nenvs = [\"Hopper\"\n").unwrap_err();
        assert!(matches!(err, SpecError::Toml { line: 2, .. }), "{err:?}");

        let err =
            ExperimentSpec::parse("[grid]\nenvs = [\"Hopper\"]\nenvs = [\"Ant\"]").unwrap_err();
        assert!(err.to_string().contains("duplicate key"), "{err}");

        let err = ExperimentSpec::parse("seed = ??").unwrap_err();
        assert!(err.to_string().contains("unparseable value"), "{err}");
    }

    #[test]
    fn missing_axes_are_typed_errors() {
        let err = ExperimentSpec::parse("[grid]\nenvs = [\"Hopper\"]").unwrap_err();
        assert!(matches!(err, SpecError::Missing { .. }), "{err:?}");
        let err =
            ExperimentSpec::parse("[grid]\nenvs = []\nvictims = [\"ppo\"]\nattacks = [\"sa-rl\"]")
                .unwrap_err();
        assert!(err.to_string().contains("must not be empty"), "{err}");
    }

    #[test]
    fn comments_and_hash_in_strings_coexist() {
        let text = "[experiment]\nname = \"a # not a comment\" # a real comment\n[grid]\nenvs = [\"Hopper\"] # rows\nvictims = [\"ppo\"]\nattacks = [\"sa-rl\"]";
        let spec = ExperimentSpec::parse(text).unwrap();
        assert_eq!(spec.name, "a # not a comment");
    }

    /// The example Table 1 spec committed under `examples/specs/` expands
    /// to exactly the legacy `table1` grid: dense tasks × six methods,
    /// with Ant carrying only the four paper methods, under the seven
    /// Table 1 columns.
    #[test]
    fn committed_table1_spec_matches_legacy_grid() {
        let text = include_str!("../examples/specs/table1.toml");
        let spec = ExperimentSpec::parse(text).unwrap();
        assert_eq!(spec.tasks, TaskId::DENSE.to_vec());
        assert_eq!(spec.attacks, AttackKind::table1_columns());
        let legacy: Vec<(TaskId, DefenseMethod)> = TaskId::DENSE
            .iter()
            .flat_map(|&task| {
                let methods = if task == TaskId::Ant {
                    vec![
                        DefenseMethod::Ppo,
                        DefenseMethod::Atla,
                        DefenseMethod::Sa,
                        DefenseMethod::AtlaSa,
                    ]
                } else {
                    DefenseMethod::ALL.to_vec()
                };
                methods.into_iter().map(move |m| (task, m))
            })
            .collect();
        assert_eq!(spec.pairs(), legacy);
        assert_eq!(
            spec.budget.name, "quick",
            "table1 spec uses the stock budget"
        );
    }

    // --- property tests -------------------------------------------------

    // Referenced only inside `proptest!`, which offline stub builds expand
    // to nothing — hence the allow.
    #[allow(dead_code)]
    fn render(sections: &[(&str, Vec<(String, String)>)], gap: &str, comment: bool) -> String {
        let mut out = String::new();
        for (header, keys) in sections {
            if comment {
                out.push_str("# section\n");
            }
            out.push_str(&format!("[{header}]{gap}\n"));
            for (k, v) in keys {
                out.push_str(&format!("{gap}{k}{gap}={gap}{v}\n"));
            }
        }
        out
    }

    #[allow(dead_code)]
    fn arb_spec_input() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<usize>, u64)> {
        (
            proptest::collection::vec(0..TaskId::ALL.len(), 1..4),
            proptest::collection::vec(0..DefenseMethod::ALL.len(), 1..4),
            proptest::collection::vec(0..AttackKind::ALL.len(), 1..4),
            0u64..1000,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Parsing is deterministic, and reordering keys within sections,
        /// reordering the [experiment]/[grid] sections themselves, and
        /// perturbing whitespace/comments never changes the parsed spec or
        /// its fingerprint.
        #[test]
        fn grid_expansion_is_deterministic_and_order_insensitive(
            (ti, vi, ai, seed) in arb_spec_input(),
            flip_sections in proptest::bool::ANY,
            flip_keys in proptest::bool::ANY,
            spaced in proptest::bool::ANY,
        ) {
            let envs = format!(
                "[{}]",
                ti.iter().map(|&i| format!("{:?}", format!("{:?}", TaskId::ALL[i]))).collect::<Vec<_>>().join(", ")
            );
            let victims = format!(
                "[{}]",
                vi.iter().map(|&i| format!("{:?}", DefenseMethod::ALL[i].code())).collect::<Vec<_>>().join(",")
            );
            let attacks = format!(
                "[{}]",
                ai.iter().map(|&i| format!("{:?}", AttackKind::ALL[i].code())).collect::<Vec<_>>().join(" , ")
            );
            let mut grid_keys = vec![
                ("envs".to_string(), envs),
                ("victims".to_string(), victims),
                ("attacks".to_string(), attacks),
            ];
            let exp_keys = vec![
                ("name".to_string(), "\"prop\"".to_string()),
                ("seed".to_string(), format!("{seed}")),
            ];
            let mut sections = vec![("experiment", exp_keys), ("grid", grid_keys.clone())];

            let baseline = render(&sections, "", false);
            if flip_keys {
                grid_keys.reverse();
                sections[1].1 = grid_keys;
            }
            if flip_sections {
                sections.reverse();
            }
            let gap = if spaced { "  " } else { " " };
            let permuted = render(&sections, gap, true);

            let a = ExperimentSpec::parse(&baseline).unwrap();
            let b = ExperimentSpec::parse(&permuted).unwrap();
            let c = ExperimentSpec::parse(&permuted).unwrap();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&b, &c);
            prop_assert_eq!(a.fingerprint(), b.fingerprint());
            prop_assert_eq!(a.pairs(), b.pairs());
        }

        /// The fingerprint separates distinct grids: permuting the task
        /// axis *content* changes it (element order is meaningful).
        #[test]
        fn fingerprint_tracks_grid_content(seed in 0u64..1000) {
            let a = ExperimentSpec::parse(&format!(
                "[experiment]\nseed = {seed}\n[grid]\nenvs = [\"Hopper\", \"Ant\"]\nvictims = [\"ppo\"]\nattacks = [\"sa-rl\"]"
            )).unwrap();
            let b = ExperimentSpec::parse(&format!(
                "[experiment]\nseed = {seed}\n[grid]\nenvs = [\"Ant\", \"Hopper\"]\nvictims = [\"ppo\"]\nattacks = [\"sa-rl\"]"
            )).unwrap();
            prop_assert_ne!(a.fingerprint(), b.fingerprint());
        }
    }
}
