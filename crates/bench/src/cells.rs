//! Serializable cell specs for process-isolated sweep cells.
//!
//! Every bench binary calls [`maybe_serve_run_cell`] as the first line of
//! `main`: when spawned with the hidden `run-cell` subcommand it becomes a
//! sacrificial cell executor — it reads one [`imap_harness::CellRequest`]
//! from stdin, decodes the opaque spec into a [`CellSpec`], runs the cell,
//! and frames the result back to the parent (see `imap_harness::proc`).
//!
//! A spec is a *flat* struct of string codes and optional scalars so it
//! survives any JSON codec: the cell kind picks the handler, and the
//! handler calls exactly the same library function the in-process closure
//! would, so isolated and in-process runs stay bitwise-identical.

use std::path::PathBuf;
use std::time::Duration;

use imap_env::{Env, EnvRng, FaultKind, FaultPlan, FaultyEnv, MultiTaskId, ResetMutation, TaskId};
use imap_harness::JobCtx;
use imap_rl::GaussianPolicy;
use imap_telemetry::Telemetry;
use rand::SeedableRng;
use serde_json::Value;

use crate::falsify::{probe_policy, replay_scenario, Counterexample, ProbeConfig};
use crate::{
    marl_victim_supervised, run_ablate_cell, run_attack_cell_cached, run_br_attack_cell,
    run_marl_br_attack_cell, run_multi_attack_cell_cached, AblateVariant, AttackKind, Budget,
    CellCache, VictimCache,
};
use imap_defense::DefenseMethod;

/// A flat, self-contained description of one sweep cell. The `kind` field
/// selects the handler; everything else is optional and only read by the
/// handlers that need it. Victim policies are embedded (`victim`) because
/// attack cells are only constructed after their victim stage committed.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CellSpec {
    /// Handler discriminator: `victim`, `marl_victim`, `attack`,
    /// `marl_attack`, `br_single`, `br_multi`, `ablate`, `fault`, or
    /// `probe`.
    pub kind: String,
    /// Single-agent task (the `TaskId` variant name, e.g. `SparseHopper`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub task: Option<String>,
    /// Multi-agent game (the `MultiTaskId` variant name).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub game: Option<String>,
    /// Victim defense method (the `DefenseMethod` variant name).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub method: Option<String>,
    /// Attack column ([`AttackKind::code`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub attack: Option<String>,
    /// Compute budget (victim + attack + eval).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub budget: Option<Budget>,
    /// The serialized victim policy for attack cells.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub victim: Option<Value>,
    /// Explicit victim-cache directory (tests; defaults to the env cache).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub victim_cache: Option<PathBuf>,
    /// Explicit cell-cache directory (tests; defaults to the env cache).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cell_cache: Option<PathBuf>,
    /// BR dual step size η (`br_single` / `br_multi`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub eta: Option<f64>,
    /// Marginal trade-off ξ (`marl_attack`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub xi: Option<f64>,
    /// Ablation mode, or fault mode for `fault` cells.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mode: Option<String>,
    /// Ablation knob value ([`AblateVariant::code`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub value: Option<f64>,
    /// `fault` cells: global step at which the fault fires.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub at_step: Option<u64>,
    /// `fault` cells: number of firings (`0` = every step from `at_step`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_fires: Option<u64>,
    /// `fault` cells: total rollout steps.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub steps: Option<u64>,
    /// `fault` cells with `mode = "slow"`: per-fire sleep in milliseconds.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sleep_ms: Option<u64>,
    /// `probe` cells: scenario count ([`ProbeConfig::scenarios`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub scenarios: Option<u64>,
    /// `probe` cells: episode-return failure threshold.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub threshold: Option<f64>,
    /// `probe` cells: max RNG draws burned before reset per mutation.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub burn: Option<u64>,
    /// `probe` cells: max scripted warm-up steps per mutation.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub warmup: Option<u64>,
    /// `probe` cells: warm-up action amplitude.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub amplitude: Option<f64>,
    /// `probe` replay cells: the stored counterexample mutation; its
    /// presence switches the handler from search to single-scenario replay.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mutation: Option<ResetMutation>,
}

impl CellSpec {
    fn bare(kind: &str) -> Self {
        CellSpec {
            kind: kind.into(),
            task: None,
            game: None,
            method: None,
            attack: None,
            budget: None,
            victim: None,
            victim_cache: None,
            cell_cache: None,
            eta: None,
            xi: None,
            mode: None,
            value: None,
            at_step: None,
            max_fires: None,
            steps: None,
            sleep_ms: None,
            scenarios: None,
            threshold: None,
            burn: None,
            warmup: None,
            amplitude: None,
            mutation: None,
        }
    }

    /// A single-agent victim-training cell.
    pub fn victim(
        task: TaskId,
        method: DefenseMethod,
        budget: &Budget,
        cache: &VictimCache,
    ) -> Self {
        CellSpec {
            task: Some(format!("{task:?}")),
            method: Some(format!("{method:?}")),
            budget: Some(budget.clone()),
            victim_cache: Some(cache.dir().to_path_buf()),
            ..CellSpec::bare("victim")
        }
    }

    /// A self-play game-victim cell.
    pub fn marl_victim(game: MultiTaskId, budget: &Budget) -> Self {
        CellSpec {
            game: Some(format!("{game:?}")),
            budget: Some(budget.clone()),
            ..CellSpec::bare("marl_victim")
        }
    }

    /// A cached single-agent attack cell against an embedded victim.
    pub fn attack(
        task: TaskId,
        method: DefenseMethod,
        victim: &GaussianPolicy,
        kind: AttackKind,
        budget: &Budget,
        cache: &CellCache,
    ) -> Self {
        CellSpec {
            task: Some(format!("{task:?}")),
            method: Some(format!("{method:?}")),
            attack: Some(kind.code()),
            budget: Some(budget.clone()),
            victim: serde_json::to_value(victim).ok(),
            cell_cache: Some(cache.dir().to_path_buf()),
            ..CellSpec::bare("attack")
        }
    }

    /// A cached multi-agent attack cell against an embedded victim.
    pub fn marl_attack(
        game: MultiTaskId,
        victim: &GaussianPolicy,
        kind: AttackKind,
        budget: &Budget,
        xi: f64,
        cache: &CellCache,
    ) -> Self {
        CellSpec {
            game: Some(format!("{game:?}")),
            attack: Some(kind.code()),
            budget: Some(budget.clone()),
            victim: serde_json::to_value(victim).ok(),
            xi: Some(xi),
            cell_cache: Some(cache.dir().to_path_buf()),
            ..CellSpec::bare("marl_attack")
        }
    }

    /// A Figure 6 single-agent IMAP-PC+BR cell with explicit η.
    pub fn br_single(task: TaskId, victim: &GaussianPolicy, eta: f64, budget: &Budget) -> Self {
        CellSpec {
            task: Some(format!("{task:?}")),
            victim: serde_json::to_value(victim).ok(),
            eta: Some(eta),
            budget: Some(budget.clone()),
            ..CellSpec::bare("br_single")
        }
    }

    /// A Figure 6 multi-agent IMAP-PC+BR cell with explicit η.
    pub fn br_multi(game: MultiTaskId, victim: &GaussianPolicy, eta: f64, budget: &Budget) -> Self {
        CellSpec {
            game: Some(format!("{game:?}")),
            victim: serde_json::to_value(victim).ok(),
            eta: Some(eta),
            budget: Some(budget.clone()),
            ..CellSpec::bare("br_multi")
        }
    }

    /// An `ablate` cell: IMAP-PC with one knob turned.
    pub fn ablate(
        task: TaskId,
        victim: &GaussianPolicy,
        variant: AblateVariant,
        budget: &Budget,
    ) -> Self {
        let (mode, value) = variant.code();
        CellSpec {
            task: Some(format!("{task:?}")),
            victim: serde_json::to_value(victim).ok(),
            mode: Some(mode.into()),
            value: Some(value),
            budget: Some(budget.clone()),
            ..CellSpec::bare("ablate")
        }
    }

    /// A cheap deterministic rollout cell with an injected fault —
    /// `mode` is `ok`, `panic`, `abort`, `hang` (cooperative), `hang_hard`
    /// (ignores cancellation; only SIGKILL ends it), `leak`, `slow`, or
    /// `partial_write` (dies mid-ledger-row; target via
    /// `IMAP_PARTIAL_WRITE_PATH`).
    /// Used by the isolation tests and the `sweepdemo` binary.
    pub fn fault(mode: &str, at_step: u64, max_fires: u64, steps: u64) -> Self {
        CellSpec {
            mode: Some(mode.into()),
            at_step: Some(at_step),
            max_fires: Some(max_fires),
            steps: Some(steps),
            ..CellSpec::bare("fault")
        }
    }

    /// Shared probe-cell skeleton: the flattened [`ProbeConfig`] plus the
    /// embedded victim; `mode`/`at_step`/`steps` carry the planted fault,
    /// its firing step, and the rollout cap.
    fn probe_base(victim: &GaussianPolicy, cfg: &ProbeConfig) -> Self {
        CellSpec {
            victim: serde_json::to_value(victim).ok(),
            scenarios: Some(cfg.scenarios as u64),
            threshold: cfg.threshold,
            burn: Some(u64::from(cfg.max_burn)),
            warmup: Some(u64::from(cfg.max_warmup)),
            amplitude: Some(cfg.amplitude),
            steps: cfg.max_steps.map(|s| s as u64),
            mode: cfg.fault.clone(),
            at_step: Some(cfg.fault_at as u64),
            ..CellSpec::bare("probe")
        }
    }

    /// A falsification-probe cell: seeded scenario search over reset-state
    /// mutations against an embedded victim (see [`crate::falsify`]).
    pub fn probe(task: TaskId, victim: &GaussianPolicy, cfg: &ProbeConfig) -> Self {
        CellSpec {
            task: Some(format!("{task:?}")),
            ..CellSpec::probe_base(victim, cfg)
        }
    }

    /// A probe *replay* cell: re-runs one counterexample's stored
    /// `(task, seed, mutation)` triple (the cell's sweep seed must be the
    /// counterexample's scenario seed) and fails if it no longer fails.
    pub fn probe_replay(victim: &GaussianPolicy, cfg: &ProbeConfig, cx: &Counterexample) -> Self {
        CellSpec {
            task: Some(cx.task.clone()),
            mutation: Some(cx.mutation),
            ..CellSpec::probe_base(victim, cfg)
        }
    }
}

/// JSON-codec round-trip decode (works under both the real `serde_json`
/// and the offline stub, which lacks `from_value`).
fn decode<T: serde::de::DeserializeOwned>(value: &Value, what: &str) -> Result<T, String> {
    let text = serde_json::to_string(value).map_err(|e| format!("re-encode {what}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("decode {what}: {e}"))
}

fn encode<T: serde::Serialize>(value: &T, what: &str) -> Result<Value, String> {
    serde_json::to_value(value).map_err(|e| format!("encode {what}: {e}"))
}

fn required<'a, T>(field: &'a Option<T>, what: &str, kind: &str) -> Result<&'a T, String> {
    field
        .as_ref()
        .ok_or_else(|| format!("cell spec kind {kind:?} is missing required field {what:?}"))
}

fn parse_task(code: &str) -> Result<TaskId, String> {
    TaskId::ALL
        .into_iter()
        .find(|t| format!("{t:?}") == code)
        .ok_or_else(|| format!("unknown task {code:?}"))
}

fn parse_game(code: &str) -> Result<MultiTaskId, String> {
    MultiTaskId::ALL
        .into_iter()
        .find(|g| format!("{g:?}") == code)
        .ok_or_else(|| format!("unknown game {code:?}"))
}

fn parse_method(code: &str) -> Result<DefenseMethod, String> {
    DefenseMethod::ALL
        .into_iter()
        .find(|m| format!("{m:?}") == code)
        .ok_or_else(|| format!("unknown defense method {code:?}"))
}

fn parse_attack(code: &str) -> Result<AttackKind, String> {
    AttackKind::from_code(code).ok_or_else(|| format!("unknown attack kind {code:?}"))
}

/// Decodes and runs one cell spec. This is the child-process entry point
/// (via [`maybe_serve_run_cell`]), but it is an ordinary function: tests
/// call it in-process to prove spec execution matches the closures.
pub fn execute(spec: &Value, ctx: &JobCtx, tel: &Telemetry) -> Result<Value, String> {
    let spec: CellSpec = decode(spec, "cell spec")?;
    let kind = spec.kind.as_str();
    match kind {
        "victim" => {
            let task = parse_task(required(&spec.task, "task", kind)?)?;
            let method = parse_method(required(&spec.method, "method", kind)?)?;
            let budget = required(&spec.budget, "budget", kind)?;
            let cache = match &spec.victim_cache {
                Some(dir) => VictimCache::open_at(dir.clone()),
                None => VictimCache::open(),
            };
            let _t = tel.span("victim_train");
            let policy = cache
                .victim_supervised(tel, task, method, budget, ctx.seed, &ctx.progress)
                .map_err(|e| e.to_string())?;
            encode(&policy, "victim policy")
        }
        "marl_victim" => {
            let game = parse_game(required(&spec.game, "game", kind)?)?;
            let budget = required(&spec.budget, "budget", kind)?;
            let _t = tel.span("victim_train");
            let policy = marl_victim_supervised(tel, game, budget, ctx.seed, &ctx.progress)
                .map_err(|e| e.to_string())?;
            encode(&policy, "victim policy")
        }
        "attack" => {
            let task = parse_task(required(&spec.task, "task", kind)?)?;
            let method = parse_method(required(&spec.method, "method", kind)?)?;
            let attack = parse_attack(required(&spec.attack, "attack", kind)?)?;
            let budget = required(&spec.budget, "budget", kind)?;
            let victim: GaussianPolicy =
                decode(required(&spec.victim, "victim", kind)?, "victim policy")?;
            let cache = match &spec.cell_cache {
                Some(dir) => CellCache::open_at(dir.clone()),
                None => CellCache::open(),
            };
            let _t = tel.span("attack_cell");
            let result = run_attack_cell_cached(
                &cache,
                task,
                method,
                &victim,
                attack,
                budget,
                ctx.seed,
                &ctx.progress,
            )
            .map_err(|e| e.to_string())?;
            encode(&result, "cell result")
        }
        "marl_attack" => {
            let game = parse_game(required(&spec.game, "game", kind)?)?;
            let attack = parse_attack(required(&spec.attack, "attack", kind)?)?;
            let budget = required(&spec.budget, "budget", kind)?;
            let xi = *required(&spec.xi, "xi", kind)?;
            let victim: GaussianPolicy =
                decode(required(&spec.victim, "victim", kind)?, "victim policy")?;
            let cache = match &spec.cell_cache {
                Some(dir) => CellCache::open_at(dir.clone()),
                None => CellCache::open(),
            };
            let _t = tel.span("attack_cell");
            let result = run_multi_attack_cell_cached(
                &cache,
                game,
                &victim,
                attack,
                budget,
                ctx.seed,
                xi,
                &ctx.progress,
            )
            .map_err(|e| e.to_string())?;
            encode(&result, "cell result")
        }
        "br_single" => {
            let task = parse_task(required(&spec.task, "task", kind)?)?;
            let budget = required(&spec.budget, "budget", kind)?;
            let eta = *required(&spec.eta, "eta", kind)?;
            let victim: GaussianPolicy =
                decode(required(&spec.victim, "victim", kind)?, "victim policy")?;
            let _t = tel.span("attack_cell");
            let result = run_br_attack_cell(task, &victim, eta, budget, ctx.seed, &ctx.progress)
                .map_err(|e| e.to_string())?;
            encode(&result, "cell result")
        }
        "br_multi" => {
            let game = parse_game(required(&spec.game, "game", kind)?)?;
            let budget = required(&spec.budget, "budget", kind)?;
            let eta = *required(&spec.eta, "eta", kind)?;
            let victim: GaussianPolicy =
                decode(required(&spec.victim, "victim", kind)?, "victim policy")?;
            let _t = tel.span("attack_cell");
            let result =
                run_marl_br_attack_cell(game, &victim, eta, budget, ctx.seed, &ctx.progress)
                    .map_err(|e| e.to_string())?;
            encode(&result, "cell result")
        }
        "ablate" => {
            let task = parse_task(required(&spec.task, "task", kind)?)?;
            let budget = required(&spec.budget, "budget", kind)?;
            let mode = required(&spec.mode, "mode", kind)?;
            let value = *required(&spec.value, "value", kind)?;
            let variant = AblateVariant::from_code(mode, value)
                .ok_or_else(|| format!("unknown ablate mode {mode:?}"))?;
            let victim: GaussianPolicy =
                decode(required(&spec.victim, "victim", kind)?, "victim policy")?;
            let _t = tel.span("attack_cell");
            let result = run_ablate_cell(task, &victim, variant, budget, ctx.seed, &ctx.progress)
                .map_err(|e| e.to_string())?;
            encode(&result, "cell result")
        }
        "fault" => {
            let checksum = run_fault_cell(&spec, ctx)?;
            encode(&checksum, "fault checksum")
        }
        "probe" => {
            let task = parse_task(required(&spec.task, "task", kind)?)?;
            let victim: GaussianPolicy =
                decode(required(&spec.victim, "victim", kind)?, "victim policy")?;
            let cfg = probe_config(&spec);
            let _t = tel.span("probe");
            match &spec.mutation {
                // A stored mutation means replay-of-one: the cell's seed
                // is the counterexample's scenario seed.
                Some(mutation) => {
                    let cx =
                        replay_scenario(task, &victim, &cfg, ctx.seed, mutation, &ctx.progress)?;
                    encode(&cx, "counterexample")
                }
                None => {
                    let out = probe_policy(task, &victim, &cfg, ctx.seed, &ctx.progress)?;
                    encode(&out, "probe outcome")
                }
            }
        }
        other => Err(format!("unknown cell spec kind {other:?}")),
    }
}

/// Rebuilds a [`ProbeConfig`] from the flat probe-cell fields; absent
/// fields fall back to the config defaults.
fn probe_config(spec: &CellSpec) -> ProbeConfig {
    let mut cfg = ProbeConfig {
        threshold: spec.threshold,
        max_steps: spec.steps.map(|s| s as usize),
        fault: spec.mode.clone(),
        ..ProbeConfig::default()
    };
    if let Some(n) = spec.scenarios {
        cfg.scenarios = n as usize;
    }
    if let Some(b) = spec.burn {
        cfg.max_burn = b as u32;
    }
    if let Some(w) = spec.warmup {
        cfg.max_warmup = w as u32;
    }
    if let Some(a) = spec.amplitude {
        cfg.amplitude = a;
    }
    if let Some(at) = spec.at_step {
        cfg.fault_at = at as usize;
    }
    cfg
}

/// Runs the deterministic fault-injection rollout described by a `fault`
/// spec and returns a checksum over the trajectory, so tests can assert
/// bitwise-identical outcomes across process boundaries and resumes.
fn run_fault_cell(spec: &CellSpec, ctx: &JobCtx) -> Result<u64, String> {
    let mode = required(&spec.mode, "mode", "fault")?.as_str();
    let at_step = spec.at_step.unwrap_or(5) as usize;
    let max_fires = spec.max_fires.unwrap_or(1) as usize;
    let steps = spec.steps.unwrap_or(40) as usize;
    let fault = match mode {
        "ok" => None,
        "panic" => Some(FaultKind::Panic),
        "abort" => Some(FaultKind::Abort),
        "hang" | "hang_hard" => Some(FaultKind::Hang),
        "leak" => Some(FaultKind::LeakMemory(64 * 1024)),
        "slow" => Some(FaultKind::SlowStep(Duration::from_millis(
            spec.sleep_ms.unwrap_or(5),
        ))),
        "partial_write" => Some(FaultKind::PartialWrite),
        other => return Err(format!("unknown fault mode {other:?}")),
    };
    let hopper = imap_env::locomotion::Hopper::new();
    let mut rng = EnvRng::seed_from_u64(ctx.seed);
    let checksum = match fault {
        Some(kind) => {
            let plan = FaultPlan {
                kind,
                at_step,
                max_fires,
            };
            let mut env = FaultyEnv::new(hopper, plan);
            // A cooperative hang watches the cell's cancel token; a hard
            // hang deliberately does not — only SIGKILL ends it.
            if mode == "hang" {
                env = env.with_cancel(ctx.cancel.clone());
            }
            // A partial-write death tears the file named by the
            // environment (the test points it at a ledger copy); only
            // meaningful under --isolate, like abort.
            if mode == "partial_write" {
                match std::env::var_os("IMAP_PARTIAL_WRITE_PATH") {
                    Some(path) => {
                        env = env.with_partial_write_target(std::path::PathBuf::from(path));
                    }
                    None => eprintln!(
                        "warning: partial_write fault has no IMAP_PARTIAL_WRITE_PATH target"
                    ),
                }
            }
            checksum_rollout(&mut env, &mut rng, steps, ctx)
        }
        None => {
            let mut env = hopper;
            checksum_rollout(&mut env, &mut rng, steps, ctx)
        }
    };
    Ok(checksum)
}

/// In-process entry for `fault` specs: what the `sweepdemo` closures call
/// directly, so the closure path and the isolated [`execute`] path run the
/// identical rollout.
pub fn run_fault_spec(spec: &CellSpec, ctx: &JobCtx) -> Result<u64, String> {
    run_fault_cell(spec, ctx)
}

/// Rolls `steps` env steps with a fixed action, beating per step, and
/// folds every observation and reward bit pattern into an FNV-style
/// checksum. SlowStep/LeakMemory faults leave the checksum unchanged.
fn checksum_rollout<E: Env>(env: &mut E, rng: &mut EnvRng, steps: usize, ctx: &JobCtx) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |acc: &mut u64, bits: u64| {
        *acc = (*acc ^ bits).wrapping_mul(0x0000_0100_0000_01b3);
    };
    env.reset(rng);
    for _ in 0..steps {
        ctx.progress.beat();
        let step = env.step(&[0.1, -0.2, 0.3], rng);
        for v in &step.obs {
            mix(&mut acc, v.to_bits());
        }
        mix(&mut acc, step.reward.to_bits());
        if step.done {
            env.reset(rng);
        }
    }
    acc
}

/// Serves the hidden `run-cell` subcommand and never returns if `argv[1]`
/// matches; a no-op otherwise. Every bench binary calls this first in
/// `main`, before any argument parsing or telemetry setup.
pub fn maybe_serve_run_cell() {
    if std::env::args().nth(1).as_deref() == Some(imap_harness::RUN_CELL_SUBCOMMAND) {
        imap_harness::serve_child(execute);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use imap_harness::{CancelToken, KillSwitch, Progress};

    fn ctx(seed: u64) -> JobCtx {
        JobCtx {
            index: 0,
            attempt: 0,
            seed,
            cancel: CancelToken::new(),
            progress: Progress::null(),
            kill: KillSwitch::new(),
        }
    }

    #[test]
    fn specs_roundtrip_through_json() {
        let budget = Budget::quick();
        let specs = vec![
            CellSpec::victim(
                TaskId::Hopper,
                DefenseMethod::Ppo,
                &budget,
                &VictimCache::open_at(std::env::temp_dir().join("imap-spec-rt")),
            ),
            CellSpec::marl_victim(MultiTaskId::YouShallNotPass, &budget),
            CellSpec::fault("panic", 5, 1, 40),
        ];
        for spec in specs {
            let value = serde_json::to_value(&spec).unwrap();
            let back: CellSpec = decode(&value, "spec").unwrap();
            assert_eq!(format!("{back:?}"), format!("{spec:?}"));
        }
    }

    #[test]
    fn fault_cell_ok_mode_is_deterministic() {
        let spec = serde_json::to_value(&CellSpec::fault("ok", 0, 0, 25)).unwrap();
        let tel = Telemetry::null();
        let a = execute(&spec, &ctx(11), &tel).unwrap();
        let b = execute(&spec, &ctx(11), &tel).unwrap();
        let c = execute(&spec, &ctx(12), &tel).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed, same checksum"
        );
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap(),
            "different seed, different checksum"
        );
    }

    #[test]
    fn fault_cell_slow_mode_matches_ok_checksum() {
        let tel = Telemetry::null();
        let ok = serde_json::to_value(&CellSpec::fault("ok", 0, 0, 20)).unwrap();
        let mut slow_spec = CellSpec::fault("slow", 3, 2, 20);
        slow_spec.sleep_ms = Some(2);
        let slow = serde_json::to_value(&slow_spec).unwrap();
        assert_eq!(
            serde_json::to_string(&execute(&ok, &ctx(5), &tel).unwrap()).unwrap(),
            serde_json::to_string(&execute(&slow, &ctx(5), &tel).unwrap()).unwrap(),
            "SlowStep must not perturb the trajectory checksum"
        );
    }

    #[test]
    fn unknown_kinds_and_modes_are_typed_errors() {
        let tel = Telemetry::null();
        let bad_kind = serde_json::to_value(&CellSpec::bare("teleport")).unwrap();
        let err = execute(&bad_kind, &ctx(1), &tel).unwrap_err();
        assert!(err.contains("unknown cell spec kind"), "{err}");

        let bad_mode = serde_json::to_value(&CellSpec::fault("melt", 1, 1, 5)).unwrap();
        let err = execute(&bad_mode, &ctx(1), &tel).unwrap_err();
        assert!(err.contains("unknown fault mode"), "{err}");

        let missing = serde_json::to_value(&CellSpec::bare("attack")).unwrap();
        let err = execute(&missing, &ctx(1), &tel).unwrap_err();
        assert!(err.contains("missing required field"), "{err}");
    }

    #[test]
    fn probe_spec_matches_direct_probe_and_replay_is_byte_identical() {
        let tel = Telemetry::null();
        let (obs, act) = TaskId::Hopper.spec().dims();
        let mut rng = EnvRng::seed_from_u64(42);
        let victim = GaussianPolicy::new(obs, act, &[8], -0.5, &mut rng).unwrap();
        let cfg = ProbeConfig {
            scenarios: 3,
            max_warmup: 0,
            max_steps: Some(12),
            fault: Some("nan_obs".into()),
            fault_at: 2,
            ..ProbeConfig::default()
        };
        let spec = serde_json::to_value(&CellSpec::probe(TaskId::Hopper, &victim, &cfg)).unwrap();
        let out = execute(&spec, &ctx(21), &tel).unwrap();
        let direct = probe_policy(TaskId::Hopper, &victim, &cfg, 21, &Progress::null()).unwrap();
        assert_eq!(
            serde_json::to_string(&out).unwrap(),
            serde_json::to_string(&serde_json::to_value(&direct).unwrap()).unwrap(),
            "spec execution must match the direct library call"
        );
        assert!(!direct.failures.is_empty(), "planted fault must be found");
        for cx in &direct.failures {
            let rspec = serde_json::to_value(&CellSpec::probe_replay(&victim, &cfg, cx)).unwrap();
            let replayed = execute(&rspec, &ctx(cx.seed), &tel).unwrap();
            assert_eq!(
                serde_json::to_string(&replayed).unwrap(),
                serde_json::to_string(&serde_json::to_value(cx).unwrap()).unwrap(),
                "replay spec must reproduce the counterexample byte-for-byte"
            );
        }
    }

    #[test]
    fn code_parsers_resolve_every_registry_entry() {
        for t in TaskId::ALL {
            assert_eq!(parse_task(&format!("{t:?}")).unwrap(), t);
        }
        for g in MultiTaskId::ALL {
            assert_eq!(parse_game(&format!("{g:?}")).unwrap(), g);
        }
        for m in DefenseMethod::ALL {
            assert_eq!(parse_method(&format!("{m:?}")).unwrap(), m);
        }
        assert!(parse_task("Atlantis").is_err());
        assert!(parse_attack("imap-??").is_err());
    }
}
