//! # imap-defense
//!
//! The defense side of the paper's evaluation (§7): victim policies trained
//! with the robustness methods IMAP is shown to evade.
//!
//! Two families (paper taxonomy):
//!
//! - **Robust regularizer** — [`penalty::SaPenalty`] (SA, Zhang et al.
//!   \[69\]), [`penalty::RadialPenalty`] (RADIAL, Oikarinen et al. \[43\]), and
//!   [`wocar::WocarTrainer`] (WocaR, Liang et al. \[33\], which additionally
//!   estimates worst-case values via interval bound propagation).
//! - **Adversarial training** — [`atla::AtlaTrainer`] (ATLA / ATLA-SA,
//!   Zhang et al. \[68\]): alternating victim and RL-adversary training.
//!
//! [`zoo`] assembles the victim matrix of Table 1 (one victim per
//! task × method) and [`marl`] trains the multi-agent victims
//! (runner / kicker) used by Figure 5.

pub mod atla;
pub mod marl;
pub mod penalty;
pub mod wocar;
pub mod zoo;

pub use atla::{AtlaConfig, AtlaTrainer};
pub use marl::{
    train_game_victim, train_game_victim_selfplay, OpponentPool, ScriptedOpponent, VictimGameEnv,
};
pub use penalty::{RadialPenalty, SaPenalty};
pub use wocar::{WocarConfig, WocarRunner, WocarTrainer};
pub use zoo::{
    train_victim, train_victim_resilient, train_victim_stored, train_victim_with, victim_store_key,
    DefenseMethod, VictimBudget,
};

/// Registry-facing alias: the defense counterpart of
/// [`imap_core::AttackId`](../imap_core/registry/index.html) and
/// `imap_env::registry::TaskId`. `DefenseId::by_name` / `resolve` look
/// defenses up by wire code or table label.
pub use zoo::DefenseMethod as DefenseId;
