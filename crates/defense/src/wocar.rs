//! WocaR: worst-case-aware robust PPO (Liang et al. \[33\]).
//!
//! WocaR trains, alongside the ordinary critic, a *worst-case value*
//! network `V_w` whose targets pessimize the reward by the policy's sound
//! worst-case output deviation under the l∞ budget (computed here with
//! interval bound propagation from `imap-nn`, substituting the original's
//! convex relaxation). The policy update then maximizes a blend of the
//! ordinary and the worst-case advantages, plus a smoothness regularizer —
//! "efficient adversarial training without attacking".

use std::path::{Path, PathBuf};

use imap_env::{Env, EnvRng};
use imap_nn::{Adam, NnError};
use imap_rl::checkpoint::{
    self, checkpoint_path, latest_checkpoint, CheckpointError, Checkpointable, StateDict,
};
use imap_rl::gae::normalize_advantages;
use imap_rl::train::{advantages_for, mean_episode_length, samples_from, IterationStats};
use imap_rl::{
    collect_stage, heartbeat, run_trainer, update_policy, update_value, GaussianPolicy, PpoRunner,
    TrainConfig, Trainer, ValueFn,
};
use rand::SeedableRng;

use crate::penalty::SaPenalty;

/// WocaR hyperparameters.
#[derive(Debug, Clone)]
pub struct WocarConfig {
    /// The base PPO loop configuration.
    pub train: TrainConfig,
    /// l∞ budget the defense certifies against.
    pub eps: f64,
    /// Pessimism coefficient κ: worst-case reward is `r − κ·dev(s)`.
    pub kappa: f64,
    /// Blend weight `w` of the worst-case advantage.
    pub weight: f64,
    /// Smoothness-penalty coefficient.
    pub smooth_coef: f64,
}

impl WocarConfig {
    /// Defaults tuned for the reduced-order tasks.
    pub fn new(train: TrainConfig, eps: f64) -> Self {
        WocarConfig {
            train,
            eps,
            kappa: 0.5,
            weight: 0.3,
            smooth_coef: 0.3,
        }
    }
}

/// The WocaR trainer.
pub struct WocarTrainer {
    cfg: WocarConfig,
}

impl WocarTrainer {
    /// Creates a trainer.
    pub fn new(cfg: WocarConfig) -> Self {
        WocarTrainer { cfg }
    }

    /// Trains a WocaR victim on `env`, returning the policy.
    ///
    /// The loop runs a [`WocarRunner`] on [`imap_rl::run_trainer`] and so
    /// honors [`TrainConfig::resilience`] exactly like `train_ppo`: resume
    /// from the latest checkpoint, periodic checkpoint writes, and
    /// divergence-guard rollback.
    pub fn train(&self, env: &mut dyn Env) -> Result<GaussianPolicy, NnError> {
        let cfg = &self.cfg.train;
        let mut runner = WocarRunner::new(env, self.cfg.clone())?;
        run_trainer(
            &mut runner,
            env,
            cfg.iterations,
            &cfg.resilience,
            &cfg.telemetry,
        )?;
        Ok(runner.policy)
    }
}

/// [`WocarRunner`] implements [`Trainer`] directly: its `"wocar"` telemetry
/// row is recorded inside [`WocarRunner::iterate`] (even for iterations the
/// guard later rolls back, preserving the historical row stream), so the
/// commit hook stays the default no-op.
impl Trainer for WocarRunner {
    fn iterate_once(&mut self, env: &mut dyn Env) -> Result<IterationStats, NnError> {
        self.iterate(env)
    }

    fn guard_params(&self) -> Vec<Vec<f64>> {
        vec![
            self.policy.params(),
            self.value.mlp.params(),
            self.value_w.mlp.params(),
        ]
    }

    fn iterations_done(&self) -> usize {
        self.iteration
    }
}

/// A resumable WocaR loop: the policy, both critics (ordinary and
/// worst-case), their optimizers, and the smoothness penalty's RNG stream
/// are all owned here so the full trainer state round-trips through a
/// checkpoint.
pub struct WocarRunner {
    cfg: WocarConfig,
    /// The policy being hardened.
    pub policy: GaussianPolicy,
    /// The ordinary critic.
    pub value: ValueFn,
    /// The worst-case critic `V_w`.
    pub value_w: ValueFn,
    popt: Adam,
    vopt: Adam,
    wopt: Adam,
    smooth: SaPenalty,
    rng: EnvRng,
    total_steps: usize,
    iteration: usize,
}

impl WocarRunner {
    /// Creates a runner with fresh networks sized for `env`.
    pub fn new(env: &dyn Env, cfg: WocarConfig) -> Result<Self, NnError> {
        let train = &cfg.train;
        let mut rng = EnvRng::seed_from_u64(train.seed);
        let policy = GaussianPolicy::new(
            env.obs_dim(),
            env.action_dim(),
            &train.hidden,
            train.log_std_init,
            &mut rng,
        )?;
        let value = ValueFn::new(env.obs_dim(), &train.hidden, &mut rng)?;
        let value_w = ValueFn::new(env.obs_dim(), &train.hidden, &mut rng)?;
        let popt = Adam::new(policy.param_count(), train.ppo.lr_policy);
        let vopt = Adam::new(value.mlp.param_count(), train.ppo.lr_value);
        let wopt = Adam::new(value_w.mlp.param_count(), train.ppo.lr_value);
        let smooth = SaPenalty::new(cfg.eps, cfg.smooth_coef, train.seed ^ 0x5151);
        Ok(WocarRunner {
            cfg,
            policy,
            value,
            value_w,
            popt,
            vopt,
            wopt,
            smooth,
            rng,
            total_steps: 0,
            iteration: 0,
        })
    }

    /// Number of completed [`WocarRunner::iterate`] calls.
    pub fn iterations_done(&self) -> usize {
        self.iteration
    }

    /// Runs one WocaR sample/update iteration on `env`.
    pub fn iterate(&mut self, env: &mut dyn Env) -> Result<IterationStats, NnError> {
        let cfg = &self.cfg.train;
        let tel = cfg.telemetry.clone();
        let progress = cfg.resilience.progress.clone();
        heartbeat(&progress)?;
        let buffer = {
            let _t = tel.span("collect_rollout");
            collect_stage(
                &cfg.sampling,
                env,
                &mut self.policy,
                cfg.steps_per_iter,
                true,
                &mut self.rng,
                &progress,
                &tel,
            )?
        };
        self.total_steps += buffer.len();
        heartbeat(&progress)?;
        let rewards: Vec<f64> = buffer.steps.iter().map(|s| s.reward).collect();
        // Sound per-state worst-case output deviation via IBP; the raw
        // ε ball is expressed per-dimension in normalized coordinates.
        let devs: Vec<f64> = {
            let _t = tel.span("ibp_worst_case");
            let radii: Vec<f64> = crate::penalty::normalized_radii(&self.policy, self.cfg.eps);
            buffer
                .steps
                .iter()
                .map(|s| imap_nn::ibp::output_deviation_bound_radii(&self.policy.mlp, &s.z, &radii))
                .collect::<Result<_, _>>()?
        };
        let worst_rewards: Vec<f64> = rewards
            .iter()
            .zip(devs.iter())
            .map(|(r, d)| r - self.cfg.kappa * d)
            .collect();

        let (adv, returns, adv_w, returns_w) = {
            let _t = tel.span("advantages");
            let (adv, returns) =
                advantages_for(&buffer, &rewards, &self.value, cfg.gamma, cfg.lambda)?;
            let (adv_w, returns_w) = advantages_for(
                &buffer,
                &worst_rewards,
                &self.value_w,
                cfg.gamma,
                cfg.lambda,
            )?;
            (adv, returns, adv_w, returns_w)
        };
        let mut combined: Vec<f64> = adv
            .iter()
            .zip(adv_w.iter())
            .map(|(a, w)| (1.0 - self.cfg.weight) * a + self.cfg.weight * w)
            .collect();
        normalize_advantages(&mut combined);
        let samples = samples_from(&buffer, &combined);

        let pstats = {
            let _t = tel.span("update_policy");
            update_policy(
                &mut self.policy,
                &samples,
                &cfg.ppo,
                &mut self.popt,
                Some(&mut self.smooth),
                &mut self.rng,
            )?
        };
        heartbeat(&progress)?;
        {
            let _t = tel.span("update_value");
            update_value(
                &mut self.value,
                &buffer.observations(),
                &returns,
                &cfg.ppo,
                &mut self.vopt,
                &mut self.rng,
            )?;
            update_value(
                &mut self.value_w,
                &buffer.observations(),
                &returns_w,
                &cfg.ppo,
                &mut self.wopt,
                &mut self.rng,
            )?;
        }

        let mean_dev = devs.iter().sum::<f64>() / devs.len().max(1) as f64;
        tel.record_full(
            "wocar",
            self.iteration as u64,
            &[
                ("mean_return", buffer.mean_episode_return()),
                ("mean_worst_case_dev", mean_dev),
            ],
            &[("total_steps", self.total_steps as u64)],
            &[],
        );
        let stats = IterationStats {
            iteration: self.iteration,
            total_steps: self.total_steps,
            mean_return: buffer.mean_episode_return(),
            mean_length: mean_episode_length(&buffer),
            approx_kl: pstats.approx_kl,
            entropy: pstats.entropy,
        };
        self.iteration += 1;
        Ok(stats)
    }

    /// Writes a checkpoint named after the current iteration count into
    /// `dir` (created if missing), returning its path.
    pub fn save_checkpoint(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        let path = checkpoint_path(dir, self.iteration);
        self.save_checkpoint_at(&path)?;
        Ok(path)
    }

    /// Restores the highest-iteration checkpoint in `dir`, if any. Leaves
    /// the runner untouched when the directory is absent or empty.
    pub fn resume_latest(&mut self, dir: &Path) -> Result<Option<PathBuf>, CheckpointError> {
        match latest_checkpoint(dir)? {
            Some(path) => {
                self.resume_from(&path)?;
                Ok(Some(path))
            }
            None => Ok(None),
        }
    }
}

impl Checkpointable for WocarRunner {
    fn checkpoint_kind(&self) -> &'static str {
        "wocar-trainer"
    }

    fn state_dict(&self) -> StateDict {
        let mut d = StateDict::new();
        d.put_u64("arch.obs_dim", self.policy.obs_dim() as u64);
        d.put_u64("arch.action_dim", self.policy.action_dim() as u64);
        checkpoint::put_policy(&mut d, "policy", &self.policy);
        d.put_vec("value.params", self.value.mlp.params());
        d.put_vec("value_w.params", self.value_w.mlp.params());
        checkpoint::put_adam(&mut d, "popt", &self.popt);
        checkpoint::put_adam(&mut d, "vopt", &self.vopt);
        checkpoint::put_adam(&mut d, "wopt", &self.wopt);
        d.put_u64("smooth.rng.state", self.smooth.rng_state());
        d.put_u64("rng.state", self.rng.state());
        d.put_u64("counter.total_steps", self.total_steps as u64);
        d.put_u64("counter.iteration", self.iteration as u64);
        d
    }

    fn load_state_dict(&mut self, d: &StateDict) -> Result<(), CheckpointError> {
        let obs_dim = d.get_u64("arch.obs_dim")? as usize;
        let action_dim = d.get_u64("arch.action_dim")? as usize;
        if obs_dim != self.policy.obs_dim() || action_dim != self.policy.action_dim() {
            return Err(CheckpointError::Restore(format!(
                "checkpoint is for a {obs_dim}-obs/{action_dim}-action policy, runner has {}/{}",
                self.policy.obs_dim(),
                self.policy.action_dim()
            )));
        }
        checkpoint::load_policy_into(&mut self.policy, d, "policy")?;
        self.value
            .mlp
            .set_params(d.get_vec("value.params")?)
            .map_err(CheckpointError::from)?;
        self.value_w
            .mlp
            .set_params(d.get_vec("value_w.params")?)
            .map_err(CheckpointError::from)?;
        checkpoint::load_adam_into(&mut self.popt, d, "popt")?;
        checkpoint::load_adam_into(&mut self.vopt, d, "vopt")?;
        checkpoint::load_adam_into(&mut self.wopt, d, "wopt")?;
        self.smooth.set_rng_state(d.get_u64("smooth.rng.state")?);
        self.rng = EnvRng::from_state(d.get_u64("rng.state")?);
        self.total_steps = d.get_u64("counter.total_steps")? as usize;
        self.iteration = d.get_u64("counter.iteration")? as usize;
        Ok(())
    }

    fn scale_lr(&mut self, factor: f64) {
        self.popt.lr *= factor;
        self.vopt.lr *= factor;
        self.wopt.lr *= factor;
    }
}

/// Convenience: train a vanilla-PPO victim with the same loop shape, used
/// by tests comparing defenses against the undefended baseline.
pub fn train_vanilla(env: &mut dyn Env, train: TrainConfig) -> Result<GaussianPolicy, NnError> {
    let mut runner = PpoRunner::new(env, train.clone())?;
    for _ in 0..train.iterations {
        runner.iterate(env, None, None)?;
    }
    Ok(runner.policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imap_env::locomotion::Hopper;
    use imap_nn::ibp::output_deviation_bound;
    use imap_rl::PpoConfig;

    fn quick(seed: u64, iterations: usize) -> TrainConfig {
        TrainConfig {
            iterations,
            steps_per_iter: 1024,
            hidden: vec![16],
            seed,
            ppo: PpoConfig {
                epochs: 6,
                ..PpoConfig::default()
            },
            ..TrainConfig::default()
        }
    }

    fn temp_ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("imap-wocar-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn bits(params: &[f64]) -> Vec<u64> {
        params.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn wocar_checkpoint_resume_is_bitwise_identical() {
        use imap_rl::ResilienceConfig;
        let base = TrainConfig {
            iterations: 4,
            steps_per_iter: 256,
            hidden: vec![8],
            seed: 11,
            ..TrainConfig::default()
        };
        let full = WocarTrainer::new(WocarConfig::new(base.clone(), 0.075))
            .train(&mut Hopper::new())
            .unwrap();

        let dir = temp_ckpt_dir("resume");
        let interrupted = TrainConfig {
            iterations: 2,
            resilience: ResilienceConfig {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every: 1,
                ..ResilienceConfig::default()
            },
            ..base.clone()
        };
        WocarTrainer::new(WocarConfig::new(interrupted, 0.075))
            .train(&mut Hopper::new())
            .unwrap();
        let resumed_cfg = TrainConfig {
            resilience: ResilienceConfig {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every: 1,
                resume: true,
                ..ResilienceConfig::default()
            },
            ..base
        };
        let resumed = WocarTrainer::new(WocarConfig::new(resumed_cfg, 0.075))
            .train(&mut Hopper::new())
            .unwrap();
        assert_eq!(
            bits(&full.params()),
            bits(&resumed.params()),
            "resumed WocaR run must match the uninterrupted one bitwise"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wocar_trains_a_working_victim() {
        let mut env = Hopper::new();
        let cfg = WocarConfig::new(quick(1, 25), 0.075);
        let policy = WocarTrainer::new(cfg).train(&mut env).unwrap();
        // The WocaR victim should still be able to hop (non-trivial return).
        let mut rng = imap_env::EnvRng::seed_from_u64(9);
        let r = imap_rl::evaluate(
            &mut env,
            &policy,
            &imap_rl::EvalConfig {
                episodes: 10,
                deterministic: true,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            r.mean_return > 50.0,
            "WocaR victim should retain competence: {}",
            r.mean_return
        );
    }

    #[test]
    fn wocar_victim_is_smoother_than_vanilla() {
        // The defining property: the defended policy's worst-case output
        // deviation (IBP) is smaller than the undefended one's.
        let cfg = WocarConfig::new(quick(2, 10), 0.075);
        let wocar = WocarTrainer::new(cfg).train(&mut Hopper::new()).unwrap();
        let vanilla = train_vanilla(&mut Hopper::new(), quick(2, 10)).unwrap();
        let probe: Vec<Vec<f64>> = (0..32)
            .map(|i| {
                vec![
                    (i as f64 * 0.3).sin(),
                    0.0,
                    (i as f64 * 0.17).cos() * 0.2,
                    0.0,
                    0.5,
                ]
            })
            .collect();
        let mean_dev = |p: &GaussianPolicy| -> f64 {
            probe
                .iter()
                .map(|z| output_deviation_bound(&p.mlp, z, 0.075).unwrap())
                .sum::<f64>()
                / probe.len() as f64
        };
        let dw = mean_dev(&wocar);
        let dv = mean_dev(&vanilla);
        assert!(
            dw < dv,
            "WocaR should certify tighter worst-case deviation: {dw} vs vanilla {dv}"
        );
    }
}
