//! WocaR: worst-case-aware robust PPO (Liang et al. \[33\]).
//!
//! WocaR trains, alongside the ordinary critic, a *worst-case value*
//! network `V_w` whose targets pessimize the reward by the policy's sound
//! worst-case output deviation under the l∞ budget (computed here with
//! interval bound propagation from `imap-nn`, substituting the original's
//! convex relaxation). The policy update then maximizes a blend of the
//! ordinary and the worst-case advantages, plus a smoothness regularizer —
//! "efficient adversarial training without attacking".

use imap_env::Env;
use imap_nn::{Adam, NnError};
use imap_rl::gae::normalize_advantages;
use imap_rl::train::{advantages_for, samples_from};
use imap_rl::{
    collect_rollout, update_policy, update_value, GaussianPolicy, PpoRunner, TrainConfig, ValueFn,
};
use rand::SeedableRng;

use crate::penalty::SaPenalty;

/// WocaR hyperparameters.
#[derive(Debug, Clone)]
pub struct WocarConfig {
    /// The base PPO loop configuration.
    pub train: TrainConfig,
    /// l∞ budget the defense certifies against.
    pub eps: f64,
    /// Pessimism coefficient κ: worst-case reward is `r − κ·dev(s)`.
    pub kappa: f64,
    /// Blend weight `w` of the worst-case advantage.
    pub weight: f64,
    /// Smoothness-penalty coefficient.
    pub smooth_coef: f64,
}

impl WocarConfig {
    /// Defaults tuned for the reduced-order tasks.
    pub fn new(train: TrainConfig, eps: f64) -> Self {
        WocarConfig {
            train,
            eps,
            kappa: 0.5,
            weight: 0.3,
            smooth_coef: 0.3,
        }
    }
}

/// The WocaR trainer.
pub struct WocarTrainer {
    cfg: WocarConfig,
}

impl WocarTrainer {
    /// Creates a trainer.
    pub fn new(cfg: WocarConfig) -> Self {
        WocarTrainer { cfg }
    }

    /// Trains a WocaR victim on `env`, returning the policy.
    pub fn train(&self, env: &mut dyn Env) -> Result<GaussianPolicy, NnError> {
        let cfg = &self.cfg.train;
        let mut rng = imap_env::EnvRng::seed_from_u64(cfg.seed);
        let mut policy = GaussianPolicy::new(
            env.obs_dim(),
            env.action_dim(),
            &cfg.hidden,
            cfg.log_std_init,
            &mut rng,
        )?;
        let mut value = ValueFn::new(env.obs_dim(), &cfg.hidden, &mut rng)?;
        let mut value_w = ValueFn::new(env.obs_dim(), &cfg.hidden, &mut rng)?;
        let mut popt = Adam::new(policy.param_count(), cfg.ppo.lr_policy);
        let mut vopt = Adam::new(value.mlp.param_count(), cfg.ppo.lr_value);
        let mut wopt = Adam::new(value_w.mlp.param_count(), cfg.ppo.lr_value);
        let mut smooth = SaPenalty::new(self.cfg.eps, self.cfg.smooth_coef, cfg.seed ^ 0x5151);

        let tel = cfg.telemetry.clone();
        let mut total_steps = 0usize;
        for iteration in 0..cfg.iterations {
            let buffer = {
                let _t = tel.span("collect_rollout");
                collect_rollout(env, &mut policy, cfg.steps_per_iter, true, &mut rng)?
            };
            total_steps += buffer.len();
            let rewards: Vec<f64> = buffer.steps.iter().map(|s| s.reward).collect();
            // Sound per-state worst-case output deviation via IBP; the raw
            // ε ball is expressed per-dimension in normalized coordinates.
            let devs: Vec<f64> = {
                let _t = tel.span("ibp_worst_case");
                let radii: Vec<f64> = crate::penalty::normalized_radii(&policy, self.cfg.eps);
                buffer
                    .steps
                    .iter()
                    .map(|s| imap_nn::ibp::output_deviation_bound_radii(&policy.mlp, &s.z, &radii))
                    .collect::<Result<_, _>>()?
            };
            let worst_rewards: Vec<f64> = rewards
                .iter()
                .zip(devs.iter())
                .map(|(r, d)| r - self.cfg.kappa * d)
                .collect();

            let (adv, returns, adv_w, returns_w) = {
                let _t = tel.span("advantages");
                let (adv, returns) =
                    advantages_for(&buffer, &rewards, &value, cfg.gamma, cfg.lambda)?;
                let (adv_w, returns_w) =
                    advantages_for(&buffer, &worst_rewards, &value_w, cfg.gamma, cfg.lambda)?;
                (adv, returns, adv_w, returns_w)
            };
            let mut combined: Vec<f64> = adv
                .iter()
                .zip(adv_w.iter())
                .map(|(a, w)| (1.0 - self.cfg.weight) * a + self.cfg.weight * w)
                .collect();
            normalize_advantages(&mut combined);
            let samples = samples_from(&buffer, &combined);

            {
                let _t = tel.span("update_policy");
                update_policy(
                    &mut policy,
                    &samples,
                    &cfg.ppo,
                    &mut popt,
                    Some(&mut smooth),
                    &mut rng,
                )?;
            }
            {
                let _t = tel.span("update_value");
                update_value(
                    &mut value,
                    &buffer.observations(),
                    &returns,
                    &cfg.ppo,
                    &mut vopt,
                    &mut rng,
                )?;
                update_value(
                    &mut value_w,
                    &buffer.observations(),
                    &returns_w,
                    &cfg.ppo,
                    &mut wopt,
                    &mut rng,
                )?;
            }

            let mean_dev = devs.iter().sum::<f64>() / devs.len().max(1) as f64;
            tel.record_full(
                "wocar",
                iteration as u64,
                &[
                    ("mean_return", buffer.mean_episode_return()),
                    ("mean_worst_case_dev", mean_dev),
                ],
                &[("total_steps", total_steps as u64)],
                &[],
            );
        }
        Ok(policy)
    }
}

/// Convenience: train a vanilla-PPO victim with the same loop shape, used
/// by tests comparing defenses against the undefended baseline.
pub fn train_vanilla(env: &mut dyn Env, train: TrainConfig) -> Result<GaussianPolicy, NnError> {
    let mut runner = PpoRunner::new(env, train.clone())?;
    for _ in 0..train.iterations {
        runner.iterate(env, None, None)?;
    }
    Ok(runner.policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imap_env::locomotion::Hopper;
    use imap_nn::ibp::output_deviation_bound;
    use imap_rl::PpoConfig;

    fn quick(seed: u64, iterations: usize) -> TrainConfig {
        TrainConfig {
            iterations,
            steps_per_iter: 1024,
            hidden: vec![16],
            seed,
            ppo: PpoConfig {
                epochs: 6,
                ..PpoConfig::default()
            },
            ..TrainConfig::default()
        }
    }

    #[test]
    fn wocar_trains_a_working_victim() {
        let mut env = Hopper::new();
        let cfg = WocarConfig::new(quick(1, 25), 0.075);
        let policy = WocarTrainer::new(cfg).train(&mut env).unwrap();
        // The WocaR victim should still be able to hop (non-trivial return).
        let mut rng = imap_env::EnvRng::seed_from_u64(9);
        let r = imap_rl::evaluate(
            &mut env,
            &policy,
            &imap_rl::EvalConfig {
                episodes: 10,
                deterministic: true,
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            r.mean_return > 50.0,
            "WocaR victim should retain competence: {}",
            r.mean_return
        );
    }

    #[test]
    fn wocar_victim_is_smoother_than_vanilla() {
        // The defining property: the defended policy's worst-case output
        // deviation (IBP) is smaller than the undefended one's.
        let cfg = WocarConfig::new(quick(2, 10), 0.075);
        let wocar = WocarTrainer::new(cfg).train(&mut Hopper::new()).unwrap();
        let vanilla = train_vanilla(&mut Hopper::new(), quick(2, 10)).unwrap();
        let probe: Vec<Vec<f64>> = (0..32)
            .map(|i| {
                vec![
                    (i as f64 * 0.3).sin(),
                    0.0,
                    (i as f64 * 0.17).cos() * 0.2,
                    0.0,
                    0.5,
                ]
            })
            .collect();
        let mean_dev = |p: &GaussianPolicy| -> f64 {
            probe
                .iter()
                .map(|z| output_deviation_bound(&p.mlp, z, 0.075).unwrap())
                .sum::<f64>()
                / probe.len() as f64
        };
        let dw = mean_dev(&wocar);
        let dv = mean_dev(&vanilla);
        assert!(
            dw < dv,
            "WocaR should certify tighter worst-case deviation: {dw} vs vanilla {dv}"
        );
    }
}
