//! Multi-agent victim training.
//!
//! The paper's game victims were "trained via self-playing against random
//! old versions of their opponents" (§6.1). We substitute a *population of
//! scripted opponents* with randomized behaviour modes drawn per episode —
//! the same training-distribution property that matters for the attack
//! (the victim is competent against in-distribution opponents but has
//! never seen the off-distribution states an adversarial policy steers it
//! into).

use imap_env::{Env, EnvRng, MultiAgentEnv, Step};
use imap_nn::NnError;
use imap_rl::{train_ppo, GaussianPolicy, TrainConfig};
use rand::Rng;

/// A scripted opponent: picks a behaviour mode per episode and maps its
/// observation to an action.
pub struct ScriptedOpponent {
    /// Number of behaviour modes.
    pub modes: usize,
    act: fn(mode: usize, obs: &[f64], rng: &mut EnvRng) -> Vec<f64>,
    current_mode: usize,
}

impl ScriptedOpponent {
    /// A blocker population for YouShallNotPass: still wall / y-tracker /
    /// drifting tracker / full-speed charger. The charger teaches the victim
    /// to brace and dodge through contact, which is what the paper's
    /// self-play victims know how to do.
    pub fn blocker_population() -> Self {
        fn act(mode: usize, obs: &[f64], rng: &mut EnvRng) -> Vec<f64> {
            // Adversary obs layout: own (x y vx vy bal fallen) + other
            // (relx rely vx vy bal fallen).
            let rel_x = obs[6];
            let rel_y = obs[7];
            match mode {
                0 => vec![0.0, 0.0, 1.0],                            // braced wall
                1 => vec![0.0, (2.5 * rel_y).clamp(-1.0, 1.0), 0.8], // tracker
                2 => vec![
                    -(0.3 + 0.2 * rng.gen::<f64>()), // drift toward runner
                    (1.5 * rel_y).clamp(-1.0, 1.0),
                    0.4,
                ],
                _ => vec![
                    // Charger: run straight at the runner, braced.
                    (2.0 * rel_x).clamp(-1.0, 1.0),
                    (2.0 * rel_y).clamp(-1.0, 1.0),
                    0.9,
                ],
            }
        }
        ScriptedOpponent {
            modes: 4,
            act,
            current_mode: 0,
        }
    }

    /// A goalie population for KickAndDefend: center-holder / ball-tracker /
    /// wanderer / corner campers. The campers teach the kicker to aim away
    /// from wherever the goalie stands — without that skill a pre-committing
    /// learned goalie beats it trivially.
    pub fn goalie_population() -> Self {
        fn act(mode: usize, obs: &[f64], rng: &mut EnvRng) -> Vec<f64> {
            let own_y = obs[1];
            let ball_rel_y = obs[5];
            match mode {
                0 => vec![0.0, (-2.0 * own_y).clamp(-1.0, 1.0)], // hold center
                1 => vec![0.0, (3.0 * ball_rel_y).clamp(-1.0, 1.0)], // track ball
                2 => vec![0.0, rng.gen_range(-1.0..1.0)],        // wander
                3 => vec![0.0, (3.0 * (0.9 - own_y)).clamp(-1.0, 1.0)], // camp +y corner
                _ => vec![0.0, (3.0 * (-0.9 - own_y)).clamp(-1.0, 1.0)], // camp −y corner
            }
        }
        ScriptedOpponent {
            modes: 5,
            act,
            current_mode: 0,
        }
    }

    fn resample_mode(&mut self, rng: &mut EnvRng) {
        self.current_mode = rng.gen_range(0..self.modes);
    }

    fn action(&self, obs: &[f64], rng: &mut EnvRng) -> Vec<f64> {
        (self.act)(self.current_mode, obs, rng)
    }
}

/// An opponent population: scripted behaviour modes plus frozen snapshots
/// of previously *learned* opponents ("random old versions", §6.1). One
/// member is drawn per episode.
pub struct OpponentPool {
    scripted: ScriptedOpponent,
    learned: Vec<GaussianPolicy>,
    /// `Some(i)`: this episode uses learned snapshot `i`; `None`: scripted.
    active_learned: Option<usize>,
}

impl OpponentPool {
    /// A pool with scripted members only.
    pub fn scripted_only(scripted: ScriptedOpponent) -> Self {
        OpponentPool {
            scripted,
            learned: Vec::new(),
            active_learned: None,
        }
    }

    /// Adds a frozen learned opponent snapshot.
    pub fn push_learned(&mut self, policy: GaussianPolicy) {
        self.learned.push(policy);
    }

    /// Number of learned snapshots in the pool.
    pub fn learned_count(&self) -> usize {
        self.learned.len()
    }

    fn resample(&mut self, rng: &mut EnvRng) {
        // Half the episodes face a learned snapshot once any exist.
        if !self.learned.is_empty() && rng.gen_bool(0.5) {
            self.active_learned = Some(rng.gen_range(0..self.learned.len()));
        } else {
            self.active_learned = None;
            self.scripted.resample_mode(rng);
        }
    }

    fn action(&self, obs: &[f64], rng: &mut EnvRng) -> Vec<f64> {
        match self.active_learned {
            Some(i) => self.learned[i]
                .act_deterministic(obs)
                .expect("opponent dims match game"),
            None => self.scripted.action(obs, rng),
        }
    }
}

/// A single-agent view of a game for the *victim*, with an opponent
/// population on the other side.
pub struct VictimGameEnv {
    game: Box<dyn MultiAgentEnv>,
    opponent: OpponentPool,
    adversary_obs: Vec<f64>,
}

impl VictimGameEnv {
    /// Wraps `game` with a scripted opponent population.
    pub fn new(game: Box<dyn MultiAgentEnv>, opponent: ScriptedOpponent) -> Self {
        Self::with_pool(game, OpponentPool::scripted_only(opponent))
    }

    /// Wraps `game` with a full opponent pool.
    pub fn with_pool(game: Box<dyn MultiAgentEnv>, opponent: OpponentPool) -> Self {
        VictimGameEnv {
            game,
            opponent,
            adversary_obs: Vec::new(),
        }
    }
}

impl Env for VictimGameEnv {
    fn obs_dim(&self) -> usize {
        self.game.victim_obs_dim()
    }

    fn action_dim(&self) -> usize {
        self.game.victim_action_dim()
    }

    fn max_steps(&self) -> usize {
        self.game.max_steps()
    }

    fn reset(&mut self, rng: &mut EnvRng) -> Vec<f64> {
        let (vobs, aobs) = self.game.reset(rng);
        self.adversary_obs = aobs;
        self.opponent.resample(rng);
        vobs
    }

    fn step(&mut self, action: &[f64], rng: &mut EnvRng) -> Step {
        let opp_action = self.opponent.action(&self.adversary_obs, rng);
        let ms = self.game.step(action, &opp_action, rng);
        self.adversary_obs = ms.adversary_obs;
        let won = ms.victim_won.unwrap_or(false);
        Step {
            obs: ms.victim_obs,
            reward: ms.victim_reward,
            done: ms.done,
            unhealthy: false,
            progress: false,
            success: won,
        }
    }

    fn state_summary(&self) -> Vec<f64> {
        let mut s = self.game.victim_state();
        s.extend(self.game.adversary_state());
        s
    }
}

/// Trains a game victim against the scripted opponent population only.
pub fn train_game_victim(
    game: Box<dyn MultiAgentEnv>,
    opponent: ScriptedOpponent,
    cfg: &TrainConfig,
) -> Result<GaussianPolicy, NnError> {
    let mut env = VictimGameEnv::new(game, opponent);
    let (policy, _) = train_ppo(&mut env, cfg, None, None)?;
    Ok(policy)
}

/// Self-play victim training, matching the paper's provenance: the victim
/// first learns against the scripted population, then alternately (a) a
/// fresh opponent is trained against the frozen victim with PPO on the
/// reduced MDP and frozen into the pool as an "old version", and (b) the
/// victim resumes training against the enlarged pool.
///
/// `make_game` builds fresh copies of the game. `rounds` alternations of
/// `opponent_iters` opponent PPO iterations and `victim_iters_per_round`
/// victim iterations follow `initial_victim_iters` of scripted-only warmup
/// (all at `cfg.steps_per_iter` steps each).
#[allow(clippy::too_many_arguments)]
pub fn train_game_victim_selfplay(
    make_game: &mut dyn FnMut() -> Box<dyn MultiAgentEnv>,
    scripted: fn() -> ScriptedOpponent,
    cfg: &TrainConfig,
    initial_victim_iters: usize,
    rounds: usize,
    opponent_iters: usize,
    victim_iters_per_round: usize,
) -> Result<GaussianPolicy, NnError> {
    let tel = cfg.telemetry.clone();
    let mut pool = OpponentPool::scripted_only(scripted());
    let probe_env = VictimGameEnv::new(make_game(), scripted());
    let mut runner = imap_rl::PpoRunner::new(&probe_env, cfg.clone())?;

    let mut warmup_return = 0.0;
    {
        let _t = tel.span("victim_round");
        let mut env = VictimGameEnv::with_pool(make_game(), pool);
        for _ in 0..initial_victim_iters {
            let stats = runner.iterate(&mut env, None, None)?;
            warmup_return = stats.mean_return;
        }
        pool = env.opponent;
    }
    tel.record_full(
        "selfplay",
        0,
        &[("victim_mean_return", warmup_return)],
        &[
            ("total_steps", runner.total_steps() as u64),
            ("pool_learned", pool.learned_count() as u64),
        ],
        &[("stage", "warmup")],
    );

    for round in 0..rounds {
        // (a) Train an opponent "old version" against the frozen victim.
        {
            let _t = tel.span("opponent_round");
            let opp_cfg = TrainConfig {
                iterations: opponent_iters,
                seed: cfg.seed ^ (0xbb00 + round as u64),
                ..cfg.clone()
            };
            let outcome = imap_core::attacks::ap_marl(make_game(), runner.policy.clone(), opp_cfg)?;
            pool.push_learned(outcome.policy);
        }
        // (b) Resume victim training against the enlarged pool.
        let mut round_return = 0.0;
        {
            let _t = tel.span("victim_round");
            let mut env = VictimGameEnv::with_pool(make_game(), pool);
            for _ in 0..victim_iters_per_round {
                let stats = runner.iterate(&mut env, None, None)?;
                round_return = stats.mean_return;
            }
            pool = env.opponent;
        }
        tel.record_full(
            "selfplay",
            (round + 1) as u64,
            &[("victim_mean_return", round_return)],
            &[
                ("total_steps", runner.total_steps() as u64),
                ("pool_learned", pool.learned_count() as u64),
            ],
            &[("stage", "round")],
        );
    }
    Ok(runner.policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imap_env::multiagent::{KickAndDefend, YouShallNotPass};
    use imap_rl::PpoConfig;
    use rand::SeedableRng;

    fn quick(seed: u64, iterations: usize) -> TrainConfig {
        TrainConfig {
            iterations,
            steps_per_iter: 1024,
            hidden: vec![16, 16],
            seed,
            ppo: PpoConfig {
                epochs: 5,
                ..PpoConfig::default()
            },
            ..TrainConfig::default()
        }
    }

    #[test]
    fn victim_game_env_dims() {
        let env = VictimGameEnv::new(
            Box::new(YouShallNotPass::new()),
            ScriptedOpponent::blocker_population(),
        );
        assert_eq!(env.obs_dim(), 12);
        assert_eq!(env.action_dim(), 3);
    }

    #[test]
    fn runner_learns_to_cross() {
        let policy = train_game_victim(
            Box::new(YouShallNotPass::new()),
            ScriptedOpponent::blocker_population(),
            &quick(11, 25),
        )
        .unwrap();
        // Evaluate against the same population.
        let mut env = VictimGameEnv::new(
            Box::new(YouShallNotPass::new()),
            ScriptedOpponent::blocker_population(),
        );
        let mut rng = EnvRng::seed_from_u64(5);
        let r = imap_rl::evaluate(
            &mut env,
            &policy,
            &imap_rl::EvalConfig {
                episodes: 20,
                deterministic: true,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            r.success_rate > 0.4,
            "trained runner should beat scripted blockers often: {}",
            r.success_rate
        );
    }

    #[test]
    fn opponent_pool_mixes_learned_and_scripted() {
        let mut pool = OpponentPool::scripted_only(ScriptedOpponent::blocker_population());
        assert_eq!(pool.learned_count(), 0);
        let learned =
            GaussianPolicy::new(12, 3, &[8], -0.5, &mut imap_env::EnvRng::seed_from_u64(44))
                .unwrap();
        pool.push_learned(learned);
        assert_eq!(pool.learned_count(), 1);
        // Over many resamples, both scripted and learned members are drawn.
        let mut rng = EnvRng::seed_from_u64(7);
        let mut used_learned = 0;
        let mut used_scripted = 0;
        for _ in 0..100 {
            pool.resample(&mut rng);
            if pool.active_learned.is_some() {
                used_learned += 1;
            } else {
                used_scripted += 1;
            }
        }
        assert!(used_learned > 20, "learned snapshots drawn: {used_learned}");
        assert!(used_scripted > 20, "scripted modes drawn: {used_scripted}");
    }

    #[test]
    fn selfplay_trains_end_to_end() {
        let mut make = || Box::new(YouShallNotPass::with_max_steps(60)) as Box<dyn MultiAgentEnv>;
        let p = train_game_victim_selfplay(
            &mut make,
            ScriptedOpponent::blocker_population,
            &quick(50, 0),
            2,
            1,
            1,
            2,
        )
        .unwrap();
        assert_eq!(p.obs_dim(), 12);
        assert_eq!(p.action_dim(), 3);
    }

    #[test]
    fn mode_resampled_per_episode() {
        let mut opp = ScriptedOpponent::blocker_population();
        let mut rng = EnvRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            opp.resample_mode(&mut rng);
            seen.insert(opp.current_mode);
        }
        assert_eq!(seen.len(), opp.modes, "all modes should appear");
    }

    #[test]
    fn goalie_population_defends_sometimes() {
        // An untrained kicker against the goalie population never scores
        // (it can't even reach the ball reliably) -> success_rate ~ 0.
        let policy =
            GaussianPolicy::new(12, 4, &[8], -0.5, &mut imap_env::EnvRng::seed_from_u64(3))
                .unwrap();
        let mut env = VictimGameEnv::new(
            Box::new(KickAndDefend::with_max_steps(80)),
            ScriptedOpponent::goalie_population(),
        );
        let mut rng = EnvRng::seed_from_u64(6);
        let r = imap_rl::evaluate(
            &mut env,
            &policy,
            &imap_rl::EvalConfig {
                episodes: 10,
                deterministic: true,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(r.success_rate < 0.5);
    }
}
