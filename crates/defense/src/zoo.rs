//! The victim zoo: one trained victim per (task, defense method), the
//! victim matrix of Table 1 and the victims of Tables 2–3.

use imap_core::store::{DiskStore, StoreKey};
use imap_env::{build_task, Env, TaskId};
use imap_nn::NnError;
use imap_rl::{train_ppo, GaussianPolicy, PpoConfig, ResilienceConfig, SampleOptions, TrainConfig};
use imap_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

use crate::atla::{AtlaConfig, AtlaTrainer};
use crate::penalty::{RadialPenalty, SaPenalty};
use crate::wocar::{WocarConfig, WocarTrainer};

/// The victim training methods of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefenseMethod {
    /// Vanilla PPO (the "PPO (va.)" rows).
    Ppo,
    /// Adversarial training with a learned adversary.
    Atla,
    /// SA smooth-policy regularizer.
    Sa,
    /// ATLA + SA regularizer.
    AtlaSa,
    /// RADIAL adversarial loss.
    Radial,
    /// WocaR worst-case-aware training.
    Wocar,
}

impl DefenseMethod {
    /// The victims of Table 1, in row order (Ant omits RADIAL and WocaR in
    /// the paper; the harness handles that).
    pub const ALL: [DefenseMethod; 6] = [
        DefenseMethod::Ppo,
        DefenseMethod::Atla,
        DefenseMethod::Sa,
        DefenseMethod::AtlaSa,
        DefenseMethod::Radial,
        DefenseMethod::Wocar,
    ];

    /// The paper-facing row label.
    pub fn name(self) -> &'static str {
        match self {
            DefenseMethod::Ppo => "PPO (va.)",
            DefenseMethod::Atla => "ATLA",
            DefenseMethod::Sa => "SA",
            DefenseMethod::AtlaSa => "ATLA-SA",
            DefenseMethod::Radial => "RADIAL",
            DefenseMethod::Wocar => "WocaR",
        }
    }

    /// A stable wire code for specs and CLIs (`ppo`, `atla-sa`, …).
    /// [`DefenseMethod::by_name`] inverts it.
    pub fn code(self) -> &'static str {
        match self {
            DefenseMethod::Ppo => "ppo",
            DefenseMethod::Atla => "atla",
            DefenseMethod::Sa => "sa",
            DefenseMethod::AtlaSa => "atla-sa",
            DefenseMethod::Radial => "radial",
            DefenseMethod::Wocar => "wocar",
        }
    }

    /// Looks a method up by name, case-insensitively, accepting the wire
    /// code (`atla-sa`), the table label (`ATLA-SA`), and the historical
    /// CLI aliases `vanilla` (for `ppo`) and `atlasa`. The single
    /// name→defense construction path for specs and CLIs.
    pub fn by_name(name: &str) -> Option<DefenseMethod> {
        match name.to_ascii_lowercase().as_str() {
            "vanilla" => return Some(DefenseMethod::Ppo),
            "atlasa" => return Some(DefenseMethod::AtlaSa),
            _ => {}
        }
        DefenseMethod::ALL
            .into_iter()
            .find(|m| m.code().eq_ignore_ascii_case(name) || m.name().eq_ignore_ascii_case(name))
    }

    /// [`DefenseMethod::by_name`] with a typed error: the message suggests
    /// the nearest valid code and lists every registered method.
    pub fn resolve(name: &str) -> Result<DefenseMethod, String> {
        DefenseMethod::by_name(name).ok_or_else(|| {
            let valid: Vec<&str> = DefenseMethod::ALL.iter().map(|m| m.code()).collect();
            imap_env::registry::unknown_name_error("defense", name, &valid)
        })
    }
}

/// How much compute to spend on each victim.
///
/// Serializable so bench cell specs can ship a whole budget to a
/// process-isolated cell executor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VictimBudget {
    /// PPO iterations for the base/victim loop.
    pub iterations: usize,
    /// Steps per iteration.
    pub steps_per_iter: usize,
    /// ATLA alternation rounds.
    pub atla_rounds: usize,
    /// Adversary iterations per ATLA round.
    pub atla_adversary_iters: usize,
    /// Hidden sizes.
    pub hidden: Vec<usize>,
    /// *Requested* rollout actor threads per sampling stage. `1` keeps the
    /// serial byte-exact legacy path; `>1` samples through the data-parallel
    /// actor pool for Ppo/Sa/Radial/WocaR victims, with the thread count
    /// clamped against the shared nested-parallelism budget at training time
    /// (`imap_harness::granted_actors`, which accounts for concurrently
    /// running sweep jobs). The clamp only sizes the pool — sampling is
    /// bitwise-identical at any actor count, so output never depends on the
    /// host. ATLA variants always sample serially: their inner loops
    /// alternate between wrapper MDPs that a task-level factory cannot
    /// rebuild.
    pub actors: usize,
}

impl VictimBudget {
    /// A quick budget: victims become competent in seconds (CI / smoke).
    pub fn quick() -> Self {
        VictimBudget {
            iterations: 60,
            steps_per_iter: 2048,
            atla_rounds: 2,
            atla_adversary_iters: 5,
            hidden: vec![32, 32],
            actors: 1,
        }
    }

    /// The full budget used by the experiment tables.
    pub fn full() -> Self {
        VictimBudget {
            iterations: 120,
            steps_per_iter: 2048,
            atla_rounds: 3,
            atla_adversary_iters: 10,
            hidden: vec![32, 32],
            actors: 1,
        }
    }

    fn train_config(&self, seed: u64) -> TrainConfig {
        TrainConfig {
            iterations: self.iterations,
            steps_per_iter: self.steps_per_iter,
            hidden: self.hidden.clone(),
            seed,
            ppo: PpoConfig::default(),
            ..TrainConfig::default()
        }
    }
}

/// Trains a victim for `task` with `method`.
///
/// The returned policy's normalizer is frozen (deployed victim).
pub fn train_victim(
    task: TaskId,
    method: DefenseMethod,
    budget: &VictimBudget,
    seed: u64,
) -> Result<GaussianPolicy, NnError> {
    train_victim_with(&Telemetry::null(), task, method, budget, seed)
}

/// [`train_victim`] with telemetry: the victim's own training loop records
/// through `tel` (phase depends on the method), the whole call runs under a
/// `train_victim` span, and one `victim`-phase summary row is emitted with
/// task/method tags and the retry count.
pub fn train_victim_with(
    tel: &Telemetry,
    task: TaskId,
    method: DefenseMethod,
    budget: &VictimBudget,
    seed: u64,
) -> Result<GaussianPolicy, NnError> {
    train_victim_resilient(
        tel,
        task,
        method,
        budget,
        seed,
        &ResilienceConfig::default(),
    )
}

/// [`train_victim_with`] plus checkpoint/resume and divergence-guard
/// configuration, threaded into whichever trainer `method` selects. Each
/// competence-retry attempt checkpoints into its own `attempt-N`
/// subdirectory so a resumed run never mixes state across attempts.
pub fn train_victim_resilient(
    tel: &Telemetry,
    task: TaskId,
    method: DefenseMethod,
    budget: &VictimBudget,
    seed: u64,
    resilience: &ResilienceConfig,
) -> Result<GaussianPolicy, NnError> {
    let _t = tel.span("train_victim");
    let scoped = |attempt: u64| -> ResilienceConfig {
        ResilienceConfig {
            checkpoint_dir: resilience
                .checkpoint_dir
                .as_ref()
                .map(|d| d.join(format!("attempt-{attempt}"))),
            ..resilience.clone()
        }
    };
    // PPO on the harder sparse tasks is seed-sensitive (exploration can
    // stall in a local optimum); deployed victims must actually solve their
    // task, so retry with derived seeds until competent — the analogue of
    // the paper selecting working pre-trained checkpoints.
    let mut attempts = 1u64;
    let mut policy = train_victim_once(tel, task, method, budget, seed, scoped(0))?;
    if task.is_sparse() {
        for attempt in 1..4u64 {
            if victim_is_competent(task, &policy)? {
                break;
            }
            attempts += 1;
            policy = train_victim_once(
                tel,
                task,
                method,
                budget,
                seed ^ (attempt * 7919),
                scoped(attempt),
            )?;
        }
    }
    tel.record_full(
        "victim",
        0,
        &[],
        &[("attempts", attempts)],
        &[("task", task.spec().name), ("method", method.name())],
    );
    Ok(policy)
}

/// The content address of a trained victim in a [`CheckpointStore`]: the
/// canonical config string covers everything that determines the trained
/// bytes. Actor-mode sampling is bitwise-identical at any actor count but
/// legitimately differs from the serial path, so the key carries the
/// *mode* (not the count): victims stay shareable across actor counts
/// without ever serving serial-trained bytes to an actors run.
/// `budget_name` is the caller's named budget (e.g. `quick`,
/// `quick-<fnv>` for overridden budgets) — distinct budgets never collide.
pub fn victim_store_key(
    task: TaskId,
    method: DefenseMethod,
    budget: &VictimBudget,
    budget_name: &str,
    seed: u64,
) -> StoreKey {
    let mode = if budget.actors > 1 { "_actors" } else { "" };
    StoreKey::new(
        "victim",
        &format!("{task:?}_{method:?}_{budget_name}{mode}_{seed}"),
    )
}

/// [`train_victim_resilient`] through a content-addressed
/// [`DiskStore`]: a published victim under [`victim_store_key`] is
/// deserialized and returned (a store *hit* — nothing trains); otherwise
/// training runs single-flight across processes and the result is
/// published atomically for every later requester. Waiting on another
/// requester's in-flight train beats `resilience.progress`, so sweep
/// supervision sees a live cell, not a stall.
#[allow(clippy::too_many_arguments)]
pub fn train_victim_stored(
    tel: &Telemetry,
    store: &DiskStore,
    task: TaskId,
    method: DefenseMethod,
    budget: &VictimBudget,
    budget_name: &str,
    seed: u64,
    resilience: &ResilienceConfig,
) -> Result<GaussianPolicy, NnError> {
    let key = victim_store_key(task, method, budget, budget_name, seed);
    let progress = resilience.progress.clone();
    let (bytes, _outcome) = store.get_or_compute(
        &key,
        STORE_WAIT,
        || progress.beat(),
        || {
            let p = train_victim_resilient(tel, task, method, budget, seed, resilience)?;
            serde_json::to_vec(&p).map_err(|e| NnError::Numeric {
                context: format!("serialize victim for store: {e}"),
            })
        },
    )?;
    serde_json::from_slice(&bytes).map_err(|e| NnError::Numeric {
        context: format!("deserialize stored victim {}: {e}", key.file_name()),
    })
}

/// How long a requester waits on another requester's in-flight victim
/// train before stealing the lock. Full-budget victims train in minutes;
/// ten is comfortably past any healthy train and short enough that a dead
/// lock holder doesn't wedge a sweep (the cell's own stall watchdog never
/// fires while waiting, because the wait loop beats).
const STORE_WAIT: std::time::Duration = std::time::Duration::from_secs(600);

/// Quick competence check for sparse victims: majority success over 10
/// deterministic episodes, stepped in lockstep lanes through one batched
/// forward pass per step.
fn victim_is_competent(task: TaskId, policy: &GaussianPolicy) -> Result<bool, NnError> {
    let mut make = || build_task(task) as Box<dyn Env>;
    let r = imap_rl::evaluate_batched(
        &mut make,
        policy,
        &imap_rl::EvalConfig {
            episodes: 10,
            deterministic: true,
            ..Default::default()
        },
        0xC0,
    )?;
    Ok(r.success_rate > 0.5)
}

fn train_victim_once(
    tel: &Telemetry,
    task: TaskId,
    method: DefenseMethod,
    budget: &VictimBudget,
    seed: u64,
    resilience: ResilienceConfig,
) -> Result<GaussianPolicy, NnError> {
    let eps = task.spec().eps;
    let mut cfg = budget.train_config(seed);
    cfg.telemetry = tel.clone();
    cfg.resilience = resilience;
    if budget.actors > 1 {
        cfg.sampling = SampleOptions {
            // Thread-count clamp only: the actor *mode* follows the request,
            // so a request of 4 granted 1 still samples through one actor
            // (same bytes as 4), never silently flipping to the serial path.
            actors: imap_rl::granted_actors(budget.actors),
            env_factory: Some(task.factory()),
            ..SampleOptions::default()
        };
    }
    let mut policy = match method {
        DefenseMethod::Ppo => {
            let mut env = build_task(task);
            let (p, _) = train_ppo(env.as_mut(), &cfg, None, None)?;
            p
        }
        DefenseMethod::Sa => {
            let mut env = build_task(task);
            let mut pen = SaPenalty::new(eps, 2.0, seed ^ 0x5a);
            let (p, _) = train_ppo(env.as_mut(), &cfg, Some(&mut pen), None)?;
            p
        }
        DefenseMethod::Radial => {
            let mut env = build_task(task);
            let mut pen = RadialPenalty::new(eps, 2.0, 4, seed ^ 0x7ad);
            let (p, _) = train_ppo(env.as_mut(), &cfg, Some(&mut pen), None)?;
            p
        }
        DefenseMethod::Wocar => {
            let wcfg = WocarConfig::new(cfg, eps);
            WocarTrainer::new(wcfg).train(build_task(task).as_mut())?
        }
        DefenseMethod::Atla | DefenseMethod::AtlaSa => {
            let rounds = budget.atla_rounds;
            let per_round = (budget.iterations / (rounds + 1)).max(1);
            let acfg = AtlaConfig {
                train: TrainConfig {
                    iterations: 0,
                    // ATLA alternates between opponent/perturbation wrapper
                    // MDPs; the task factory cannot rebuild those, so the
                    // inner loops sample serially.
                    sampling: SampleOptions::default(),
                    ..cfg
                },
                eps,
                rounds,
                victim_iters_per_round: per_round,
                adversary_iters: budget.atla_adversary_iters,
                sa_coef: if method == DefenseMethod::AtlaSa {
                    Some(2.0)
                } else {
                    None
                },
            };
            let mut make = move || build_task(task) as Box<dyn Env>;
            AtlaTrainer::new(acfg).train(&mut make)?
        }
    };
    policy.norm.freeze();
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_budget() -> VictimBudget {
        VictimBudget {
            iterations: 6,
            steps_per_iter: 512,
            atla_rounds: 1,
            atla_adversary_iters: 2,
            hidden: vec![16],
            actors: 1,
        }
    }

    /// Registry exhaustiveness: every defense round-trips through its wire
    /// code and display name, case-insensitively, plus the CLI aliases.
    #[test]
    fn every_method_round_trips_by_name_and_code() {
        for method in DefenseMethod::ALL {
            assert_eq!(DefenseMethod::by_name(method.code()), Some(method));
            assert_eq!(DefenseMethod::by_name(method.name()), Some(method));
            assert_eq!(
                DefenseMethod::by_name(&method.code().to_uppercase()),
                Some(method),
                "{method:?} lookup is case-insensitive"
            );
            assert_eq!(DefenseMethod::resolve(method.code()).unwrap(), method);
        }
        assert_eq!(DefenseMethod::by_name("vanilla"), Some(DefenseMethod::Ppo));
        assert_eq!(
            DefenseMethod::by_name("ATLASA"),
            Some(DefenseMethod::AtlaSa)
        );
    }

    #[test]
    fn resolve_suggests_near_misses() {
        let err = DefenseMethod::resolve("wokar").unwrap_err();
        assert!(err.contains("did you mean \"wocar\"?"), "{err}");
        assert!(err.contains("valid defenses:"), "{err}");
        assert_eq!(DefenseMethod::by_name("frobnicate"), None);
    }

    #[test]
    fn every_method_produces_a_frozen_victim() {
        for method in DefenseMethod::ALL {
            let p = train_victim(TaskId::Hopper, method, &tiny_budget(), 1).unwrap();
            assert!(p.norm.is_frozen(), "{method:?} victim must ship frozen");
            assert_eq!(p.obs_dim(), 5);
            assert_eq!(p.action_dim(), 3);
        }
    }

    #[test]
    fn train_victim_with_records_summary_and_train_rows() {
        let (tel, mem) = Telemetry::memory("zoo-test");
        train_victim_with(&tel, TaskId::Hopper, DefenseMethod::Ppo, &tiny_budget(), 1).unwrap();
        let rows = mem.rows();
        let summary = rows.iter().find(|r| r.phase == "victim").unwrap();
        assert_eq!(summary.tags["task"], "Hopper");
        assert_eq!(summary.tags["method"], "PPO (va.)");
        assert_eq!(summary.counters["attempts"], 1);
        assert!(
            rows.iter().any(|r| r.phase == "train"),
            "inner PPO loop must record through the same handle"
        );
        assert!(tel
            .timing_report()
            .spans
            .iter()
            .any(|s| s.name == "train_victim"));
    }

    #[test]
    fn actor_parallel_victims_are_actor_count_invariant() {
        let budget_at = |actors: usize| VictimBudget {
            actors,
            ..tiny_budget()
        };
        let a = train_victim(TaskId::Hopper, DefenseMethod::Ppo, &budget_at(2), 11).unwrap();
        let b = train_victim(TaskId::Hopper, DefenseMethod::Ppo, &budget_at(3), 11).unwrap();
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn victims_are_deterministic_per_seed() {
        let a = train_victim(TaskId::Hopper, DefenseMethod::Ppo, &tiny_budget(), 9).unwrap();
        let b = train_victim(TaskId::Hopper, DefenseMethod::Ppo, &tiny_budget(), 9).unwrap();
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn quick_ppo_victim_is_competent_on_hopper() {
        let p = train_victim(
            TaskId::Hopper,
            DefenseMethod::Ppo,
            &VictimBudget::quick(),
            3,
        )
        .unwrap();
        let mut make = || build_task(TaskId::Hopper) as Box<dyn Env>;
        let r = imap_rl::evaluate_batched(
            &mut make,
            &p,
            &imap_rl::EvalConfig {
                episodes: 10,
                deterministic: true,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        assert!(
            r.mean_return > 200.0,
            "quick-budget Hopper victim: {}",
            r.mean_return
        );
    }
}
