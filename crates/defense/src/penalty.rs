//! Robust-regularizer penalties (plugged into PPO via
//! [`imap_rl::PenaltyFn`]).
//!
//! Both penalize how much the policy mean moves under l∞ observation
//! perturbations of radius ε:
//!
//! - [`SaPenalty`] (SA, \[69\]): the *expected* smoothness
//!   `E_δ ‖μ(z) − μ(z + δ)‖²` with δ uniform in the ball. The paper's SA
//!   solves a convex relaxation; the sampled form is the standard cheap
//!   substitute and is documented in `DESIGN.md`.
//! - [`RadialPenalty`] (RADIAL, \[43\]): an *adversarial* loss — the worst of
//!   `k` sampled perturbations per state, a lower bound on the true
//!   worst-case deviation whose tightness is monitored against the sound
//!   IBP bound (`imap_nn::ibp`).

use imap_env::EnvRng;
use imap_nn::{Matrix, NnError};
use imap_rl::{GaussianPolicy, PenaltyFn};
use rand::{Rng, SeedableRng};

/// Computes the penalty gradient for a (clean, perturbed) pair of batches:
/// `L = (coef / n) Σ ‖μ(z) − μ(z')‖²`. Returns `(loss, flat policy grads)`.
fn smoothness_grads(
    policy: &GaussianPolicy,
    clean: &[&[f64]],
    perturbed: &[Vec<f64>],
    coef: f64,
) -> Result<(f64, Vec<f64>), NnError> {
    let n = clean.len() as f64;
    let x_clean = Matrix::from_rows(clean)?;
    let rows_pert: Vec<&[f64]> = perturbed.iter().map(|z| z.as_slice()).collect();
    let x_pert = Matrix::from_rows(&rows_pert)?;
    let cache_clean = policy.mlp.forward(&x_clean)?;
    let cache_pert = policy.mlp.forward(&x_pert)?;
    let mu_c = cache_clean.output();
    let mu_p = cache_pert.output();

    let mut loss = 0.0;
    let mut dout_c = Matrix::zeros(mu_c.rows(), mu_c.cols());
    let mut dout_p = Matrix::zeros(mu_p.rows(), mu_p.cols());
    for r in 0..mu_c.rows() {
        for c in 0..mu_c.cols() {
            let diff = mu_c.get(r, c) - mu_p.get(r, c);
            loss += coef * diff * diff / n;
            dout_c.set(r, c, 2.0 * coef * diff / n);
            dout_p.set(r, c, -2.0 * coef * diff / n);
        }
    }
    let (g_c, _) = policy.mlp.backward(&cache_clean, &dout_c)?;
    let (g_p, _) = policy.mlp.backward(&cache_pert, &dout_p)?;
    let mut flat = g_c.flatten();
    for (a, b) in flat.iter_mut().zip(g_p.flatten().iter()) {
        *a += b;
    }
    // log_std receives no smoothness gradient.
    flat.extend(std::iter::repeat_n(0.0, policy.head.log_std.len()));
    Ok((loss, flat))
}

/// The SA smooth-policy regularizer (expected smoothness under sampled
/// perturbations).
pub struct SaPenalty {
    /// Perturbation radius ε (in normalized observation units).
    pub eps: f64,
    /// Penalty coefficient.
    pub coef: f64,
    rng: EnvRng,
}

impl SaPenalty {
    /// Creates the penalty with its own RNG stream.
    pub fn new(eps: f64, coef: f64, seed: u64) -> Self {
        SaPenalty {
            eps,
            coef,
            rng: EnvRng::seed_from_u64(seed),
        }
    }

    /// Raw RNG state, for checkpointing.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Restores the RNG stream from a checkpointed state.
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng = EnvRng::from_state(state);
    }
}

/// Per-dimension perturbation radii in *normalized* units equivalent to a
/// raw-space l∞ ball of radius `eps` (the attack operates on raw states;
/// penalties operate on the normalized observations PPO hands them).
///
/// Radii are capped at 1σ: a tightly-regulated state dimension has a tiny
/// std, and an uncapped `eps/std` would force the policy to be constant
/// across the whole operating range of exactly the dimension it must react
/// to — over-regularization that destroys the victim instead of smoothing
/// it.
pub(crate) fn normalized_radii(policy: &GaussianPolicy, eps: f64) -> Vec<f64> {
    policy
        .norm
        .std()
        .iter()
        .map(|s| (eps / s.max(1e-6)).min(1.0))
        .collect()
}

impl PenaltyFn for SaPenalty {
    fn penalty(
        &mut self,
        policy: &GaussianPolicy,
        zs: &[&[f64]],
    ) -> Result<(f64, Vec<f64>), NnError> {
        if zs.is_empty() {
            return Ok((0.0, vec![0.0; policy.param_count()]));
        }
        let radii = normalized_radii(policy, self.eps);
        let perturbed: Vec<Vec<f64>> = zs
            .iter()
            .map(|z| {
                z.iter()
                    .zip(radii.iter())
                    .map(|(&v, &r)| v + self.rng.gen_range(-r..=r))
                    .collect()
            })
            .collect();
        smoothness_grads(policy, zs, &perturbed, self.coef)
    }
}

/// The RADIAL adversarial loss (worst-of-`k` sampled perturbations).
pub struct RadialPenalty {
    /// Perturbation radius ε.
    pub eps: f64,
    /// Penalty coefficient.
    pub coef: f64,
    /// Candidate perturbations per state.
    pub candidates: usize,
    rng: EnvRng,
}

impl RadialPenalty {
    /// Creates the penalty with its own RNG stream.
    pub fn new(eps: f64, coef: f64, candidates: usize, seed: u64) -> Self {
        RadialPenalty {
            eps,
            coef,
            candidates: candidates.max(1),
            rng: EnvRng::seed_from_u64(seed),
        }
    }

    /// Raw RNG state, for checkpointing.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Restores the RNG stream from a checkpointed state.
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng = EnvRng::from_state(state);
    }

    /// Picks, for each state, the candidate perturbation maximizing the
    /// output deviation (the inner adversarial maximization).
    fn worst_perturbations(
        &mut self,
        policy: &GaussianPolicy,
        zs: &[&[f64]],
    ) -> Result<Vec<Vec<f64>>, NnError> {
        let radii = normalized_radii(policy, self.eps);
        let mut out = Vec::with_capacity(zs.len());
        for z in zs {
            let mu = policy.mean_of(z)?;
            let mut best: Option<(f64, Vec<f64>)> = None;
            for c in 0..self.candidates {
                // Corner perturbations explore the ball boundary, where the
                // worst case of a smooth network lives; the first candidate
                // is a random interior point for coverage.
                let zp: Vec<f64> = z
                    .iter()
                    .zip(radii.iter())
                    .map(|(&v, &r)| {
                        if c == 0 {
                            v + self.rng.gen_range(-r..=r)
                        } else {
                            v + if self.rng.gen_bool(0.5) { r } else { -r }
                        }
                    })
                    .collect();
                let mu_p = policy.mean_of(&zp)?;
                let dev: f64 = mu
                    .iter()
                    .zip(mu_p.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if best.as_ref().is_none_or(|(d, _)| dev > *d) {
                    best = Some((dev, zp));
                }
            }
            out.push(best.expect("candidates >= 1").1);
        }
        Ok(out)
    }
}

impl PenaltyFn for RadialPenalty {
    fn penalty(
        &mut self,
        policy: &GaussianPolicy,
        zs: &[&[f64]],
    ) -> Result<(f64, Vec<f64>), NnError> {
        if zs.is_empty() {
            return Ok((0.0, vec![0.0; policy.param_count()]));
        }
        let worst = self.worst_perturbations(policy, zs)?;
        smoothness_grads(policy, zs, &worst, self.coef)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imap_env::EnvRng;
    use imap_nn::gradcheck::numeric_gradient;

    fn policy(seed: u64) -> GaussianPolicy {
        GaussianPolicy::new(3, 2, &[8], -0.5, &mut EnvRng::seed_from_u64(seed)).unwrap()
    }

    fn states() -> Vec<Vec<f64>> {
        (0..8)
            .map(|i| vec![i as f64 * 0.2 - 0.8, (i as f64).sin(), 0.1])
            .collect()
    }

    #[test]
    fn smoothness_grads_match_finite_difference() {
        let p = policy(0);
        let zs = states();
        let rows: Vec<&[f64]> = zs.iter().map(|z| z.as_slice()).collect();
        let perturbed: Vec<Vec<f64>> = zs
            .iter()
            .map(|z| z.iter().map(|v| v + 0.07).collect())
            .collect();
        let (_, grads) = smoothness_grads(&p, &rows, &perturbed, 1.0).unwrap();
        // FD over MLP params only (log_std grads are zero by construction).
        let mlp_params = p.mlp.params();
        let fd = numeric_gradient(
            |params| {
                let mut q = p.clone();
                q.mlp.set_params(params).unwrap();
                let n = zs.len() as f64;
                let mut loss = 0.0;
                for (z, zp) in zs.iter().zip(perturbed.iter()) {
                    let a = q.mean_of(z).unwrap();
                    let b = q.mean_of(zp).unwrap();
                    loss += a
                        .iter()
                        .zip(b.iter())
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        / n;
                }
                loss
            },
            &mlp_params,
            1e-6,
        );
        for (i, (a, b)) in grads.iter().zip(fd.iter()).enumerate() {
            assert!(
                (a - b).abs() / (1.0 + b.abs()) < 1e-4,
                "param {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn sa_penalty_is_nonnegative_and_right_size() {
        let p = policy(1);
        let mut pen = SaPenalty::new(0.1, 1.0, 7);
        let zs = states();
        let rows: Vec<&[f64]> = zs.iter().map(|z| z.as_slice()).collect();
        let (loss, grads) = pen.penalty(&p, &rows).unwrap();
        assert!(loss >= 0.0);
        assert_eq!(grads.len(), p.param_count());
    }

    #[test]
    fn radial_worst_case_beats_expected_case() {
        // The worst-of-k deviation must be at least the single random one
        // in expectation; check on a fixed policy with many states.
        let p = policy(2);
        let zs: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.11).cos(), 0.0])
            .collect();
        let rows: Vec<&[f64]> = zs.iter().map(|z| z.as_slice()).collect();
        let mut sa = SaPenalty::new(0.2, 1.0, 3);
        let mut radial = RadialPenalty::new(0.2, 1.0, 6, 3);
        let (l_sa, _) = sa.penalty(&p, &rows).unwrap();
        let (l_rad, _) = radial.penalty(&p, &rows).unwrap();
        assert!(
            l_rad > l_sa,
            "adversarial loss should exceed expected loss: {l_rad} vs {l_sa}"
        );
    }

    #[test]
    fn radial_never_exceeds_ibp_bound() {
        // The sampled worst case is a lower bound on the sound IBP bound.
        let p = policy(3);
        let mut radial = RadialPenalty::new(0.15, 1.0, 8, 4);
        let zs = states();
        let rows: Vec<&[f64]> = zs.iter().map(|z| z.as_slice()).collect();
        let worst = radial.worst_perturbations(&p, &rows).unwrap();
        for (z, zp) in zs.iter().zip(worst.iter()) {
            let mu = p.mean_of(z).unwrap();
            let mu_p = p.mean_of(zp).unwrap();
            let dev = mu
                .iter()
                .zip(mu_p.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            let bound = imap_nn::ibp::output_deviation_bound(&p.mlp, z, 0.15).unwrap();
            assert!(
                dev <= bound + 1e-9,
                "sampled {dev} exceeds IBP bound {bound}"
            );
        }
    }

    #[test]
    fn empty_batch_returns_zero() {
        let p = policy(4);
        let mut pen = SaPenalty::new(0.1, 1.0, 5);
        let (loss, grads) = pen.penalty(&p, &[]).unwrap();
        assert_eq!(loss, 0.0);
        assert!(grads.iter().all(|g| *g == 0.0));
    }
}
