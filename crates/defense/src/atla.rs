//! ATLA: Alternating Training with a Learned Adversary (Zhang et al. \[68\]).
//!
//! Rounds alternate between (a) training an RL state-perturbation adversary
//! against the frozen current victim and (b) training the victim under that
//! frozen adversary's perturbations. ATLA-SA additionally applies the SA
//! smoothness regularizer during the victim phases (the original uses an
//! LSTM victim; we substitute the MLP used everywhere else, per
//! `DESIGN.md`).

use imap_core::attacks::sa_rl;
use imap_env::{Env, EnvRng, Step};
use imap_nn::NnError;
use imap_rl::{GaussianPolicy, PpoRunner, TrainConfig};

use crate::penalty::SaPenalty;

/// A victim-side training environment in which a frozen adversary perturbs
/// every observation the victim receives (raw-state l∞ ball, matching
/// [`imap_core::threat::PerturbationEnv`]'s attack mechanics).
pub struct VictimUnderAttackEnv<'a> {
    inner: &'a mut dyn Env,
    adversary: Option<&'a GaussianPolicy>,
    eps: f64,
}

impl<'a> VictimUnderAttackEnv<'a> {
    /// Wraps `inner`; `adversary = None` yields the clean environment.
    pub fn new(inner: &'a mut dyn Env, adversary: Option<&'a GaussianPolicy>, eps: f64) -> Self {
        VictimUnderAttackEnv {
            inner,
            adversary,
            eps,
        }
    }

    fn perturb(&self, obs: Vec<f64>) -> Vec<f64> {
        match self.adversary {
            None => obs,
            Some(adv) => {
                let a = adv
                    .act_deterministic(&obs)
                    .expect("adversary dims match env");
                obs.iter()
                    .enumerate()
                    .map(|(i, &v)| v + self.eps * a[i].clamp(-1.0, 1.0))
                    .collect()
            }
        }
    }
}

impl Env for VictimUnderAttackEnv<'_> {
    fn obs_dim(&self) -> usize {
        self.inner.obs_dim()
    }

    fn action_dim(&self) -> usize {
        self.inner.action_dim()
    }

    fn max_steps(&self) -> usize {
        self.inner.max_steps()
    }

    fn reset(&mut self, rng: &mut EnvRng) -> Vec<f64> {
        let obs = self.inner.reset(rng);
        self.perturb(obs)
    }

    fn step(&mut self, action: &[f64], rng: &mut EnvRng) -> Step {
        let mut step = self.inner.step(action, rng);
        step.obs = self.perturb(step.obs);
        step
    }

    fn state_summary(&self) -> Vec<f64> {
        self.inner.state_summary()
    }
}

/// ATLA hyperparameters.
#[derive(Debug, Clone)]
pub struct AtlaConfig {
    /// The victim's PPO configuration (total victim iterations are
    /// `rounds * victim_iters_per_round`).
    pub train: TrainConfig,
    /// l∞ budget the adversary trains with.
    pub eps: f64,
    /// Number of alternation rounds.
    pub rounds: usize,
    /// Victim PPO iterations per round.
    pub victim_iters_per_round: usize,
    /// Adversary PPO iterations per round.
    pub adversary_iters: usize,
    /// `Some(coef)` adds the SA smoothness penalty (ATLA-SA).
    pub sa_coef: Option<f64>,
}

/// The alternating trainer.
pub struct AtlaTrainer {
    cfg: AtlaConfig,
}

impl AtlaTrainer {
    /// Creates a trainer.
    pub fn new(cfg: AtlaConfig) -> Self {
        AtlaTrainer { cfg }
    }

    /// Runs alternating training; `make_env` builds fresh copies of the task
    /// (one is consumed per adversary round for the attack MDP).
    pub fn train(
        &self,
        make_env: &mut dyn FnMut() -> Box<dyn Env>,
    ) -> Result<GaussianPolicy, NnError> {
        let mut env = make_env();
        let mut runner = PpoRunner::new(env.as_ref(), self.cfg.train.clone())?;
        let mut sa = self
            .cfg
            .sa_coef
            .map(|c| SaPenalty::new(self.cfg.eps, c, self.cfg.train.seed ^ 0xa71a));

        let tel = self.cfg.train.telemetry.clone();
        // Round 0: warm up the victim clean so the adversary has something
        // to attack.
        {
            let _t = tel.span("victim_round");
            let mut warm_return = 0.0;
            for _ in 0..self.cfg.victim_iters_per_round {
                let mut wrapped = VictimUnderAttackEnv::new(env.as_mut(), None, 0.0);
                let stats = runner.iterate(
                    &mut wrapped,
                    sa.as_mut().map(|p| p as &mut dyn imap_rl::PenaltyFn),
                    None,
                )?;
                warm_return = stats.mean_return;
            }
            tel.record_full(
                "atla",
                0,
                &[("victim_mean_return", warm_return)],
                &[("total_steps", runner.total_steps() as u64)],
                &[("stage", "warmup")],
            );
        }

        for round in 0..self.cfg.rounds {
            // (a) Train an adversary against the frozen victim.
            let adversary_asr;
            let outcome = {
                let _t = tel.span("adversary_round");
                let adv_train = TrainConfig {
                    iterations: self.cfg.adversary_iters,
                    seed: self.cfg.train.seed ^ (0x1000 + round as u64),
                    ..self.cfg.train.clone()
                };
                let outcome = sa_rl(make_env(), runner.policy.clone(), self.cfg.eps, adv_train)?;
                adversary_asr = outcome.curve.last().map(|p| p.asr).unwrap_or(0.0);
                outcome
            };
            // (b) Train the victim under the frozen adversary.
            let _t = tel.span("victim_round");
            let mut victim_return = 0.0;
            for _ in 0..self.cfg.victim_iters_per_round {
                let mut wrapped =
                    VictimUnderAttackEnv::new(env.as_mut(), Some(&outcome.policy), self.cfg.eps);
                let stats = runner.iterate(
                    &mut wrapped,
                    sa.as_mut().map(|p| p as &mut dyn imap_rl::PenaltyFn),
                    None,
                )?;
                victim_return = stats.mean_return;
            }
            tel.record_full(
                "atla",
                (round + 1) as u64,
                &[
                    ("victim_mean_return", victim_return),
                    ("adversary_asr", adversary_asr),
                ],
                &[("total_steps", runner.total_steps() as u64)],
                &[("stage", "round")],
            );
        }
        Ok(runner.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imap_env::locomotion::Hopper;
    use imap_rl::PpoConfig;
    use rand::SeedableRng;

    fn quick(seed: u64) -> TrainConfig {
        TrainConfig {
            iterations: 0,
            steps_per_iter: 1024,
            hidden: vec![16],
            seed,
            ppo: PpoConfig {
                epochs: 6,
                ..PpoConfig::default()
            },
            ..TrainConfig::default()
        }
    }

    #[test]
    fn atla_produces_a_competent_victim() {
        let cfg = AtlaConfig {
            train: quick(5),
            eps: 0.075,
            rounds: 2,
            victim_iters_per_round: 8,
            adversary_iters: 3,
            sa_coef: None,
        };
        let mut make = || Box::new(Hopper::new()) as Box<dyn Env>;
        let policy = AtlaTrainer::new(cfg).train(&mut make).unwrap();
        let mut rng = imap_env::EnvRng::seed_from_u64(3);
        let r = imap_rl::evaluate(
            &mut Hopper::new(),
            &policy,
            &imap_rl::EvalConfig {
                episodes: 10,
                deterministic: true,
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            r.mean_return > 50.0,
            "ATLA victim competence: {}",
            r.mean_return
        );
    }

    #[test]
    fn atla_sa_variant_runs() {
        let cfg = AtlaConfig {
            train: quick(6),
            eps: 0.075,
            rounds: 1,
            victim_iters_per_round: 2,
            adversary_iters: 1,
            sa_coef: Some(0.3),
        };
        let mut make = || Box::new(Hopper::new()) as Box<dyn Env>;
        AtlaTrainer::new(cfg).train(&mut make).unwrap();
    }

    #[test]
    fn victim_under_attack_env_perturbs() {
        let mut inner = Hopper::new();
        let adv = GaussianPolicy::new(5, 5, &[8], -0.5, &mut rand::rngs::StdRng::seed_from_u64(1))
            .unwrap();
        let mut rng1 = EnvRng::seed_from_u64(7);
        let mut clean = Hopper::new();
        let clean_obs = clean.reset(&mut rng1);
        let mut rng2 = EnvRng::seed_from_u64(7);
        let mut wrapped = VictimUnderAttackEnv::new(&mut inner, Some(&adv), 0.5);
        let pert_obs = wrapped.reset(&mut rng2);
        assert_ne!(clean_obs, pert_obs, "large-eps adversary must move the obs");
        // And the deviation respects the budget (std = 1).
        for (a, b) in clean_obs.iter().zip(pert_obs.iter()) {
            assert!((a - b).abs() <= 0.5 + 1e-12);
        }
    }
}
