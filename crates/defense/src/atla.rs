//! ATLA: Alternating Training with a Learned Adversary (Zhang et al. \[68\]).
//!
//! Rounds alternate between (a) training an RL state-perturbation adversary
//! against the frozen current victim and (b) training the victim under that
//! frozen adversary's perturbations. ATLA-SA additionally applies the SA
//! smoothness regularizer during the victim phases (the original uses an
//! LSTM victim; we substitute the MLP used everywhere else, per
//! `DESIGN.md`).

use imap_core::attacks::sa_rl;
use imap_env::{Env, EnvRng, Step};
use imap_nn::NnError;
use imap_rl::checkpoint::{
    checkpoint_path, latest_checkpoint, read_checkpoint, write_checkpoint, Checkpointable,
};
use imap_rl::{DivergenceGuard, GaussianPolicy, PpoRunner, ResilienceConfig, TrainConfig};

use crate::penalty::SaPenalty;

/// A victim-side training environment in which a frozen adversary perturbs
/// every observation the victim receives (raw-state l∞ ball, matching
/// [`imap_core::threat::PerturbationEnv`]'s attack mechanics).
pub struct VictimUnderAttackEnv<'a> {
    inner: &'a mut dyn Env,
    adversary: Option<&'a GaussianPolicy>,
    eps: f64,
}

impl<'a> VictimUnderAttackEnv<'a> {
    /// Wraps `inner`; `adversary = None` yields the clean environment.
    pub fn new(inner: &'a mut dyn Env, adversary: Option<&'a GaussianPolicy>, eps: f64) -> Self {
        VictimUnderAttackEnv {
            inner,
            adversary,
            eps,
        }
    }

    fn perturb(&self, obs: Vec<f64>) -> Vec<f64> {
        match self.adversary {
            None => obs,
            Some(adv) => {
                let a = adv
                    .act_deterministic(&obs)
                    .expect("adversary dims match env");
                obs.iter()
                    .enumerate()
                    .map(|(i, &v)| v + self.eps * a[i].clamp(-1.0, 1.0))
                    .collect()
            }
        }
    }
}

impl Env for VictimUnderAttackEnv<'_> {
    fn obs_dim(&self) -> usize {
        self.inner.obs_dim()
    }

    fn action_dim(&self) -> usize {
        self.inner.action_dim()
    }

    fn max_steps(&self) -> usize {
        self.inner.max_steps()
    }

    fn reset(&mut self, rng: &mut EnvRng) -> Vec<f64> {
        let obs = self.inner.reset(rng);
        self.perturb(obs)
    }

    fn step(&mut self, action: &[f64], rng: &mut EnvRng) -> Step {
        let mut step = self.inner.step(action, rng);
        step.obs = self.perturb(step.obs);
        step
    }

    fn state_summary(&self) -> Vec<f64> {
        self.inner.state_summary()
    }
}

/// ATLA hyperparameters.
#[derive(Debug, Clone)]
pub struct AtlaConfig {
    /// The victim's PPO configuration (total victim iterations are
    /// `rounds * victim_iters_per_round`).
    pub train: TrainConfig,
    /// l∞ budget the adversary trains with.
    pub eps: f64,
    /// Number of alternation rounds.
    pub rounds: usize,
    /// Victim PPO iterations per round.
    pub victim_iters_per_round: usize,
    /// Adversary PPO iterations per round.
    pub adversary_iters: usize,
    /// `Some(coef)` adds the SA smoothness penalty (ATLA-SA).
    pub sa_coef: Option<f64>,
}

/// The alternating trainer.
pub struct AtlaTrainer {
    cfg: AtlaConfig,
}

impl AtlaTrainer {
    /// Creates a trainer.
    pub fn new(cfg: AtlaConfig) -> Self {
        AtlaTrainer { cfg }
    }

    /// Runs alternating training; `make_env` builds fresh copies of the task
    /// (one is consumed per adversary round for the attack MDP).
    ///
    /// Checkpointing is at *stage* granularity (warmup = stage 1, round `r`
    /// = stage `r + 2`): on resume, fully-completed stages are skipped and
    /// the interrupted stage re-runs from its start, which reproduces the
    /// uninterrupted run bitwise because every stage is deterministic in
    /// the restored runner/penalty state.
    pub fn train(
        &self,
        make_env: &mut dyn FnMut() -> Box<dyn Env>,
    ) -> Result<GaussianPolicy, NnError> {
        let mut env = make_env();
        let mut runner = PpoRunner::new(env.as_ref(), self.cfg.train.clone())?;
        let mut sa = self
            .cfg
            .sa_coef
            .map(|c| SaPenalty::new(self.cfg.eps, c, self.cfg.train.seed ^ 0xa71a));

        let res = self.cfg.train.resilience.clone();
        // Stages completed so far: 0 = fresh, 1 = warmup done, r + 2 =
        // alternation round r done.
        let mut stages_done = 0usize;
        if res.resume {
            if let Some(dir) = &res.checkpoint_dir {
                if let Some(path) = latest_checkpoint(dir).map_err(NnError::from)? {
                    let d = read_checkpoint(&path, "atla-trainer").map_err(NnError::from)?;
                    runner.load_state_dict(&d).map_err(NnError::from)?;
                    if let Some(p) = sa.as_mut() {
                        p.set_rng_state(d.get_u64("atla.sa.rng.state").map_err(NnError::from)?);
                    }
                    stages_done = d.get_u64("atla.stages_done").map_err(NnError::from)? as usize;
                }
            }
        }
        let save_stage = |runner: &PpoRunner,
                          sa: &Option<SaPenalty>,
                          stages_done: usize|
         -> Result<(), NnError> {
            if let Some(dir) = &res.checkpoint_dir {
                if res.checkpoint_every > 0 && stages_done.is_multiple_of(res.checkpoint_every) {
                    let mut d = runner.state_dict();
                    d.put_u64("atla.stages_done", stages_done as u64);
                    if let Some(p) = sa {
                        d.put_u64("atla.sa.rng.state", p.rng_state());
                    }
                    write_checkpoint(&checkpoint_path(dir, stages_done), "atla-trainer", &d)
                        .map_err(NnError::from)?;
                }
            }
            Ok(())
        };

        let tel = self.cfg.train.telemetry.clone();
        let mut guard = DivergenceGuard::new(res.guard.clone());
        // Round 0: warm up the victim clean so the adversary has something
        // to attack.
        if stages_done < 1 {
            let _t = tel.span("victim_round");
            let mut warm_return = 0.0;
            let mut done = 0usize;
            while done < self.cfg.victim_iters_per_round {
                guard.arm(&runner);
                let mut wrapped = VictimUnderAttackEnv::new(env.as_mut(), None, 0.0);
                let stats = runner.iterate(
                    &mut wrapped,
                    sa.as_mut().map(|p| p as &mut dyn imap_rl::PenaltyFn),
                    None,
                )?;
                let params = runner.policy.params();
                if let Some(reason) = guard.inspect(&stats, &[&params]) {
                    guard.rollback(&mut runner, reason, stats.iteration, &tel)?;
                    continue;
                }
                warm_return = stats.mean_return;
                done += 1;
            }
            tel.record_full(
                "atla",
                0,
                &[("victim_mean_return", warm_return)],
                &[("total_steps", runner.total_steps() as u64)],
                &[("stage", "warmup")],
            );
            stages_done = 1;
            save_stage(&runner, &sa, stages_done)?;
        }

        for round in 0..self.cfg.rounds {
            if stages_done >= round + 2 {
                continue;
            }
            // (a) Train an adversary against the frozen victim. The
            // adversary's sub-training never checkpoints (its lifetime is
            // one stage); only its divergence guard is inherited.
            let adversary_asr;
            let outcome = {
                let _t = tel.span("adversary_round");
                let adv_train = TrainConfig {
                    iterations: self.cfg.adversary_iters,
                    seed: self.cfg.train.seed ^ (0x1000 + round as u64),
                    resilience: ResilienceConfig {
                        checkpoint_dir: None,
                        checkpoint_every: 0,
                        resume: false,
                        guard: res.guard.clone(),
                        progress: res.progress.clone(),
                    },
                    ..self.cfg.train.clone()
                };
                let outcome = sa_rl(make_env(), runner.policy.clone(), self.cfg.eps, adv_train)?;
                adversary_asr = outcome.curve.last().map(|p| p.asr).unwrap_or(0.0);
                outcome
            };
            // (b) Train the victim under the frozen adversary.
            let _t = tel.span("victim_round");
            let mut victim_return = 0.0;
            let mut done = 0usize;
            while done < self.cfg.victim_iters_per_round {
                guard.arm(&runner);
                let mut wrapped =
                    VictimUnderAttackEnv::new(env.as_mut(), Some(&outcome.policy), self.cfg.eps);
                let stats = runner.iterate(
                    &mut wrapped,
                    sa.as_mut().map(|p| p as &mut dyn imap_rl::PenaltyFn),
                    None,
                )?;
                let params = runner.policy.params();
                if let Some(reason) = guard.inspect(&stats, &[&params]) {
                    guard.rollback(&mut runner, reason, stats.iteration, &tel)?;
                    continue;
                }
                victim_return = stats.mean_return;
                done += 1;
            }
            tel.record_full(
                "atla",
                (round + 1) as u64,
                &[
                    ("victim_mean_return", victim_return),
                    ("adversary_asr", adversary_asr),
                ],
                &[("total_steps", runner.total_steps() as u64)],
                &[("stage", "round")],
            );
            stages_done = round + 2;
            save_stage(&runner, &sa, stages_done)?;
        }
        Ok(runner.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imap_env::locomotion::Hopper;
    use imap_rl::PpoConfig;
    use rand::SeedableRng;

    fn quick(seed: u64) -> TrainConfig {
        TrainConfig {
            iterations: 0,
            steps_per_iter: 1024,
            hidden: vec![16],
            seed,
            ppo: PpoConfig {
                epochs: 6,
                ..PpoConfig::default()
            },
            ..TrainConfig::default()
        }
    }

    #[test]
    fn atla_stage_checkpoint_resume_is_bitwise_identical() {
        use imap_rl::ResilienceConfig;
        let train = TrainConfig {
            steps_per_iter: 256,
            hidden: vec![8],
            ..quick(21)
        };
        let cfg = |rounds: usize, resilience: ResilienceConfig| AtlaConfig {
            train: TrainConfig {
                resilience,
                ..train.clone()
            },
            eps: 0.075,
            rounds,
            victim_iters_per_round: 2,
            adversary_iters: 1,
            sa_coef: Some(0.3),
        };
        let mut make = || Box::new(Hopper::new()) as Box<dyn Env>;
        let full = AtlaTrainer::new(cfg(2, ResilienceConfig::default()))
            .train(&mut make)
            .unwrap();

        let dir = std::env::temp_dir().join("imap-atla-resume");
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = ResilienceConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            ..ResilienceConfig::default()
        };
        // "Interrupted" after the warmup stage and the first alternation
        // round.
        AtlaTrainer::new(cfg(1, ckpt.clone()))
            .train(&mut make)
            .unwrap();
        let resumed = AtlaTrainer::new(cfg(
            2,
            ResilienceConfig {
                resume: true,
                ..ckpt
            },
        ))
        .train(&mut make)
        .unwrap();
        let bits =
            |p: &GaussianPolicy| -> Vec<u64> { p.params().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(
            bits(&full),
            bits(&resumed),
            "resumed ATLA run must match the uninterrupted one bitwise"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atla_produces_a_competent_victim() {
        let cfg = AtlaConfig {
            train: quick(5),
            eps: 0.075,
            rounds: 2,
            victim_iters_per_round: 8,
            adversary_iters: 3,
            sa_coef: None,
        };
        let mut make = || Box::new(Hopper::new()) as Box<dyn Env>;
        let policy = AtlaTrainer::new(cfg).train(&mut make).unwrap();
        let mut rng = imap_env::EnvRng::seed_from_u64(3);
        let r = imap_rl::evaluate(
            &mut Hopper::new(),
            &policy,
            &imap_rl::EvalConfig {
                episodes: 10,
                deterministic: true,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            r.mean_return > 50.0,
            "ATLA victim competence: {}",
            r.mean_return
        );
    }

    #[test]
    fn atla_sa_variant_runs() {
        let cfg = AtlaConfig {
            train: quick(6),
            eps: 0.075,
            rounds: 1,
            victim_iters_per_round: 2,
            adversary_iters: 1,
            sa_coef: Some(0.3),
        };
        let mut make = || Box::new(Hopper::new()) as Box<dyn Env>;
        AtlaTrainer::new(cfg).train(&mut make).unwrap();
    }

    #[test]
    fn victim_under_attack_env_perturbs() {
        let mut inner = Hopper::new();
        let adv =
            GaussianPolicy::new(5, 5, &[8], -0.5, &mut imap_env::EnvRng::seed_from_u64(1)).unwrap();
        let mut rng1 = EnvRng::seed_from_u64(7);
        let mut clean = Hopper::new();
        let clean_obs = clean.reset(&mut rng1);
        let mut rng2 = EnvRng::seed_from_u64(7);
        let mut wrapped = VictimUnderAttackEnv::new(&mut inner, Some(&adv), 0.5);
        let pert_obs = wrapped.reset(&mut rng2);
        assert_ne!(clean_obs, pert_obs, "large-eps adversary must move the obs");
        // And the deviation respects the budget (std = 1).
        for (a, b) in clean_obs.iter().zip(pert_obs.iter()) {
            assert!((a - b).abs() <= 0.5 + 1e-12);
        }
    }
}
