//! # imap-density
//!
//! Nonparametric state-density approximation for IMAP's adversarial
//! intrinsic regularizers (paper §5.2, "State Density Approximation").
//!
//! The paper estimates the adversarial state distribution via K-nearest-
//! neighbour distances — `d^{π^α}(s) ≈ 1 / ‖s − s*_{D_k}‖` over the latest
//! iteration's replay buffer `D_k`, and the policy coverage
//! `ρ^α(s) ≈ 1 / ‖s − s*_B‖` over the union buffer `B = ∪ D_i` — explicitly
//! preferring KNN over prediction-error methods (ICM/RND) for stability.
//!
//! - [`KdTree`]: exact k-nearest-neighbour queries in low dimension.
//! - [`KnnEstimator`]: the density / distance API the regularizers consume.
//! - [`UnionBuffer`]: the capped, decimating implementation of `B`.

pub mod kdtree;
pub mod knn;
pub mod replay;

pub use kdtree::KdTree;
pub use knn::KnnEstimator;
pub use replay::UnionBuffer;
