//! An exact k-d tree for k-nearest-neighbour queries.
//!
//! State summaries in this workspace are 2–6 dimensional, where k-d trees
//! are near-optimal. The implementation is index-based (no pointer chasing,
//! no unsafe) and validated against brute force by property tests.

/// Squared Euclidean distance.
#[inline]
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[derive(Debug, Clone)]
struct Node {
    /// Index into `points`.
    point: usize,
    /// Split dimension.
    dim: usize,
    left: Option<usize>,
    right: Option<usize>,
}

/// An immutable k-d tree over a point set.
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Vec<f64>>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl KdTree {
    /// Builds a tree from `points` (consumed). Points may repeat; an empty
    /// input yields a tree whose queries return no neighbours.
    pub fn build(points: Vec<Vec<f64>>) -> Self {
        let mut idx: Vec<usize> = (0..points.len()).collect();
        let mut tree = KdTree {
            points,
            nodes: Vec::new(),
            root: None,
        };
        if !idx.is_empty() {
            let n = idx.len();
            tree.root = Some(tree.build_rec(&mut idx, 0, n));
        }
        tree
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn build_rec(&mut self, idx: &mut [usize], lo: usize, hi: usize) -> usize {
        let slice = &mut idx[lo..hi];
        // Split on the dimension with the largest spread in this cell.
        let dim = {
            let d = self.points[slice[0]].len();
            let mut best = 0;
            let mut best_spread = -1.0;
            for k in 0..d {
                let mut mn = f64::INFINITY;
                let mut mx = f64::NEG_INFINITY;
                for &i in slice.iter() {
                    let v = self.points[i][k];
                    mn = mn.min(v);
                    mx = mx.max(v);
                }
                if mx - mn > best_spread {
                    best_spread = mx - mn;
                    best = k;
                }
            }
            best
        };
        let mid = slice.len() / 2;
        slice.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a][dim]
                .partial_cmp(&self.points[b][dim])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let point = slice[mid];
        let node_id = self.nodes.len();
        self.nodes.push(Node {
            point,
            dim,
            left: None,
            right: None,
        });
        if mid > 0 {
            let left = self.build_rec(idx, lo, lo + mid);
            self.nodes[node_id].left = Some(left);
        }
        if lo + mid + 1 < hi {
            let right = self.build_rec(idx, lo + mid + 1, hi);
            self.nodes[node_id].right = Some(right);
        }
        node_id
    }

    /// Returns the distances (not squared) to the `k` nearest stored points,
    /// ascending. Fewer than `k` results when the tree is smaller than `k`.
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<f64> {
        if k == 0 || self.root.is_none() {
            return Vec::new();
        }
        // `heap` holds squared distances, max-first, capped at k.
        let mut heap: Vec<f64> = Vec::with_capacity(k);
        self.search(self.root.unwrap(), query, k, &mut heap);
        heap.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        heap.into_iter().map(f64::sqrt).collect()
    }

    fn search(&self, node_id: usize, query: &[f64], k: usize, heap: &mut Vec<f64>) {
        let node = &self.nodes[node_id];
        let d2 = dist2(query, &self.points[node.point]);
        if heap.len() < k {
            heap.push(d2);
            heap.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        } else if d2 < heap[0] {
            heap[0] = d2;
            heap.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        }
        let dim = node.dim;
        let delta = query[dim] - self.points[node.point][dim];
        let (near, far) = if delta <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.search(n, query, k, heap);
        }
        // Visit the far side only if the splitting plane is closer than the
        // current k-th best.
        if let Some(f) = far {
            if heap.len() < k || delta * delta < heap[0] {
                self.search(f, query, k, heap);
            }
        }
    }

    /// Mean distance to the `k` nearest neighbours (the quantity the paper's
    /// density estimate inverts). Returns `None` on an empty tree.
    pub fn mean_knn_distance(&self, query: &[f64], k: usize) -> Option<f64> {
        let d = self.k_nearest(query, k);
        if d.is_empty() {
            None
        } else {
            Some(d.iter().sum::<f64>() / d.len() as f64)
        }
    }
}

/// Brute-force k-nearest distances; the reference implementation used by
/// tests and acceptable for small buffers.
pub fn brute_force_k_nearest(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = points.iter().map(|p| dist2(p, query).sqrt()).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    d.truncate(k);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect()
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let t = KdTree::build(Vec::new());
        assert!(t.k_nearest(&[0.0, 0.0], 3).is_empty());
        assert!(t.mean_knn_distance(&[0.0, 0.0], 3).is_none());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(vec![vec![1.0, 2.0]]);
        let d = t.k_nearest(&[1.0, 2.0], 5);
        assert_eq!(d.len(), 1);
        assert!(d[0].abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_random() {
        let pts = random_points(500, 3, 42);
        let tree = KdTree::build(pts.clone());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-6.0..6.0)).collect();
            let a = tree.k_nearest(&q, 5);
            let b = brute_force_k_nearest(&pts, &q, 5);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-9, "tree {x} vs brute {y}");
            }
        }
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![vec![0.0, 0.0]; 10];
        let tree = KdTree::build(pts);
        let d = tree.k_nearest(&[0.0, 0.0], 3);
        assert_eq!(d, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn k_larger_than_n() {
        let pts = random_points(3, 2, 1);
        let tree = KdTree::build(pts.clone());
        let d = tree.k_nearest(&[0.0, 0.0], 10);
        assert_eq!(d.len(), 3);
    }

    proptest::proptest! {
        #[test]
        fn prop_tree_equals_brute_force(
            seed in 0u64..1000,
            n in 1usize..200,
            k in 1usize..8,
        ) {
            let pts = random_points(n, 2, seed);
            let tree = KdTree::build(pts.clone());
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(999));
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(-6.0..6.0)).collect();
            let a = tree.k_nearest(&q, k);
            let b = brute_force_k_nearest(&pts, &q, k);
            proptest::prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                proptest::prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
