//! The union replay buffer `B = ∪_{i=1..k} D_i` (paper §5.2).
//!
//! The paper notes one need not keep the functional forms of old policies —
//! storing their sampled trajectories suffices. `B` grows linearly with
//! training, so this implementation caps memory by *decimation*: when the
//! cap is exceeded, every second stored point is dropped and the sampling
//! stride doubles, preserving an (approximately) uniform subsample of the
//! whole history. Documented as a substitution in `DESIGN.md`.

/// A capped, decimating union buffer of state summaries.
#[derive(Debug, Clone)]
pub struct UnionBuffer {
    points: Vec<Vec<f64>>,
    cap: usize,
    /// Only every `stride`-th pushed point is kept.
    stride: usize,
    /// Number of pushes since the last kept point.
    phase: usize,
    /// Total points ever pushed (before decimation).
    total_pushed: usize,
}

impl UnionBuffer {
    /// Creates a buffer that keeps at most `cap` points (minimum 2).
    pub fn new(cap: usize) -> Self {
        UnionBuffer {
            points: Vec::new(),
            cap: cap.max(2),
            stride: 1,
            phase: 0,
            total_pushed: 0,
        }
    }

    /// Number of currently stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total points pushed over the buffer's lifetime.
    pub fn total_pushed(&self) -> usize {
        self.total_pushed
    }

    /// Current decimation stride (1 = everything kept).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Capacity cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Pushes since the last kept point (for checkpointing).
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Rebuilds a buffer from checkpointed raw state, exactly as captured by
    /// [`UnionBuffer::points`]/[`UnionBuffer::cap`]/[`UnionBuffer::stride`]/
    /// [`UnionBuffer::phase`]/[`UnionBuffer::total_pushed`]. `cap` and
    /// `stride` are clamped to their invariants (≥2 and ≥1 respectively).
    pub fn restore(
        points: Vec<Vec<f64>>,
        cap: usize,
        stride: usize,
        phase: usize,
        total_pushed: usize,
    ) -> Self {
        UnionBuffer {
            points,
            cap: cap.max(2),
            stride: stride.max(1),
            phase,
            total_pushed,
        }
    }

    /// Pushes one state summary.
    pub fn push(&mut self, point: Vec<f64>) {
        self.total_pushed += 1;
        self.phase += 1;
        if self.phase >= self.stride {
            self.phase = 0;
            self.points.push(point);
            if self.points.len() > self.cap {
                self.decimate();
            }
        }
    }

    /// Extends from an iterator of summaries.
    pub fn extend<I: IntoIterator<Item = Vec<f64>>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }

    fn decimate(&mut self) {
        let mut keep = Vec::with_capacity(self.points.len() / 2 + 1);
        for (i, p) in self.points.drain(..).enumerate() {
            if i % 2 == 0 {
                keep.push(p);
            }
        }
        self.points = keep;
        self.stride *= 2;
    }

    /// A clone of the stored points (for building a
    /// [`crate::KnnEstimator`]).
    pub fn snapshot(&self) -> Vec<Vec<f64>> {
        self.points.clone()
    }

    /// Borrow of the stored points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_everything_under_cap() {
        let mut b = UnionBuffer::new(100);
        b.extend((0..50).map(|i| vec![i as f64]));
        assert_eq!(b.len(), 50);
        assert_eq!(b.stride(), 1);
    }

    #[test]
    fn caps_and_doubles_stride() {
        let mut b = UnionBuffer::new(64);
        b.extend((0..1000).map(|i| vec![i as f64]));
        assert!(b.len() <= 64);
        assert!(b.stride() > 1);
        assert_eq!(b.total_pushed(), 1000);
    }

    #[test]
    fn decimated_sample_spans_history() {
        let mut b = UnionBuffer::new(32);
        b.extend((0..1024).map(|i| vec![i as f64]));
        let pts = b.points();
        let min = pts.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        let max = pts.iter().map(|p| p[0]).fold(f64::NEG_INFINITY, f64::max);
        // Early history survives decimation; late history keeps arriving.
        assert!(min < 100.0, "oldest retained point too new: {min}");
        assert!(max > 900.0, "newest retained point too old: {max}");
    }

    #[test]
    fn min_cap_is_two() {
        let mut b = UnionBuffer::new(0);
        b.extend((0..10).map(|i| vec![i as f64]));
        assert!(!b.is_empty());
    }

    #[test]
    fn restore_resumes_mid_decimation() {
        let mut b = UnionBuffer::new(16);
        b.extend((0..100).map(|i| vec![i as f64]));
        let restored = UnionBuffer::restore(
            b.points().to_vec(),
            b.cap(),
            b.stride(),
            b.phase(),
            b.total_pushed(),
        );
        let mut original = b.clone();
        let mut resumed = restored;
        original.extend((100..200).map(|i| vec![i as f64]));
        resumed.extend((100..200).map(|i| vec![i as f64]));
        assert_eq!(original.points(), resumed.points());
        assert_eq!(original.stride(), resumed.stride());
        assert_eq!(original.total_pushed(), resumed.total_pushed());
    }

    #[test]
    fn snapshot_is_independent() {
        let mut b = UnionBuffer::new(10);
        b.push(vec![1.0]);
        let snap = b.snapshot();
        b.push(vec![2.0]);
        assert_eq!(snap.len(), 1);
        assert_eq!(b.len(), 2);
    }
}
