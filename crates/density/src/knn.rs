//! The density-estimation API consumed by the adversarial intrinsic
//! regularizers.

use crate::kdtree::KdTree;

/// A KNN density estimator over one point set (one of the paper's replay
/// buffers `D_k` or `B`).
///
/// The paper's estimate is `d(s) ≈ 1 / ‖s − s*‖` where `s*` is the K-th
/// nearest stored state; we use the mean distance over the K nearest, the
/// standard variance-reduction refinement of APT/MADE-style estimators.
///
/// ```
/// use imap_density::KnnEstimator;
/// let visited = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1]];
/// let est = KnnEstimator::new(visited, 2);
/// // Novel states earn a larger coverage bonus than visited ones.
/// assert!(est.coverage_bonus(&[5.0, 5.0]) > est.coverage_bonus(&[0.05, 0.05]));
/// ```
#[derive(Debug, Clone)]
pub struct KnnEstimator {
    tree: KdTree,
    k: usize,
}

impl KnnEstimator {
    /// Builds an estimator over `points` with neighbourhood size `k`.
    pub fn new(points: Vec<Vec<f64>>, k: usize) -> Self {
        KnnEstimator {
            tree: KdTree::build(points),
            k: k.max(1),
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Neighbourhood size `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Mean distance to the K nearest stored states; `None` if empty.
    ///
    /// This is the raw geometric quantity: large distance = novel state =
    /// low density.
    pub fn knn_distance(&self, query: &[f64]) -> Option<f64> {
        self.tree.mean_knn_distance(query, self.k)
    }

    /// Density estimate `d(s) ≈ 1 / (distance + eps)`; `None` if empty.
    pub fn density(&self, query: &[f64]) -> Option<f64> {
        self.knn_distance(query).map(|d| 1.0 / (d + 1e-8))
    }

    /// Entropy-gradient-style bonus `ln(1 + distance)`: the Frank–Wolfe
    /// intrinsic bonus for the state-coverage regularizer
    /// (`∇_d [−Σ d ln d] = −ln d − 1`, realized up to constants as the
    /// positive, bounded `ln(1 + ‖s − s*‖)`).
    pub fn coverage_bonus(&self, query: &[f64]) -> f64 {
        self.knn_distance(query).map_or(0.0, |d| (1.0 + d).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(vec![i as f64, j as f64]);
            }
        }
        pts
    }

    #[test]
    fn dense_region_has_higher_density() {
        let est = KnnEstimator::new(grid(), 3);
        let inside = est.density(&[5.0, 5.0]).unwrap();
        let outside = est.density(&[20.0, 20.0]).unwrap();
        assert!(inside > outside);
    }

    #[test]
    fn coverage_bonus_rewards_novelty() {
        let est = KnnEstimator::new(grid(), 3);
        let near = est.coverage_bonus(&[5.0, 5.0]);
        let far = est.coverage_bonus(&[30.0, 30.0]);
        assert!(far > near);
        assert!(near >= 0.0);
    }

    #[test]
    fn empty_estimator_gives_zero_bonus() {
        let est = KnnEstimator::new(Vec::new(), 3);
        assert!(est.is_empty());
        assert_eq!(est.coverage_bonus(&[0.0]), 0.0);
        assert!(est.density(&[0.0]).is_none());
    }

    #[test]
    fn k_is_at_least_one() {
        let est = KnnEstimator::new(grid(), 0);
        assert_eq!(est.k(), 1);
    }

    #[test]
    fn density_is_finite_at_stored_points() {
        // Querying exactly at a stored point: distance ~0 but the epsilon
        // keeps the density finite.
        let est = KnnEstimator::new(vec![vec![1.0, 1.0]], 1);
        let d = est.density(&[1.0, 1.0]).unwrap();
        assert!(d.is_finite());
    }
}
