//! The [`Recorder`] trait and the three built-in sinks.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::row::MetricRow;

/// A metric sink. Implementations must be cheap to call from training hot
/// loops and safe to share across threads.
pub trait Recorder: Send + Sync {
    /// Records one row. Sinks must not panic on I/O failure (a dead disk
    /// should not kill a training run); they drop the row instead.
    fn record(&self, row: &MetricRow);

    /// Flushes any buffered rows to the backing store.
    fn flush(&self) {}

    /// The first write/flush error the sink swallowed, if any. A sink that
    /// reports one has been dropping rows since; the owning `Telemetry`
    /// surfaces it in the run manifest at finish.
    fn first_error(&self) -> Option<String> {
        None
    }
}

/// Discards everything. The default sink: training code records
/// unconditionally and this keeps the disabled path free.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _row: &MetricRow) {}
}

/// Buffers rows in memory — for tests and for callers that post-process
/// metrics programmatically.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    rows: Mutex<Vec<MetricRow>>,
}

impl MemoryRecorder {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// A snapshot of every row recorded so far.
    pub fn rows(&self) -> Vec<MetricRow> {
        self.rows.lock().clone()
    }

    /// Number of rows recorded.
    pub fn len(&self) -> usize {
        self.rows.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.lock().is_empty()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, row: &MetricRow) {
        self.rows.lock().push(row.clone());
    }
}

struct JsonlState {
    writer: BufWriter<Box<dyn Write + Send>>,
    /// First I/O error seen; once set the sink is poisoned — subsequent
    /// rows are dropped without touching the writer.
    error: Option<String>,
}

/// Appends one JSON object per line to a file (the `metrics.jsonl` format
/// documented in `README.md`). Rows are buffered; call
/// [`Recorder::flush`] (or let the owning `Telemetry` finish) to sync.
///
/// I/O failures never panic and never repeat: the first error poisons the
/// sink (with one loud warning on stderr) and is reported through
/// [`Recorder::first_error`] so it lands in the run manifest.
pub struct JsonlRecorder {
    state: Mutex<JsonlState>,
    /// Flush after every row. Costs a syscall per record, so it is opt-in:
    /// the service layer uses it so a client tailing a live job's
    /// `metrics.jsonl` sees rows as they happen instead of at buffer
    /// boundaries.
    live: bool,
}

impl JsonlRecorder {
    /// Creates (truncating) the JSONL file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlRecorder::from_writer(Box::new(file)))
    }

    /// [`JsonlRecorder::create`] in live mode: every row is flushed to the
    /// file as it is recorded, so concurrent readers can tail it.
    pub fn create_live(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut recorder = JsonlRecorder::from_writer(Box::new(file));
        recorder.live = true;
        Ok(recorder)
    }

    /// Wraps an arbitrary writer (tests inject failing writers here).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlRecorder {
            state: Mutex::new(JsonlState {
                writer: BufWriter::new(writer),
                error: None,
            }),
            live: false,
        }
    }

    fn poison(state: &mut JsonlState, op: &str, e: io::Error) {
        if state.error.is_none() {
            eprintln!(
                "warning: telemetry sink failed to {op} ({e}); \
                 dropping all further metric rows"
            );
            state.error = Some(format!("{op}: {e}"));
        }
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, row: &MetricRow) {
        if let Ok(json) = serde_json::to_string(row) {
            let mut state = self.state.lock();
            if state.error.is_some() {
                return;
            }
            if let Err(e) = writeln!(state.writer, "{json}") {
                JsonlRecorder::poison(&mut state, "write", e);
            } else if self.live {
                if let Err(e) = state.writer.flush() {
                    JsonlRecorder::poison(&mut state, "flush", e);
                }
            }
        }
    }

    fn flush(&self) {
        let mut state = self.state.lock();
        if state.error.is_some() {
            return;
        }
        if let Err(e) = state.writer.flush() {
            JsonlRecorder::poison(&mut state, "flush", e);
        }
    }

    fn first_error(&self) -> Option<String> {
        self.state.lock().error.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_recorder_accumulates_rows() {
        let rec = MemoryRecorder::new();
        assert!(rec.is_empty());
        rec.record(&MetricRow::new("r", "train", 0).scalar("x", 1.0));
        rec.record(&MetricRow::new("r", "train", 1).scalar("x", 2.0));
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.rows()[1].iteration, 1);
    }

    #[test]
    fn null_recorder_accepts_rows_silently() {
        let rec = NullRecorder;
        rec.record(&MetricRow::new("r", "train", 0));
        rec.flush();
        assert!(rec.first_error().is_none());
    }

    #[test]
    fn jsonl_recorder_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("imap-telemetry-test-jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let rec = JsonlRecorder::create(&path).unwrap();
        let rows = vec![
            MetricRow::new("run-1", "train", 0)
                .scalar("mean_return", -3.25)
                .counter("total_steps", 1024),
            MetricRow::new("run-1", "eval", 0)
                .scalar("asr", 0.66)
                .tag("attack", "SA-RL"),
        ];
        for row in &rows {
            rec.record(row);
        }
        rec.flush();
        assert!(rec.first_error().is_none());

        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<MetricRow> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed, rows, "JSONL round-trip must preserve every field");
    }

    #[test]
    fn live_recorder_is_tailable_before_any_explicit_flush() {
        let dir = std::env::temp_dir().join("imap-telemetry-test-live");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let rec = JsonlRecorder::create_live(&path).unwrap();
        rec.record(&MetricRow::new("run-1", "train", 0).scalar("x", 1.0));
        // No flush: a concurrent reader must still see the row.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "live rows reach the file eagerly");
        let row: MetricRow = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(row.iteration, 0);
    }

    /// Fails every write after the first `ok_bytes` bytes.
    struct FailingWriter {
        remaining: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.remaining >= buf.len() {
                self.remaining -= buf.len();
                Ok(buf.len())
            } else {
                Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Satellite: a failing sink must poison itself once, keep the first
    /// error, and keep accepting (and dropping) rows without panicking.
    #[test]
    fn io_failure_poisons_the_sink_and_reports_the_first_error() {
        let rec = JsonlRecorder::from_writer(Box::new(FailingWriter { remaining: 0 }));
        let row = MetricRow::new("r", "train", 0).scalar("x", 1.0);
        rec.record(&row); // buffered: BufWriter absorbs it
        rec.flush(); // flush surfaces the write error
        let first = rec.first_error().expect("sink must report the failure");
        assert!(first.contains("disk full"), "{first}");
        // Poisoned: later rows and flushes are no-ops keeping the first error.
        rec.record(&row);
        rec.flush();
        assert_eq!(rec.first_error().unwrap(), first);
    }
}
