//! The self-describing run manifest written next to `metrics.jsonl`.

use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// Metadata that makes a metrics file interpretable on its own: which run
/// produced it, on which environment, with which attack/defense variant and
/// seed, when, and under what configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Unique-enough identifier; every `MetricRow` of the run carries it.
    pub run_id: String,
    /// Environment / task name (e.g. `"Hopper"`, `"YouShallNotPass"`).
    pub env: String,
    /// Attack or defense variant (e.g. `"IMAP-PC+BR"`, `"wocar"`, `"table1"`).
    pub variant: String,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Wall-clock start time, milliseconds since the Unix epoch.
    pub start_unix_ms: u64,
    /// Free-form configuration snapshot (hyperparameters, budget, flags).
    #[serde(default, skip_serializing_if = "serde_json::Value::is_null")]
    pub config: serde_json::Value,
    /// First I/O error the metrics sink swallowed, stamped at finish.
    /// Absent while the run is healthy; a present value means
    /// `metrics.jsonl` is incomplete from that point on.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub io_error: Option<String>,
}

impl RunManifest {
    /// A manifest stamped with the current wall-clock time.
    pub fn new(run_id: &str, env: &str, variant: &str, seed: u64) -> Self {
        let start_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        RunManifest {
            run_id: run_id.to_string(),
            env: env.to_string(),
            variant: variant.to_string(),
            seed,
            start_unix_ms,
            config: serde_json::Value::Null,
            io_error: None,
        }
    }

    /// Attaches a configuration snapshot.
    pub fn with_config(mut self, config: serde_json::Value) -> Self {
        self.config = config;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = RunManifest::new("attack-hopper-seed17", "Hopper", "IMAP-PC", 17)
            .with_config(serde_json::json!({"iterations": 40, "steps_per_iter": 2048}));
        let json = serde_json::to_string_pretty(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.config["iterations"], 40);
    }

    #[test]
    fn null_config_is_omitted() {
        let m = RunManifest::new("r", "Hopper", "ppo", 0);
        let json = serde_json::to_string(&m).unwrap();
        assert!(!json.contains("\"config\""));
    }
}
