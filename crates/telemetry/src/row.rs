//! The typed per-iteration metric row — the unit every sink records.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One structured telemetry record.
///
/// A row is self-describing: it carries the run it belongs to, the phase of
/// the pipeline that produced it (`"train"`, `"attack"`, `"eval"`, a table
/// name, ...), and the iteration index within that phase. Payloads are split
/// into float `scalars` (losses, returns, rates), integer `counters`
/// (environment steps, episode counts), and string `tags` (task / victim /
/// attack labels for table cells).
///
/// `BTreeMap` keeps key order deterministic, so serialized rows diff cleanly
/// across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRow {
    /// Identifier of the run this row belongs to (see `RunManifest`).
    pub run_id: String,
    /// Pipeline phase that produced the row.
    pub phase: String,
    /// Iteration index within the phase (0-based).
    pub iteration: u64,
    /// Float-valued metrics.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub scalars: BTreeMap<String, f64>,
    /// Integer-valued metrics (monotone counters, counts).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub counters: BTreeMap<String, u64>,
    /// String labels identifying what the row measures.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub tags: BTreeMap<String, String>,
}

impl MetricRow {
    /// A row with empty payloads.
    pub fn new(run_id: &str, phase: &str, iteration: u64) -> Self {
        MetricRow {
            run_id: run_id.to_string(),
            phase: phase.to_string(),
            iteration,
            scalars: BTreeMap::new(),
            counters: BTreeMap::new(),
            tags: BTreeMap::new(),
        }
    }

    /// Adds a float metric.
    pub fn scalar(mut self, key: &str, value: f64) -> Self {
        self.scalars.insert(key.to_string(), value);
        self
    }

    /// Adds an integer metric.
    pub fn counter(mut self, key: &str, value: u64) -> Self {
        self.counters.insert(key.to_string(), value);
        self
    }

    /// Adds a string label.
    pub fn tag(mut self, key: &str, value: &str) -> Self {
        self.tags.insert(key.to_string(), value.to_string());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_populates_all_payloads() {
        let row = MetricRow::new("r1", "train", 3)
            .scalar("mean_return", 12.5)
            .counter("total_steps", 4096)
            .tag("task", "Hopper");
        assert_eq!(row.run_id, "r1");
        assert_eq!(row.scalars["mean_return"], 12.5);
        assert_eq!(row.counters["total_steps"], 4096);
        assert_eq!(row.tags["task"], "Hopper");
    }

    #[test]
    fn empty_payloads_are_omitted_from_json() {
        let row = MetricRow::new("r1", "train", 0).scalar("x", 1.0);
        let json = serde_json::to_string(&row).unwrap();
        assert!(json.contains("\"scalars\""));
        assert!(!json.contains("\"counters\""));
        assert!(!json.contains("\"tags\""));
    }

    #[test]
    fn json_roundtrip_preserves_fields() {
        let row = MetricRow::new("run-7", "attack", 41)
            .scalar("asr", 0.875)
            .scalar("tau", 0.31)
            .counter("steps", 81920)
            .tag("attack", "IMAP-PC+BR");
        let json = serde_json::to_string(&row).unwrap();
        let back: MetricRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back, row);
    }
}
