//! Wall-clock span accumulation and the end-of-run timing breakdown.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::Mutex;

/// Accumulated wall time for one named phase.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpanAcc {
    pub(crate) total: Duration,
    pub(crate) calls: u64,
}

/// Thread-safe per-name span accumulator.
#[derive(Debug, Default)]
pub(crate) struct Timings {
    spans: Mutex<BTreeMap<&'static str, SpanAcc>>,
}

impl Timings {
    pub(crate) fn add(&self, name: &'static str, elapsed: Duration) {
        let mut spans = self.spans.lock();
        let acc = spans.entry(name).or_default();
        acc.total += elapsed;
        acc.calls += 1;
    }

    /// Merges an externally-accumulated span (e.g. from a child process's
    /// timing report) into the accumulator in one step.
    pub(crate) fn add_bulk(&self, name: &'static str, total: Duration, calls: u64) {
        let mut spans = self.spans.lock();
        let acc = spans.entry(name).or_default();
        acc.total += total;
        acc.calls += calls;
    }

    pub(crate) fn snapshot(&self) -> Vec<SpanStat> {
        let spans = self.spans.lock();
        let mut stats: Vec<SpanStat> = spans
            .iter()
            .map(|(name, acc)| SpanStat {
                name: (*name).to_string(),
                calls: acc.calls,
                total: acc.total,
            })
            .collect();
        stats.sort_by_key(|s| std::cmp::Reverse(s.total));
        stats
    }
}

/// Interns a dynamic span name into a `&'static str` so externally-sourced
/// names (child-process timing reports carry `String`s) can enter the
/// `&'static str`-keyed accumulator. Each distinct name leaks once; span
/// names form a small fixed vocabulary, so the leak is bounded.
pub(crate) fn intern(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::OnceLock;
    static NAMES: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = NAMES.get_or_init(Default::default).lock();
    if let Some(existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Aggregated timing of one named span.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanStat {
    /// Span name as passed to `Telemetry::span`.
    pub name: String,
    /// Number of completed span guards.
    pub calls: u64,
    /// Total wall time across all calls.
    pub total: Duration,
}

impl SpanStat {
    /// Mean wall time per call.
    pub fn mean(&self) -> Duration {
        if self.calls == 0 {
            Duration::ZERO
        } else {
            self.total / self.calls as u32
        }
    }
}

/// The end-of-run per-phase wall-time breakdown.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimingReport {
    /// The run the report describes.
    pub run_id: String,
    /// Spans sorted by total time, descending.
    pub spans: Vec<SpanStat>,
}

impl TimingReport {
    /// Sum of all span totals. Spans may nest, so this can exceed the real
    /// wall clock; shares in [`TimingReport::render`] are of this sum.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|s| s.total).sum()
    }

    /// Renders the human-readable breakdown table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== timing breakdown (run {}) ==\n", self.run_id));
        if self.spans.is_empty() {
            out.push_str("(no spans recorded)\n");
            return out;
        }
        let total = self.total().as_secs_f64().max(1e-12);
        out.push_str(&format!(
            "{:<24} {:>8} {:>12} {:>12} {:>7}\n",
            "span", "calls", "total", "mean", "share"
        ));
        for s in &self.spans {
            out.push_str(&format!(
                "{:<24} {:>8} {:>11.3}s {:>10.3}ms {:>6.1}%\n",
                s.name,
                s.calls,
                s.total.as_secs_f64(),
                s.mean().as_secs_f64() * 1e3,
                100.0 * s.total.as_secs_f64() / total
            ));
        }
        out.push_str(&format!(
            "span-time sum: {:.3}s\n",
            self.total().as_secs_f64()
        ));
        out
    }

    /// One-line human summary: the top spans by total time with their
    /// share of the span-time sum. The full breakdown lives as structured
    /// `timing`-phase rows in `metrics.jsonl` and in `report.json`.
    pub fn summary_line(&self) -> String {
        if self.spans.is_empty() {
            return format!("timing ({}): no spans recorded", self.run_id);
        }
        let total = self.total().as_secs_f64().max(1e-12);
        let top: Vec<String> = self
            .spans
            .iter()
            .take(4)
            .map(|s| {
                format!(
                    "{} {:.3}s ({:.1}%)",
                    s.name,
                    s.total.as_secs_f64(),
                    100.0 * s.total.as_secs_f64() / total
                )
            })
            .collect();
        let more = self.spans.len().saturating_sub(4);
        let tail = if more > 0 {
            format!(", +{more} more")
        } else {
            String::new()
        };
        format!("timing ({}): {}{}", self.run_id, top.join(", "), tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_accumulate_monotonically() {
        let t = Timings::default();
        t.add("collect_rollout", Duration::from_millis(5));
        let after_one = t.snapshot();
        assert_eq!(after_one.len(), 1);
        assert_eq!(after_one[0].calls, 1);
        let total_one = after_one[0].total;

        t.add("collect_rollout", Duration::from_millis(3));
        t.add("update_policy", Duration::from_millis(1));
        let after_three = t.snapshot();
        assert_eq!(after_three.len(), 2);
        let rollout = after_three
            .iter()
            .find(|s| s.name == "collect_rollout")
            .unwrap();
        assert_eq!(rollout.calls, 2);
        assert!(
            rollout.total > total_one,
            "span totals must only ever grow: {:?} -> {:?}",
            total_one,
            rollout.total
        );
    }

    #[test]
    fn snapshot_sorts_by_total_descending() {
        let t = Timings::default();
        t.add("small", Duration::from_millis(1));
        t.add("big", Duration::from_millis(100));
        let stats = t.snapshot();
        assert_eq!(stats[0].name, "big");
        assert_eq!(stats[1].name, "small");
    }

    #[test]
    fn report_renders_every_span() {
        let report = TimingReport {
            run_id: "r".into(),
            spans: vec![
                SpanStat {
                    name: "collect_rollout".into(),
                    calls: 4,
                    total: Duration::from_millis(40),
                },
                SpanStat {
                    name: "update_policy".into(),
                    calls: 4,
                    total: Duration::from_millis(10),
                },
            ],
        };
        let text = report.render();
        assert!(text.contains("collect_rollout"));
        assert!(text.contains("update_policy"));
        assert_eq!(report.total(), Duration::from_millis(50));
        let line = report.summary_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("collect_rollout"));
        assert!(line.contains("80.0%"));
    }

    #[test]
    fn mean_handles_zero_calls() {
        let s = SpanStat {
            name: "x".into(),
            calls: 0,
            total: Duration::ZERO,
        };
        assert_eq!(s.mean(), Duration::ZERO);
    }
}
