//! The [`Telemetry`] handle threaded through every trainer.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::manifest::RunManifest;
use crate::metrics::MetricsRegistry;
use crate::recorder::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder};
use crate::row::MetricRow;
use crate::span::{TimingReport, Timings};
use crate::trace::{chrome_trace_json, spans_jsonl, TraceGuard, Tracer};

struct Inner {
    run_id: String,
    enabled: bool,
    recorder: Arc<dyn Recorder>,
    timings: Timings,
    out_dir: Option<PathBuf>,
    /// Manifest as written at open; re-written at finish when the sink
    /// swallowed an I/O error.
    manifest: Option<RunManifest>,
    /// Hierarchical span tracer (`--trace`); `None` keeps spans
    /// timing-only and skips all trace bookkeeping.
    tracer: Option<Arc<Tracer>>,
    metrics: MetricsRegistry,
}

/// A cheaply cloneable (`Arc`-backed) telemetry handle bundling a metric
/// sink, the span-timer accumulator, the hierarchical tracer, the metrics
/// registry, and the run identity.
///
/// The default handle is disabled: `record` returns immediately and `span`
/// guards never read the clock, so instrumented hot loops pay nothing when
/// nobody is listening.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("run_id", &self.inner.run_id)
            .field("enabled", &self.inner.enabled)
            .field("traced", &self.inner.tracer.is_some())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::null()
    }
}

impl Telemetry {
    fn from_parts(
        run_id: String,
        enabled: bool,
        recorder: Arc<dyn Recorder>,
        out_dir: Option<PathBuf>,
        manifest: Option<RunManifest>,
        trace: bool,
    ) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                run_id,
                enabled,
                recorder,
                timings: Timings::default(),
                out_dir,
                manifest,
                tracer: trace.then(Tracer::new),
                metrics: MetricsRegistry::new(),
            }),
        }
    }

    /// The disabled handle: a true no-op on the hot path.
    pub fn null() -> Self {
        Telemetry::from_parts(
            String::new(),
            false,
            Arc::new(NullRecorder),
            None,
            None,
            false,
        )
    }

    /// An in-memory handle; the returned recorder reads the rows back.
    pub fn memory(run_id: &str) -> (Self, Arc<MemoryRecorder>) {
        Telemetry::memory_opts(run_id, false)
    }

    /// [`Telemetry::memory`] with span tracing opted in (tests).
    pub fn memory_opts(run_id: &str, trace: bool) -> (Self, Arc<MemoryRecorder>) {
        let recorder = Arc::new(MemoryRecorder::new());
        let tel = Telemetry::from_parts(
            run_id.to_string(),
            true,
            recorder.clone() as Arc<dyn Recorder>,
            None,
            None,
            trace,
        );
        (tel, recorder)
    }

    /// A JSONL handle rooted at `dir`: writes `manifest.json` immediately
    /// and streams rows to `metrics.jsonl`; [`Telemetry::finish`] adds
    /// structured timing rows plus `report.json` (and `trace.json` when
    /// tracing).
    pub fn jsonl(dir: impl AsRef<Path>, manifest: &RunManifest) -> io::Result<Self> {
        Telemetry::jsonl_opts(dir, manifest, false)
    }

    /// [`Telemetry::jsonl`] with hierarchical span tracing opted in
    /// (`--trace`): finish additionally drains the tracer into
    /// `trace.json` (Chrome `trace_event`) and `spans.jsonl`.
    pub fn jsonl_opts(
        dir: impl AsRef<Path>,
        manifest: &RunManifest,
        trace: bool,
    ) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest_json = serde_json::to_vec_pretty(manifest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(dir.join("manifest.json"), manifest_json)?;
        let recorder = JsonlRecorder::create(&dir.join("metrics.jsonl"))?;
        Ok(Telemetry::from_parts(
            manifest.run_id.clone(),
            true,
            Arc::new(recorder),
            Some(dir),
            Some(manifest.clone()),
            trace,
        ))
    }

    /// [`Telemetry::jsonl`] in live mode: `metrics.jsonl` is flushed after
    /// every row so a concurrent reader (a service client tailing a job)
    /// sees rows as they are recorded, not at buffer boundaries. One
    /// syscall per row — use for interactive runs, not tight benchmarks.
    pub fn jsonl_live(dir: impl AsRef<Path>, manifest: &RunManifest) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest_json = serde_json::to_vec_pretty(manifest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(dir.join("manifest.json"), manifest_json)?;
        let recorder = JsonlRecorder::create_live(&dir.join("metrics.jsonl"))?;
        Ok(Telemetry::from_parts(
            manifest.run_id.clone(),
            true,
            Arc::new(recorder),
            Some(dir),
            Some(manifest.clone()),
            false,
        ))
    }

    /// An enabled handle streaming rows into an arbitrary [`Recorder`],
    /// with no artifact directory, manifest, or tracer. The process
    /// isolation layer uses this in `run-cell` children: rows go to a
    /// recorder that frames them over the stdout pipe, and the parent
    /// re-records them into its own sinks.
    pub fn with_recorder(run_id: &str, recorder: Arc<dyn Recorder>) -> Self {
        Telemetry::from_parts(run_id.to_string(), true, recorder, None, None, false)
    }

    /// Merges a child process's [`TimingReport`] into this handle's span
    /// accumulators, re-parenting the child's wall-time breakdown into the
    /// parent's timing rows and `report.json`. A no-op on the disabled
    /// handle.
    pub fn absorb_timing(&self, report: &TimingReport) {
        if !self.inner.enabled {
            return;
        }
        for s in &report.spans {
            self.inner
                .timings
                .add_bulk(crate::span::intern(&s.name), s.total, s.calls);
        }
    }

    /// The run identifier stamped on every row (empty when disabled).
    pub fn run_id(&self) -> &str {
        &self.inner.run_id
    }

    /// False for the null handle.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// True when hierarchical span tracing is on for this run.
    pub fn trace_enabled(&self) -> bool {
        self.inner.tracer.is_some()
    }

    /// The artifact directory of a JSONL handle (`None` otherwise).
    pub fn out_dir(&self) -> Option<&Path> {
        self.inner.out_dir.as_deref()
    }

    /// The run's metric registry (counters/gauges/histograms). Usable on
    /// any handle; only enabled handles report it in `report.json`.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Records a row of float metrics under `phase` / `iteration`.
    pub fn record(&self, phase: &str, iteration: u64, scalars: &[(&str, f64)]) {
        self.record_full(phase, iteration, scalars, &[], &[]);
    }

    /// Records a row with scalars, counters, and tags. The disabled handle
    /// returns before building anything.
    pub fn record_full(
        &self,
        phase: &str,
        iteration: u64,
        scalars: &[(&str, f64)],
        counters: &[(&str, u64)],
        tags: &[(&str, &str)],
    ) {
        if !self.inner.enabled {
            return;
        }
        let mut row = MetricRow::new(&self.inner.run_id, phase, iteration);
        for &(k, v) in scalars {
            row.scalars.insert(k.to_string(), v);
        }
        for &(k, v) in counters {
            row.counters.insert(k.to_string(), v);
        }
        for &(k, v) in tags {
            row.tags.insert(k.to_string(), v.to_string());
        }
        self.inner.recorder.record(&row);
    }

    /// Records a pre-built row (the run id is overwritten with this run's).
    pub fn record_row(&self, mut row: MetricRow) {
        if !self.inner.enabled {
            return;
        }
        row.run_id = self.inner.run_id.clone();
        self.inner.recorder.record(&row);
    }

    /// Starts an RAII wall-time span: the elapsed time between this call
    /// and the guard's drop is added to `name`'s accumulator, and — when
    /// tracing — a trace span of the same name opens under the thread's
    /// current span. On the disabled handle the guard is inert and the
    /// clock is never read.
    pub fn span(&self, name: &'static str) -> Span {
        if !self.inner.enabled {
            return Span {
                active: None,
                trace: None,
            };
        }
        Span {
            trace: self.inner.tracer.as_ref().map(|t| t.start(name)),
            active: Some((self.clone(), name, Instant::now())),
        }
    }

    /// [`Telemetry::span`] with a per-instance label: wall time accumulates
    /// under the static `name`, while the trace span carries the dynamic
    /// `label` (e.g. `name = "cell"`, `label = "Hopper/SA-RL"`).
    pub fn span_labeled(&self, name: &'static str, label: &str) -> Span {
        if !self.inner.enabled {
            return Span {
                active: None,
                trace: None,
            };
        }
        Span {
            trace: self.inner.tracer.as_ref().map(|t| t.start(label)),
            active: Some((self.clone(), name, Instant::now())),
        }
    }

    /// The innermost open trace span id on this thread (0 when none or
    /// when tracing is off). Capture before spawning a worker and pass to
    /// the worker's [`Telemetry::set_thread_parent`].
    pub fn current_span_id(&self) -> u64 {
        self.inner.tracer.as_ref().map_or(0, |t| t.current())
    }

    /// Adopts `parent` as this thread's root trace parent, stitching
    /// cross-thread spans (supervisor → worker, trainer → sampler actor)
    /// into one tree. A no-op when tracing is off.
    pub fn set_thread_parent(&self, parent: u64) {
        if let Some(t) = &self.inner.tracer {
            t.set_thread_parent(parent);
        }
    }

    pub(crate) fn add_span_time(&self, name: &'static str, elapsed: std::time::Duration) {
        self.inner.timings.add(name, elapsed);
    }

    /// A snapshot of the per-span timing breakdown so far.
    pub fn timing_report(&self) -> TimingReport {
        TimingReport {
            run_id: self.inner.run_id.clone(),
            spans: self.inner.timings.snapshot(),
        }
    }

    /// Finalizes the run's artifacts and returns a one-line timing summary
    /// (`None` on the disabled handle):
    ///
    /// 1. the per-span timing breakdown becomes structured `timing`-phase
    ///    rows in the metric stream (the former free-form `timing.txt`);
    /// 2. the sink is flushed; a swallowed I/O error is re-stamped into
    ///    `manifest.json` (`io_error`);
    /// 3. JSONL handles write `report.json` (metrics registry snapshot +
    ///    timing breakdown), and — when tracing — `trace.json` (Chrome
    ///    `trace_event`) plus `spans.jsonl`.
    pub fn finish(&self) -> Option<String> {
        if !self.inner.enabled {
            return None;
        }
        let timing = self.timing_report();
        for s in &timing.spans {
            self.record_full(
                "timing",
                0,
                &[
                    ("total_s", s.total.as_secs_f64()),
                    ("mean_ms", s.mean().as_secs_f64() * 1e3),
                ],
                &[("calls", s.calls)],
                &[("span", &s.name)],
            );
        }
        self.inner.recorder.flush();
        let io_error = self.inner.recorder.first_error();

        if let Some(dir) = &self.inner.out_dir {
            if let (Some(err), Some(manifest)) = (&io_error, &self.inner.manifest) {
                let mut stamped = manifest.clone();
                stamped.io_error = Some(err.clone());
                if let Ok(json) = serde_json::to_vec_pretty(&stamped) {
                    let _ = std::fs::write(dir.join("manifest.json"), json);
                }
            }
            let spans = self
                .inner
                .tracer
                .as_ref()
                .map(|t| t.drain())
                .unwrap_or_default();
            if self.inner.tracer.is_some() {
                let _ = std::fs::write(dir.join("trace.json"), chrome_trace_json(&spans));
                let _ = std::fs::write(dir.join("spans.jsonl"), spans_jsonl(&spans));
            }
            let report = serde_json::json!({
                "run_id": self.inner.run_id,
                "metrics": self.inner.metrics.snapshot(),
                "timing": timing,
                "trace_spans": spans.len(),
                "io_error": io_error,
            });
            if let Ok(json) = serde_json::to_vec_pretty(&report) {
                let _ = std::fs::write(dir.join("report.json"), json);
            }
        }
        Some(timing.summary_line())
    }
}

/// The RAII guard returned by [`Telemetry::span`].
pub struct Span {
    active: Option<(Telemetry, &'static str, Instant)>,
    /// Trace twin of the timing span; recorded into the tracer on drop.
    trace: Option<TraceGuard>,
}

impl Span {
    /// The trace span id (0 when tracing is off or the handle disabled);
    /// hand to [`Telemetry::set_thread_parent`] in spawned workers.
    pub fn trace_id(&self) -> u64 {
        self.trace.as_ref().map_or(0, TraceGuard::id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((tel, name, start)) = self.active.take() {
            tel.add_span_time(name, start.elapsed());
        }
    }
}

/// Opens a scope-bound span on a [`Telemetry`] handle:
/// `span!(telemetry, "collect_rollout");` times the rest of the enclosing
/// scope.
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:expr) => {
        let _span_guard = $telemetry.span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStat;

    #[test]
    fn null_handle_is_inert() {
        let tel = Telemetry::null();
        assert!(!tel.is_enabled());
        assert!(!tel.trace_enabled());
        tel.record("train", 0, &[("x", 1.0)]);
        {
            let _s = tel.span("collect_rollout");
        }
        assert!(
            tel.timing_report().spans.is_empty(),
            "no clock on null path"
        );
        assert_eq!(tel.current_span_id(), 0);
        assert!(tel.finish().is_none());
    }

    #[test]
    fn memory_handle_records_and_reads_back() {
        let (tel, mem) = Telemetry::memory("mem-run");
        tel.record_full(
            "train",
            2,
            &[("mean_return", 5.0)],
            &[("total_steps", 512)],
            &[("task", "Hopper")],
        );
        let rows = mem.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].run_id, "mem-run");
        assert_eq!(rows[0].iteration, 2);
        assert_eq!(rows[0].counters["total_steps"], 512);
        assert_eq!(rows[0].tags["task"], "Hopper");
    }

    #[test]
    fn spans_accumulate_across_guards() {
        let (tel, _mem) = Telemetry::memory("span-run");
        for _ in 0..3 {
            let _s = tel.span("phase_a");
        }
        let report = tel.timing_report();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].calls, 3);
        let first_total = report.spans[0].total;
        {
            let _s = tel.span("phase_a");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let later = tel.timing_report();
        assert_eq!(later.spans[0].calls, 4);
        assert!(
            later.spans[0].total > first_total,
            "accumulation is monotone"
        );
    }

    #[test]
    fn span_macro_times_enclosing_scope() {
        let (tel, _mem) = Telemetry::memory("macro-run");
        {
            span!(tel, "macro_phase");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let report = tel.timing_report();
        assert_eq!(report.spans[0].name, "macro_phase");
        assert_eq!(report.spans[0].calls, 1);
    }

    #[test]
    fn traced_memory_handle_builds_a_span_tree() {
        let (tel, _mem) = Telemetry::memory_opts("traced-run", true);
        assert!(tel.trace_enabled());
        {
            let outer = tel.span("outer");
            assert_eq!(tel.current_span_id(), outer.trace_id());
            let _inner = tel.span_labeled("cell", "Hopper ppo SA-RL");
        }
        assert_eq!(tel.current_span_id(), 0);
        // Timing accumulates under the static name, not the label.
        let names: Vec<String> = tel
            .timing_report()
            .spans
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert!(names.contains(&"cell".to_string()));
        assert!(names.contains(&"outer".to_string()));
    }

    #[test]
    fn metrics_registry_is_shared_across_clones() {
        let (tel, _mem) = Telemetry::memory("metrics-run");
        let clone = tel.clone();
        clone.metrics().counter("pool/retries").inc();
        assert_eq!(tel.metrics().counter("pool/retries").get(), 1);
    }

    #[test]
    fn with_recorder_streams_rows_and_absorb_timing_merges_spans() {
        let sink = Arc::new(MemoryRecorder::new());
        let child = Telemetry::with_recorder("child-run", sink.clone());
        assert!(child.is_enabled());
        child.record("train", 3, &[("x", 1.0)]);
        assert_eq!(sink.rows().len(), 1);
        assert_eq!(sink.rows()[0].run_id, "child-run");

        let (parent, _mem) = Telemetry::memory("parent-run");
        {
            let _s = parent.span("attack_cell");
        }
        parent.absorb_timing(&TimingReport {
            run_id: "child-run".into(),
            spans: vec![
                SpanStat {
                    name: "attack_cell".into(),
                    calls: 2,
                    total: std::time::Duration::from_millis(10),
                },
                SpanStat {
                    name: "victim_train".into(),
                    calls: 1,
                    total: std::time::Duration::from_millis(5),
                },
            ],
        });
        let report = parent.timing_report();
        let attack = report
            .spans
            .iter()
            .find(|s| s.name == "attack_cell")
            .unwrap();
        assert_eq!(attack.calls, 3, "absorbed calls add to local ones");
        assert!(attack.total >= std::time::Duration::from_millis(10));
        assert!(report.spans.iter().any(|s| s.name == "victim_train"));
    }

    #[test]
    fn jsonl_handle_writes_manifest_metrics_timing_rows_and_report() {
        let dir = std::env::temp_dir().join("imap-telemetry-test-handle");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = RunManifest::new("jsonl-run", "Hopper", "IMAP-SC", 9)
            .with_config(serde_json::json!({"iterations": 2}));
        let tel = Telemetry::jsonl(&dir, &manifest).unwrap();
        tel.record("train", 0, &[("mean_return", 1.0)]);
        tel.record("train", 1, &[("mean_return", 2.0)]);
        tel.metrics().counter("train/iterations").add(2);
        {
            let _s = tel.span("collect_rollout");
        }
        let rendered = tel.finish().unwrap();
        assert!(rendered.contains("collect_rollout"));

        let manifest_back: RunManifest =
            serde_json::from_slice(&std::fs::read(dir.join("manifest.json")).unwrap()).unwrap();
        assert_eq!(manifest_back, manifest);
        assert!(manifest_back.io_error.is_none());
        let text = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
        let rows: Vec<MetricRow> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        let train_rows: Vec<_> = rows.iter().filter(|r| r.phase == "train").collect();
        assert_eq!(train_rows.len(), 2);
        assert_eq!(train_rows[1].scalars["mean_return"], 2.0);
        // Satellite: timing.txt is gone; the breakdown is structured rows.
        assert!(!dir.join("timing.txt").exists());
        let timing_rows: Vec<_> = rows.iter().filter(|r| r.phase == "timing").collect();
        assert_eq!(timing_rows.len(), 1);
        assert_eq!(timing_rows[0].tags["span"], "collect_rollout");
        assert_eq!(timing_rows[0].counters["calls"], 1);
        // report.json carries the metrics registry snapshot.
        let report: serde_json::Value =
            serde_json::from_slice(&std::fs::read(dir.join("report.json")).unwrap()).unwrap();
        assert_eq!(report["run_id"], "jsonl-run");
        assert_eq!(report["metrics"]["counters"]["train/iterations"], 2);
        // Tracing off: no trace artifacts.
        assert!(!dir.join("trace.json").exists());
    }

    #[test]
    fn traced_jsonl_handle_writes_chrome_trace() {
        let dir = std::env::temp_dir().join("imap-telemetry-test-trace");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = RunManifest::new("trace-run", "Hopper", "ppo", 1);
        let tel = Telemetry::jsonl_opts(&dir, &manifest, true).unwrap();
        {
            let _sweep = tel.span("sweep");
            let _cell = tel.span_labeled("cell", "Hopper ppo");
        }
        tel.finish().unwrap();
        let doc: serde_json::Value =
            serde_json::from_slice(&std::fs::read(dir.join("trace.json")).unwrap()).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        let spans: Vec<crate::trace::SpanRecord> = std::fs::read_to_string(dir.join("spans.jsonl"))
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        crate::trace::validate(&spans).unwrap();
        let cell = spans.iter().find(|s| s.name == "Hopper ppo").unwrap();
        let sweep = spans.iter().find(|s| s.name == "sweep").unwrap();
        assert_eq!(cell.parent, sweep.id);
    }
}
