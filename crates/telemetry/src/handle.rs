//! The [`Telemetry`] handle threaded through every trainer.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::manifest::RunManifest;
use crate::recorder::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder};
use crate::row::MetricRow;
use crate::span::{TimingReport, Timings};

struct Inner {
    run_id: String,
    enabled: bool,
    recorder: Arc<dyn Recorder>,
    timings: Timings,
    out_dir: Option<PathBuf>,
}

/// A cheaply cloneable (`Arc`-backed) telemetry handle bundling a metric
/// sink, the span-timer accumulator, and the run identity.
///
/// The default handle is disabled: `record` returns immediately and `span`
/// guards never read the clock, so instrumented hot loops pay nothing when
/// nobody is listening.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("run_id", &self.inner.run_id)
            .field("enabled", &self.inner.enabled)
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::null()
    }
}

impl Telemetry {
    fn from_parts(
        run_id: String,
        enabled: bool,
        recorder: Arc<dyn Recorder>,
        out_dir: Option<PathBuf>,
    ) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                run_id,
                enabled,
                recorder,
                timings: Timings::default(),
                out_dir,
            }),
        }
    }

    /// The disabled handle: a true no-op on the hot path.
    pub fn null() -> Self {
        Telemetry::from_parts(String::new(), false, Arc::new(NullRecorder), None)
    }

    /// An in-memory handle; the returned recorder reads the rows back.
    pub fn memory(run_id: &str) -> (Self, Arc<MemoryRecorder>) {
        let recorder = Arc::new(MemoryRecorder::new());
        let tel = Telemetry::from_parts(
            run_id.to_string(),
            true,
            recorder.clone() as Arc<dyn Recorder>,
            None,
        );
        (tel, recorder)
    }

    /// A JSONL handle rooted at `dir`: writes `manifest.json` immediately
    /// and streams rows to `metrics.jsonl`; [`Telemetry::finish`] adds
    /// `timing.txt`.
    pub fn jsonl(dir: impl AsRef<Path>, manifest: &RunManifest) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest_json = serde_json::to_vec_pretty(manifest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(dir.join("manifest.json"), manifest_json)?;
        let recorder = JsonlRecorder::create(&dir.join("metrics.jsonl"))?;
        Ok(Telemetry::from_parts(
            manifest.run_id.clone(),
            true,
            Arc::new(recorder),
            Some(dir),
        ))
    }

    /// The run identifier stamped on every row (empty when disabled).
    pub fn run_id(&self) -> &str {
        &self.inner.run_id
    }

    /// False for the null handle.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Records a row of float metrics under `phase` / `iteration`.
    pub fn record(&self, phase: &str, iteration: u64, scalars: &[(&str, f64)]) {
        self.record_full(phase, iteration, scalars, &[], &[]);
    }

    /// Records a row with scalars, counters, and tags. The disabled handle
    /// returns before building anything.
    pub fn record_full(
        &self,
        phase: &str,
        iteration: u64,
        scalars: &[(&str, f64)],
        counters: &[(&str, u64)],
        tags: &[(&str, &str)],
    ) {
        if !self.inner.enabled {
            return;
        }
        let mut row = MetricRow::new(&self.inner.run_id, phase, iteration);
        for &(k, v) in scalars {
            row.scalars.insert(k.to_string(), v);
        }
        for &(k, v) in counters {
            row.counters.insert(k.to_string(), v);
        }
        for &(k, v) in tags {
            row.tags.insert(k.to_string(), v.to_string());
        }
        self.inner.recorder.record(&row);
    }

    /// Records a pre-built row (the run id is overwritten with this run's).
    pub fn record_row(&self, mut row: MetricRow) {
        if !self.inner.enabled {
            return;
        }
        row.run_id = self.inner.run_id.clone();
        self.inner.recorder.record(&row);
    }

    /// Starts an RAII wall-time span: the elapsed time between this call
    /// and the guard's drop is added to `name`'s accumulator. On the
    /// disabled handle the guard is inert and the clock is never read.
    pub fn span(&self, name: &'static str) -> Span {
        if !self.inner.enabled {
            return Span { active: None };
        }
        Span {
            active: Some((self.clone(), name, Instant::now())),
        }
    }

    pub(crate) fn add_span_time(&self, name: &'static str, elapsed: std::time::Duration) {
        self.inner.timings.add(name, elapsed);
    }

    /// A snapshot of the per-span timing breakdown so far.
    pub fn timing_report(&self) -> TimingReport {
        TimingReport {
            run_id: self.inner.run_id.clone(),
            spans: self.inner.timings.snapshot(),
        }
    }

    /// Flushes the sink, writes `timing.txt` beside the metrics file (JSONL
    /// handles only), and returns the rendered per-phase breakdown. Returns
    /// `None` on the disabled handle.
    pub fn finish(&self) -> Option<String> {
        if !self.inner.enabled {
            return None;
        }
        self.inner.recorder.flush();
        let rendered = self.timing_report().render();
        if let Some(dir) = &self.inner.out_dir {
            let _ = std::fs::write(dir.join("timing.txt"), &rendered);
        }
        Some(rendered)
    }
}

/// The RAII guard returned by [`Telemetry::span`].
pub struct Span {
    active: Option<(Telemetry, &'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((tel, name, start)) = self.active.take() {
            tel.add_span_time(name, start.elapsed());
        }
    }
}

/// Opens a scope-bound span on a [`Telemetry`] handle:
/// `span!(telemetry, "collect_rollout");` times the rest of the enclosing
/// scope.
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:expr) => {
        let _span_guard = $telemetry.span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_is_inert() {
        let tel = Telemetry::null();
        assert!(!tel.is_enabled());
        tel.record("train", 0, &[("x", 1.0)]);
        {
            let _s = tel.span("collect_rollout");
        }
        assert!(
            tel.timing_report().spans.is_empty(),
            "no clock on null path"
        );
        assert!(tel.finish().is_none());
    }

    #[test]
    fn memory_handle_records_and_reads_back() {
        let (tel, mem) = Telemetry::memory("mem-run");
        tel.record_full(
            "train",
            2,
            &[("mean_return", 5.0)],
            &[("total_steps", 512)],
            &[("task", "Hopper")],
        );
        let rows = mem.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].run_id, "mem-run");
        assert_eq!(rows[0].iteration, 2);
        assert_eq!(rows[0].counters["total_steps"], 512);
        assert_eq!(rows[0].tags["task"], "Hopper");
    }

    #[test]
    fn spans_accumulate_across_guards() {
        let (tel, _mem) = Telemetry::memory("span-run");
        for _ in 0..3 {
            let _s = tel.span("phase_a");
        }
        let report = tel.timing_report();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].calls, 3);
        let first_total = report.spans[0].total;
        {
            let _s = tel.span("phase_a");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let later = tel.timing_report();
        assert_eq!(later.spans[0].calls, 4);
        assert!(
            later.spans[0].total > first_total,
            "accumulation is monotone"
        );
    }

    #[test]
    fn span_macro_times_enclosing_scope() {
        let (tel, _mem) = Telemetry::memory("macro-run");
        {
            span!(tel, "macro_phase");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let report = tel.timing_report();
        assert_eq!(report.spans[0].name, "macro_phase");
        assert_eq!(report.spans[0].calls, 1);
    }

    #[test]
    fn jsonl_handle_writes_manifest_metrics_and_timing() {
        let dir = std::env::temp_dir().join("imap-telemetry-test-handle");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = RunManifest::new("jsonl-run", "Hopper", "IMAP-SC", 9)
            .with_config(serde_json::json!({"iterations": 2}));
        let tel = Telemetry::jsonl(&dir, &manifest).unwrap();
        tel.record("train", 0, &[("mean_return", 1.0)]);
        tel.record("train", 1, &[("mean_return", 2.0)]);
        {
            let _s = tel.span("collect_rollout");
        }
        let rendered = tel.finish().unwrap();
        assert!(rendered.contains("collect_rollout"));

        let manifest_back: RunManifest =
            serde_json::from_slice(&std::fs::read(dir.join("manifest.json")).unwrap()).unwrap();
        assert_eq!(manifest_back, manifest);
        let text = std::fs::read_to_string(dir.join("metrics.jsonl")).unwrap();
        let rows: Vec<MetricRow> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].scalars["mean_return"], 2.0);
        assert!(dir.join("timing.txt").exists());
    }
}
