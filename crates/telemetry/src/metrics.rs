//! The typed metrics registry: counters, gauges, and log2-bucket
//! histograms, aggregated per run and rendered into `report.json`.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed atomics:
//! get-or-create takes the registry lock once, after which increments are
//! lock-free and safe from any thread. Dotted metric names form the
//! namespace (`pool/retries`, `train/steps_per_s`, `cell/<label>/wall_ms`);
//! per-cell histograms roll up into the sweep-level report by name.
//!
//! Like tracing, metrics only read clocks and atomics; they never touch RNG
//! streams or recorded metric rows, so the bitwise-determinism contract is
//! unaffected by whether anything increments them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Monotone event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins float gauge (throughputs, rates, current sizes).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v` (f64 bits in an atomic u64).
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistInner {
    /// Bucket `0` counts values in `[0, 1)`; bucket `b >= 1` counts
    /// `[2^(b-1), 2^b)`.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// f64 bits, CAS-accumulated.
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Lock-free log2-bucket histogram over non-negative f64 samples
/// (latencies in ms, steps/s, GFLOP/s).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }
}

fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < 1.0 {
        // Negatives, NaN, and [0, 1) all land in bucket 0.
        return 0;
    }
    ((v as u64).max(1).ilog2() as usize + 1).min(BUCKETS - 1)
}

/// Inclusive lower bound of bucket `b` (see [`Histogram`]).
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        let inner = &self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            cas_f64(&inner.sum, |cur| cur + v);
            cas_f64(&inner.min, |cur| cur.min(v));
            cas_f64(&inner.max, |cur| cur.max(v));
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// An immutable snapshot for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let count = inner.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(inner.sum.load(Ordering::Relaxed));
        let min = f64::from_bits(inner.min.load(Ordering::Relaxed));
        let max = f64::from_bits(inner.max.load(Ordering::Relaxed));
        let buckets = (0..BUCKETS)
            .filter_map(|b| {
                let n = inner.buckets[b].load(Ordering::Relaxed);
                (n > 0).then_some(HistogramBucket {
                    lo: bucket_lo(b),
                    count: n,
                })
            })
            .collect();
        HistogramSnapshot {
            count,
            sum,
            mean: if count > 0 { sum / count as f64 } else { 0.0 },
            min: if min.is_finite() { Some(min) } else { None },
            max: if max.is_finite() { Some(max) } else { None },
            buckets,
        }
    }
}

fn cas_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// One populated histogram bucket: `count` samples in
/// `[lo, next bucket's lo)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket.
    pub lo: u64,
    /// Samples in the bucket.
    pub count: u64,
}

/// Serializable histogram summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of finite samples.
    pub sum: f64,
    /// Mean of finite samples (0 when empty).
    pub mean: f64,
    /// Smallest finite sample.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub min: Option<f64>,
    /// Largest finite sample.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max: Option<f64>,
    /// Populated log2 buckets, ascending.
    pub buckets: Vec<HistogramBucket>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The per-run metric registry. Cloning shares the underlying maps.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// A serializable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.inner.counters.lock().is_empty()
            && self.inner.gauges.lock().is_empty()
            && self.inner.histograms.lock().is_empty()
    }
}

/// Point-in-time registry contents; the `metrics` section of `report.json`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_read_back() {
        let reg = MetricsRegistry::new();
        reg.counter("pool/retries").inc();
        reg.counter("pool/retries").add(2);
        reg.gauge("train/steps_per_s").set(1234.5);
        assert_eq!(reg.counter("pool/retries").get(), 3);
        assert_eq!(reg.gauge("train/steps_per_s").get(), 1234.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["pool/retries"], 3);
        assert_eq!(snap.gauges["train/steps_per_s"], 1234.5);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        for v in [0.0, 0.5, 1.0, 1.9, 2.0, 3.0, 1000.0] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.min, Some(0.0));
        assert_eq!(snap.max, Some(1000.0));
        let by_lo: BTreeMap<u64, u64> = snap.buckets.iter().map(|b| (b.lo, b.count)).collect();
        assert_eq!(by_lo[&0], 2, "[0,1)");
        assert_eq!(by_lo[&1], 2, "[1,2)");
        assert_eq!(by_lo[&2], 2, "[2,4)");
        assert_eq!(by_lo[&512], 1, "[512,1024)");
        assert!((snap.mean - (0.5 + 1.0 + 1.9 + 2.0 + 3.0 + 1000.0) / 7.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_tolerates_pathological_samples() {
        let h = Histogram::default();
        h.record(f64::NAN);
        h.record(-5.0);
        h.record(f64::INFINITY);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.min, Some(-5.0));
        assert_eq!(snap.sum, -5.0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let reg = MetricsRegistry::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("hits");
                    let h = reg.histogram("lat");
                    for i in 0..1000 {
                        c.inc();
                        h.record(i as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("hits").get(), 8000);
        assert_eq!(reg.histogram("lat").count(), 8000);
        let total: u64 = reg
            .histogram("lat")
            .snapshot()
            .buckets
            .iter()
            .map(|b| b.count)
            .sum();
        assert_eq!(total, 8000);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a").inc();
        reg.histogram("b").record(7.0);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
