//! # imap-telemetry
//!
//! Structured run telemetry for the IMAP reproduction: every trainer in the
//! workspace records typed per-iteration metric rows and accumulates
//! per-phase wall time through the same small surface, so any training run
//! can be re-plotted, diffed, and profiled from its artifacts alone.
//!
//! Three pieces:
//!
//! - [`Recorder`] sinks ([`NullRecorder`], [`MemoryRecorder`],
//!   [`JsonlRecorder`]) consuming [`MetricRow`]s — scalars + counters +
//!   tags, stamped with run id / phase / iteration;
//! - RAII span timers ([`Telemetry::span`], the [`span!`] macro) that
//!   accumulate wall time per named phase and render an end-of-run
//!   [`TimingReport`] — the profile of the rollout/update/intrinsic-bonus
//!   hot paths;
//! - a [`RunManifest`] (config, seed, env, variant, start time) written
//!   beside the metrics so every `metrics.jsonl` is self-describing.
//!
//! The [`Telemetry`] handle bundles all three and defaults to disabled
//! (null sink, no clock reads), so instrumentation costs nothing unless a
//! run opts in — e.g. via the CLI's `--telemetry <dir>` flag.
//!
//! ```
//! use imap_telemetry::Telemetry;
//!
//! let (tel, mem) = Telemetry::memory("demo");
//! {
//!     let _timer = tel.span("collect_rollout");
//!     tel.record("train", 0, &[("mean_return", 17.5)]);
//! }
//! assert_eq!(mem.rows().len(), 1);
//! assert_eq!(tel.timing_report().spans[0].name, "collect_rollout");
//! ```

pub mod handle;
pub mod manifest;
pub mod recorder;
pub mod row;
pub mod span;

pub use handle::{Span, Telemetry};
pub use manifest::RunManifest;
pub use recorder::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder};
pub use row::MetricRow;
pub use span::{SpanStat, TimingReport};
