//! # imap-telemetry
//!
//! Structured run telemetry for the IMAP reproduction: every trainer in the
//! workspace records typed per-iteration metric rows, accumulates per-phase
//! wall time, counts events in a typed registry, and (opt-in) traces a
//! hierarchical span tree through the same small surface — so any training
//! run or sweep can be re-plotted, diffed, profiled, and postmortemed from
//! its artifacts alone.
//!
//! Five pieces:
//!
//! - [`Recorder`] sinks ([`NullRecorder`], [`MemoryRecorder`],
//!   [`JsonlRecorder`]) consuming [`MetricRow`]s — scalars + counters +
//!   tags, stamped with run id / phase / iteration; an I/O failure poisons
//!   the sink once and is surfaced in the run manifest rather than
//!   silently swallowed;
//! - RAII span timers ([`Telemetry::span`], the [`span!`] macro) that
//!   accumulate wall time per named phase; the breakdown lands as
//!   structured `timing`-phase rows plus a one-line summary at finish;
//! - a [`MetricsRegistry`] of typed [`Counter`]s / [`Gauge`]s /
//!   log2-bucket [`Histogram`]s (lock-free after creation), snapshotted
//!   into `report.json`;
//! - an opt-in hierarchical [`Tracer`] (`--trace`) recording parent-linked
//!   spans into lock-free per-thread buffers, exported as `spans.jsonl`
//!   and Chrome-`trace_event` `trace.json` (open in Perfetto /
//!   `chrome://tracing`);
//! - a [`RunManifest`] (config, seed, env, variant, start time, sink
//!   health) written beside the metrics so every `metrics.jsonl` is
//!   self-describing.
//!
//! The [`Telemetry`] handle bundles all of it and defaults to disabled
//! (null sink, no clock reads), so instrumentation costs nothing unless a
//! run opts in — e.g. via the CLI's `--telemetry <dir>` flag. Tracing and
//! metrics only read clocks and atomics; they never touch RNG streams, so
//! the bitwise-determinism contract (`DESIGN.md` §12) holds with tracing
//! on or off.
//!
//! ```
//! use imap_telemetry::Telemetry;
//!
//! let (tel, mem) = Telemetry::memory("demo");
//! {
//!     let _timer = tel.span("collect_rollout");
//!     tel.record("train", 0, &[("mean_return", 17.5)]);
//!     tel.metrics().counter("train/iterations").inc();
//! }
//! assert_eq!(mem.rows().len(), 1);
//! assert_eq!(tel.timing_report().spans[0].name, "collect_rollout");
//! ```

pub mod handle;
pub mod manifest;
pub mod metrics;
pub mod recorder;
pub mod row;
pub mod span;
pub mod trace;

pub use handle::{Span, Telemetry};
pub use manifest::RunManifest;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramBucket, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use recorder::{JsonlRecorder, MemoryRecorder, NullRecorder, Recorder};
pub use row::MetricRow;
pub use span::{SpanStat, TimingReport};
pub use trace::{chrome_trace_json, spans_jsonl, validate, SpanRecord, TraceGuard, Tracer};
