//! Hierarchical span tracing (the `imap-trace` subsystem).
//!
//! Every interesting unit of work — a sweep, a cell, a retry attempt, a
//! train iteration, a sampler actor, a kernel stage — opens a [`TraceGuard`]
//! on the run's [`Tracer`]. Completed spans carry a stable id, their
//! parent's id, the recording thread, and monotonic timestamps relative to
//! the tracer's epoch, so the drained set reconstructs the full causal tree
//! of a run and exports to Chrome `trace_event` JSON (`trace.json`, opens
//! in `chrome://tracing` / Perfetto) as well as a spans JSONL file.
//!
//! Concurrency contract: the hot path is lock-free. Each thread pushes
//! finished spans into its own `crossbeam` [`SegQueue`]; the only mutex
//! (the per-thread buffer registry) is taken once per thread lifetime at
//! registration and once at [`Tracer::drain`]. Tracing reads clocks and
//! atomics but never influences RNG streams, scheduling decisions, or
//! recorded metric rows — the bitwise-determinism contract (DESIGN.md §12)
//! is unaffected by tracing on/off.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One completed span. `parent == 0` marks a root span (or a span whose
/// parent lives on another thread that never set a thread parent).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Stable id, unique within the tracer, assigned at span open (> 0).
    pub id: u64,
    /// Id of the enclosing span at open time (0 = none).
    pub parent: u64,
    /// Span name (the taxonomy of DESIGN.md §12: `sweep`, `cell`, …).
    pub name: String,
    /// Tracer-local index of the recording thread.
    pub thread: u64,
    /// Nanoseconds from the tracer's epoch to span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanRecord {
    /// Span end, nanoseconds from the tracer's epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

struct ThreadBuf {
    thread: u64,
    queue: SegQueue<SpanRecord>,
}

/// The per-run span collector. Cheap to share (`Arc`); one per traced
/// [`crate::Telemetry`] handle.
pub struct Tracer {
    /// Distinguishes tracers in the thread-local slot table (tests and
    /// nested sweeps can have several alive at once on one thread).
    tracer_id: u64,
    epoch: Instant,
    next_span: AtomicU64,
    next_thread: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

struct ThreadSlot {
    tracer_id: u64,
    buf: Arc<ThreadBuf>,
    /// Open-span stack of this thread (innermost last).
    stack: Vec<u64>,
    /// Parent adopted by this thread's root spans (cross-thread parentage:
    /// a worker inherits the supervisor's span id via
    /// [`Tracer::set_thread_parent`]).
    root: u64,
}

thread_local! {
    static THREAD_SLOTS: RefCell<Vec<ThreadSlot>> = const { RefCell::new(Vec::new()) };
}

impl Tracer {
    /// A fresh tracer; its epoch is the creation instant.
    pub fn new() -> Arc<Tracer> {
        Arc::new(Tracer {
            tracer_id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            next_thread: AtomicU64::new(0),
            threads: Mutex::new(Vec::new()),
        })
    }

    /// Runs `f` with this thread's slot for the tracer, registering the
    /// thread (and its lock-free buffer) on first use.
    fn with_slot<R>(self: &Arc<Self>, f: impl FnOnce(&mut ThreadSlot) -> R) -> R {
        THREAD_SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            // Lazy pruning: a slot whose buffer is only referenced from
            // here belongs to a dropped tracer.
            if slots.len() > 8 {
                slots.retain(|s| Arc::strong_count(&s.buf) > 1 || !s.stack.is_empty());
            }
            let pos = match slots.iter().position(|s| s.tracer_id == self.tracer_id) {
                Some(pos) => pos,
                None => {
                    let buf = Arc::new(ThreadBuf {
                        thread: self.next_thread.fetch_add(1, Ordering::Relaxed),
                        queue: SegQueue::new(),
                    });
                    self.threads.lock().push(Arc::clone(&buf));
                    slots.push(ThreadSlot {
                        tracer_id: self.tracer_id,
                        buf,
                        stack: Vec::new(),
                        root: 0,
                    });
                    slots.len() - 1
                }
            };
            f(&mut slots[pos])
        })
    }

    /// Opens a span named `name` under the current thread's innermost open
    /// span (or the thread parent set by [`Tracer::set_thread_parent`]).
    pub fn start(self: &Arc<Self>, name: impl Into<String>) -> TraceGuard {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = self.with_slot(|slot| {
            let parent = slot.stack.last().copied().unwrap_or(slot.root);
            slot.stack.push(id);
            parent
        });
        TraceGuard {
            tracer: Arc::clone(self),
            id,
            parent,
            name: name.into(),
            start: Instant::now(),
        }
    }

    /// The innermost open span id on this thread (0 when none). Capture it
    /// before spawning a worker and hand it to the worker's
    /// [`Tracer::set_thread_parent`] to stitch cross-thread parentage.
    pub fn current(self: &Arc<Self>) -> u64 {
        self.with_slot(|slot| slot.stack.last().copied().unwrap_or(slot.root))
    }

    /// Adopts `parent` as this thread's root parent: spans opened on this
    /// thread with an empty stack nest under it.
    pub fn set_thread_parent(self: &Arc<Self>, parent: u64) {
        self.with_slot(|slot| slot.root = parent);
    }

    fn record(self: &Arc<Self>, guard: &mut TraceGuard) {
        let start_ns = guard.start.duration_since(self.epoch).as_nanos() as u64;
        let dur_ns = guard.start.elapsed().as_nanos() as u64;
        self.with_slot(|slot| {
            // Guards drop in LIFO order on one thread, so the top of the
            // stack is this span; tolerate misuse by searching.
            match slot.stack.last() {
                Some(&top) if top == guard.id => {
                    slot.stack.pop();
                }
                _ => slot.stack.retain(|&id| id != guard.id),
            }
            slot.buf.queue.push(SpanRecord {
                id: guard.id,
                parent: guard.parent,
                name: std::mem::take(&mut guard.name),
                thread: slot.buf.thread,
                start_ns,
                dur_ns,
            });
        });
    }

    /// Drains every thread's buffer and returns the completed spans sorted
    /// by `(start_ns, id)`. Spans still open are not included; call after
    /// all guards have dropped (end of run).
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut spans = Vec::new();
        for buf in self.threads.lock().iter() {
            while let Some(span) = buf.queue.pop() {
                spans.push(span);
            }
        }
        spans.sort_by_key(|s| (s.start_ns, s.id));
        spans
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("tracer_id", &self.tracer_id)
            .finish()
    }
}

/// RAII guard for one open span; records the span on drop.
pub struct TraceGuard {
    tracer: Arc<Tracer>,
    id: u64,
    parent: u64,
    name: String,
    start: Instant,
}

impl TraceGuard {
    /// The span's id, for cross-thread parentage.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let tracer = Arc::clone(&self.tracer);
        tracer.record(self);
    }
}

/// Renders spans as a Chrome `trace_event` JSON document — complete `"X"`
/// (duration) events, microsecond timestamps — loadable in
/// `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let events: Vec<serde_json::Value> = spans
        .iter()
        .map(|s| {
            serde_json::json!({
                "name": s.name,
                "cat": "span",
                "ph": "X",
                "ts": s.start_ns as f64 / 1e3,
                "dur": s.dur_ns as f64 / 1e3,
                "pid": 1,
                "tid": s.thread,
                "args": {"id": s.id, "parent": s.parent},
            })
        })
        .collect();
    let doc = serde_json::json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    });
    // In-memory JSON of plain floats/strings cannot fail to serialize.
    serde_json::to_string(&doc).unwrap_or_else(|_| "{\"traceEvents\":[]}".into())
}

/// Renders spans as JSONL, one [`SpanRecord`] per line.
pub fn spans_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        if let Ok(line) = serde_json::to_string(s) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Checks well-formedness of a drained span set: ids unique, every
/// non-zero parent exists, and children's intervals nest inside their
/// parent's. Returns the first violation.
pub fn validate(spans: &[SpanRecord]) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut by_id: BTreeMap<u64, &SpanRecord> = BTreeMap::new();
    for s in spans {
        if s.id == 0 {
            return Err(format!("span {:?} has the reserved id 0", s.name));
        }
        if by_id.insert(s.id, s).is_some() {
            return Err(format!("duplicate span id {}", s.id));
        }
    }
    for s in spans {
        if s.parent == 0 {
            continue;
        }
        let Some(p) = by_id.get(&s.parent) else {
            return Err(format!(
                "span {} ({:?}) references missing parent {}",
                s.id, s.name, s.parent
            ));
        };
        if s.start_ns < p.start_ns || s.end_ns() > p.end_ns() {
            return Err(format!(
                "span {} ({:?}) [{}, {}] does not nest inside parent {} ({:?}) [{}, {}]",
                s.id,
                s.name,
                s.start_ns,
                s.end_ns(),
                p.id,
                p.name,
                p.start_ns,
                p.end_ns()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_one_thread() {
        let tracer = Tracer::new();
        {
            let outer = tracer.start("outer");
            assert_eq!(tracer.current(), outer.id());
            let _inner = tracer.start("inner");
        }
        let spans = tracer.drain();
        assert_eq!(spans.len(), 2);
        validate(&spans).unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        assert_eq!(tracer.current(), 0, "stack empty after guards drop");
    }

    #[test]
    fn cross_thread_parentage_via_thread_parent() {
        let tracer = Tracer::new();
        let root = tracer.start("root");
        let parent_id = root.id();
        let t = {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                tracer.set_thread_parent(parent_id);
                let _child = tracer.start("worker");
            })
        };
        t.join().unwrap();
        drop(root);
        let spans = tracer.drain();
        validate(&spans).unwrap();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, parent_id);
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_ne!(worker.thread, root.thread);
    }

    #[test]
    fn drain_is_sorted_and_repeatable() {
        let tracer = Tracer::new();
        for i in 0..5 {
            let _s = tracer.start(format!("s{i}"));
        }
        let spans = tracer.drain();
        assert_eq!(spans.len(), 5);
        assert!(spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert!(tracer.drain().is_empty(), "drain consumes the buffers");
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_event_per_span() {
        let tracer = Tracer::new();
        {
            let _a = tracer.start("alpha");
            let _b = tracer.start("beta \"quoted\"");
        }
        let spans = tracer.drain();
        let doc: serde_json::Value = serde_json::from_str(&chrome_trace_json(&spans)).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e["ph"], "X");
            assert!(e["ts"].as_f64().is_some());
            assert!(e["dur"].as_f64().is_some());
        }
    }

    #[test]
    fn spans_jsonl_roundtrips() {
        let tracer = Tracer::new();
        {
            let _a = tracer.start("one");
        }
        let spans = tracer.drain();
        let text = spans_jsonl(&spans);
        let back: Vec<SpanRecord> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back, spans);
    }

    #[test]
    fn validate_rejects_missing_parent_and_bad_nesting() {
        let ok = SpanRecord {
            id: 1,
            parent: 0,
            name: "p".into(),
            thread: 0,
            start_ns: 0,
            dur_ns: 100,
        };
        let orphan = SpanRecord {
            id: 2,
            parent: 99,
            name: "orphan".into(),
            thread: 0,
            start_ns: 10,
            dur_ns: 1,
        };
        assert!(validate(&[ok.clone(), orphan]).is_err());
        let escapee = SpanRecord {
            id: 3,
            parent: 1,
            name: "escapee".into(),
            thread: 0,
            start_ns: 50,
            dur_ns: 100,
        };
        assert!(validate(&[ok.clone(), escapee]).is_err());
        let nested = SpanRecord {
            id: 4,
            parent: 1,
            name: "nested".into(),
            thread: 0,
            start_ns: 10,
            dur_ns: 20,
        };
        validate(&[ok, nested]).unwrap();
    }

    /// The satellite concurrency hammer: N threads each record M nested
    /// spans under a shared root; the drained tree must be well-formed.
    #[test]
    fn hammered_buffers_drain_to_a_well_formed_tree() {
        let tracer = Tracer::new();
        let root = tracer.start("root");
        let root_id = root.id();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let tracer = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    tracer.set_thread_parent(root_id);
                    for i in 0..50 {
                        let _outer = tracer.start(format!("t{t}-outer{i}"));
                        let _inner = tracer.start(format!("t{t}-inner{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(root);
        let spans = tracer.drain();
        assert_eq!(spans.len(), 1 + 8 * 50 * 2);
        validate(&spans).unwrap();
        // Every thread's spans root under the supervisor span.
        let outers = spans
            .iter()
            .filter(|s| s.name.contains("-outer"))
            .collect::<Vec<_>>();
        assert!(outers.iter().all(|s| s.parent == root_id));
    }
}
