#!/usr/bin/env bash
# Mirrors /root/repo into /tmp/shadow/repo and rewrites the external
# crates-io dependencies to the offline stub crates in shadow/stubs/, so the
# workspace builds with no network and no registry cache.
#
# Usage:  bash shadow/sync-shadow.sh
# Then:   cd /tmp/shadow/repo && CARGO_NET_OFFLINE=true cargo test -q
#
# See shadow/README.md for why this exists and what the stubs do/don't model.
set -euo pipefail

SRC="${SHADOW_SRC:-/root/repo}"
DST="${SHADOW_DST:-/tmp/shadow/repo}"

mkdir -p "$DST"

# Mirror the repo, excluding VCS state and build output. --delete keeps the
# shadow exact (stale files would otherwise survive renames).
if command -v rsync >/dev/null 2>&1; then
  rsync -a --delete \
    --exclude=.git \
    --exclude=target \
    --exclude=Cargo.lock \
    "$SRC"/ "$DST"/
else
  # Fallback without rsync: wipe (except target/ to keep incremental builds)
  # and re-copy.
  find "$DST" -mindepth 1 -maxdepth 1 ! -name target -exec rm -rf {} +
  (cd "$SRC" && tar cf - --exclude=.git --exclude=target --exclude=Cargo.lock .) |
    (cd "$DST" && tar xf -)
fi

# Point the workspace's external dependencies at the stub crates. Only the
# shadow copy is rewritten; the real repo keeps crates-io versions.
python3 - "$DST/Cargo.toml" <<'EOF'
import re
import sys

path = sys.argv[1]
text = open(path).read()

stubs = {
    "rand": '{ path = "shadow/stubs/rand" }',
    "serde": '{ path = "shadow/stubs/serde", features = ["derive"] }',
    "serde_json": '{ path = "shadow/stubs/serde_json" }',
    "proptest": '{ path = "shadow/stubs/proptest" }',
    "criterion": '{ path = "shadow/stubs/criterion" }',
    "parking_lot": '{ path = "shadow/stubs/parking_lot" }',
    "crossbeam": '{ path = "shadow/stubs/crossbeam" }',
}

for name, spec in stubs.items():
    pattern = re.compile(rf'^{name} = .*$', re.M)
    text, n = pattern.subn(f"{name} = {spec}", text)
    if n != 1:
        sys.exit(f"sync-shadow: expected exactly one `{name} = ...` line in "
                 f"{path}, found {n} — update shadow/sync-shadow.sh")

open(path, "w").write(text)
EOF

# The stub directories carry `[workspace]` markers so cargo treats them as
# roots; members = ["crates/*"] never globs them, so no exclusion needed.
# Fail loudly if any crates-io version string survived the rewrite.
if grep -nE '^(rand|serde|serde_json|proptest|criterion|parking_lot|crossbeam) = "' "$DST/Cargo.toml"; then
  echo "sync-shadow: crates-io dependency survived the rewrite (see above)" >&2
  exit 1
fi

echo "shadow synced: $DST (build with: cd $DST && CARGO_NET_OFFLINE=true cargo test -q)"
