//! Offline stand-in for `serde_json` (shadow builds). Thin facade over the
//! tree-based `serde` stub: [`Value`] plus the string/byte entry points the
//! workspace uses (`to_string`, `to_string_pretty`, `to_vec`,
//! `to_vec_pretty`, `from_str`, `from_slice`) and the `json!` macro.
//!
//! Output matches real `serde_json` conventions where the workspace's
//! artifacts depend on them: compact separators `,`/`:`, two-space pretty
//! indentation, floats always printed with a fraction or exponent.

pub use serde::value::parse as __parse;
pub use serde::{Error, Number, Value};
pub use serde_derive::json;

use serde::{Deserialize, Serialize};

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// `json!`-internal: by-reference conversion used by interpolated
/// expressions so the macro works for both owned and borrowed operands.
pub fn __to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().render_compact())
}

/// Two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().render_pretty())
}

/// Compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Two-space-indented JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    T::from_value(&__parse(text)?)
}

/// Parses JSON bytes into any deserializable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrips_through_text() {
        let v: Value = from_str(r#"{"a":[1,2.5],"b":null}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[1,2.5],"b":null}"#);
    }

    #[test]
    fn json_macro_builds_nested_trees() {
        let run = "r1";
        let n = 3u64;
        let v = json!({
            "run_id": run,
            "count": n,
            "items": [1, 2, 3],
            "nested": {"ok": true, "none": null},
        });
        assert_eq!(v["run_id"], "r1");
        assert_eq!(v["count"], 3u64);
        assert_eq!(v["items"][2], 3u64);
        assert_eq!(v["nested"]["ok"], true);
        assert!(v["nested"]["none"].is_null());
    }
}
