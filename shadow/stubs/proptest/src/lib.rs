//! Offline stand-in for `proptest` (shadow builds). The `proptest!` macro
//! swallows its body — property tests become no-ops in the shadow (a known,
//! documented gap; see shadow/README.md). What DOES typecheck is everything
//! outside the macro: strategy-returning helper functions, so their
//! signatures (`impl Strategy<Value = T>`) and combinator chains compile.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A value generator. Only the associated type and `prop_map` are modelled;
/// no shrinking or actual generation happens in the shadow.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Maps generated values through `f` (type-level only here).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, _f: F) -> MapStrategy<U>
    where
        Self: Sized,
    {
        MapStrategy(PhantomData)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct MapStrategy<U>(PhantomData<U>);

impl<U> Strategy for MapStrategy<U> {
    type Value = U;
}

impl<T> Strategy for Range<T> {
    type Value = T;
}

impl<T> Strategy for RangeInclusive<T> {
    type Value = T;
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
        }
    )*};
}

impl_tuple_strategy!(
    (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
    (A, B, C, D, E, F, G) (A, B, C, D, E, F, G, H) (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
);

/// String-literal regex strategies (`"[a-z]{0,8}"` in the real crate)
/// generate `String`s; the shadow only models the type.
impl Strategy for &str {
    type Value = String;
}

/// Strategy for any value of `T` (`any::<u64>()` etc.).
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Strategy for AnyStrategy<T> {
    type Value = T;
}

/// Mirrors `proptest::prelude::any`.
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Constant strategy (`Just(x)`).
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
}

/// Runner configuration; only `with_cases` is modelled.
#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    /// Requested number of cases (unused in the shadow).
    pub cases: u32,
}

impl ProptestConfig {
    /// Mirrors `ProptestConfig::with_cases`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// Strategy producing `Vec<T>`.
    pub struct VecStrategy<T>(PhantomData<T>);

    impl<T> Strategy for VecStrategy<T> {
        type Value = Vec<T>;
    }

    /// Mirrors `proptest::collection::vec`; the size argument accepts a
    /// `usize` or a range, as in the real crate.
    pub fn vec<S: Strategy, Sz>(_elem: S, _size: Sz) -> VecStrategy<S::Value> {
        VecStrategy(PhantomData)
    }
}

pub mod option {
    //! Optional-value strategies.

    use super::*;

    /// Strategy producing `Option<T>`.
    pub struct OptionStrategy<T>(PhantomData<T>);

    impl<T> Strategy for OptionStrategy<T> {
        type Value = Option<T>;
    }

    /// Mirrors `proptest::option::of`.
    pub fn of<S: Strategy>(_strategy: S) -> OptionStrategy<S::Value> {
        OptionStrategy(PhantomData)
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::*;

    /// Strategy picking one element of a vector.
    pub struct Select<T>(PhantomData<T>);

    impl<T> Strategy for Select<T> {
        type Value = T;
    }

    /// Mirrors `proptest::sample::select` for `Vec<T>`.
    pub fn select<T: Clone>(_options: Vec<T>) -> Select<T> {
        Select(PhantomData)
    }
}

/// Swallows the property-test body: the enclosed tests do not run in the
/// shadow build (documented gap — real-dependency builds run them in CI).
#[macro_export]
macro_rules! proptest {
    ($($body:tt)*) => {};
}

/// No-op in the shadow (only ever expanded inside `proptest!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {};
}

/// No-op in the shadow (only ever expanded inside `proptest!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {};
}

/// No-op in the shadow (only ever expanded inside `proptest!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => {};
}

pub mod prelude {
    //! Mirrors `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Mirrors the real prelude's `prop` crate alias (`prop::collection::vec`
    /// and friends).
    pub use crate as prop;
}
