//! Offline stand-in for the `rand` crate used by shadow builds
//! (`shadow/sync-shadow.sh`). API-compatible with the subset the workspace
//! uses; the numeric streams are pinned by the golden-trace fixture
//! (`tests/fixtures/golden_hopper.jsonl`) whose `rng_fingerprint` line
//! hashes draws through this exact surface — do not change any mapping
//! here without regenerating the fixture.
//!
//! - [`rngs::StdRng`] is SplitMix64 with `seed_from_u64` storing the seed
//!   directly as state (the same stream as `imap_env::EnvRng`).
//! - `gen_range` over float ranges maps a `u64` draw to `[0, 1)` through
//!   the top 53 bits: `(u >> 11) as f64 * 2^-53`.
//! - `gen_range` over integer ranges reduces one `u64` draw modulo the
//!   span.
//! - [`seq::SliceRandom::shuffle`] is a downward Fisher–Yates
//!   (`swap(i, gen_range(0..=i))` for `i = len-1 .. 1`).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: one required method, like the workspace uses.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (top half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` from successive 64-bit draws (little-endian).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a raw draw to `[0, 1)` through the top 53 bits. Fixture-pinned.
#[inline]
fn u01(u: u64) -> f64 {
    (u >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `usize` in `[0, span)` by modulo reduction. Fixture-pinned.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    rng.next_u64() % span
}

/// A type samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one sample.
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u01(rng.next_u64())
    }
}

impl Standard for u64 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * u01(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty range");
        lo + (hi - lo) * u01(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * u01(rng.next_u64()) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Standard-distribution draw (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        u01(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 with the seed stored directly as state — the same stream
    /// as `imap_env::EnvRng`, so seeded expectations across the workspace
    /// agree (and the golden fixture stays valid).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, SampleRange};

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle (downward, fixture-pinned).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// One uniformly chosen element, `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn stdrng_is_splitmix64() {
        let mut r = StdRng::seed_from_u64(0);
        // SplitMix64 reference values for state 0.
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(0..10usize);
            assert!(i < 10);
            let j = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&j));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
