//! Offline stand-in for `parking_lot` (shadow builds): `Mutex`/`RwLock`
//! over `std::sync` with parking_lot's panic-free, poison-ignoring API.

use std::fmt;

/// Guard type of [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard types of [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write-side guard of [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader–writer lock whose accessors never return poison errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }
}
