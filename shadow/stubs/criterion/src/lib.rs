//! Offline stand-in for `criterion` (shadow builds). Each benchmark body
//! runs exactly once (a smoke test, not a measurement) so `cargo test` /
//! `cargo bench` compile and exercise the bench code paths without the real
//! statistics machinery.

/// Benchmark driver; stub runs each registered function once.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs `f` once with a [`Bencher`].
    pub fn bench_function<S: AsRef<str>, F>(&mut self, _id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        f(&mut Bencher);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, _name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self }
    }
}

/// Group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` once with a [`Bencher`].
    pub fn bench_function<S: AsRef<str>, F>(&mut self, _id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        f(&mut Bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-benchmark timing handle; stub executes the routine once.
pub struct Bencher;

impl Bencher {
    /// Runs `routine` once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine();
    }

    /// Runs `setup` then `routine` once.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = routine(setup());
    }
}

/// Batch sizing hint (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

/// Opaque-to-the-optimizer value sink.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Mirrors `criterion_group!`: bundles bench functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion_main!`: emits `main` running each group once.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
