//! Offline stand-in for `crossbeam` (shadow builds): the `SegQueue` API
//! over a mutexed `VecDeque`. Correct under contention, merely slower than
//! the real lock-free queue — fine for shadow verification.

pub mod queue {
    //! Concurrent queues.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue (`push`/`pop` through `&self`).
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// An empty queue.
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        fn guard(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Appends `value` at the back.
        pub fn push(&self, value: T) {
            self.guard().push_back(value);
        }

        /// Removes the front element, `None` when empty.
        pub fn pop(&self) -> Option<T> {
            self.guard().pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.guard().len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.guard().is_empty()
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("SegQueue").field("len", &self.len()).finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::SegQueue;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }
    }
}
