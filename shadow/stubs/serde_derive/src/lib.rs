//! Offline stand-in for `serde_derive` (shadow builds). Hand-parses the
//! derive input token stream (no `syn`/`quote` — the container has no
//! registry access) and emits impls of the tree-based `Serialize` /
//! `Deserialize` traits from the sibling `serde` stub.
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields (no generics, no tuple/unit structs);
//! - enums with unit variants only (externally tagged as the variant name);
//! - field attributes `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]`.
//!
//! Anything else panics with a clear message at expansion time, so an
//! unsupported form is a loud compile error rather than silent corruption.
//!
//! Also provides the function-like `json!` macro (re-exported by the
//! `serde_json` stub): `null`, `[..]`, `{"key": value, ..}` literals plus
//! arbitrary Rust expressions routed through `serde_json::__to_value`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut body = String::from(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let push = format!(
                    "entries.push((::std::string::String::from(\"{name}\"), \
                     ::serde::Serialize::to_value(&self.{name})));",
                    name = f.name
                );
                match &f.skip_if {
                    Some(path) => body.push_str(&format!(
                        "if !({path}(&self.{field})) {{ {push} }}\n",
                        field = f.name
                    )),
                    None => {
                        body.push_str(&push);
                        body.push('\n');
                    }
                }
            }
            body.push_str("::serde::Value::Object(entries)");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from(\"{v}\")),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive stub: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let missing = if f.default {
                        "::core::default::Default::default()".to_string()
                    } else {
                        format!("::serde::__absent(\"{name}\", \"{field}\")?", field = f.name)
                    };
                    format!(
                        "{field}: match ::serde::__find(entries, \"{field}\") {{\n\
                         ::std::option::Option::Some(v) => \
                         ::serde::Deserialize::from_value(v)?,\n\
                         ::std::option::Option::None => {missing},\n}},\n",
                        field = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 let entries = v.expect_object(\"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                         ::std::result::Result::Ok({name}::{v}),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v.as_str() {{\n{arms}\
                 other => ::std::result::Result::Err(::serde::Error(::std::format!(\
                 \"{name}: unknown variant {{:?}}\", other))),\n}}\n}}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive stub: generated invalid Deserialize impl")
}

/// `json!` literal builder. Re-exported through the `serde_json` stub so
/// call sites use `serde_json::json!` exactly as with the real crate.
#[proc_macro]
pub fn json(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    json_expr(&tokens)
        .parse()
        .expect("serde_derive stub: generated invalid json! expansion")
}

fn json_expr(tokens: &[TokenTree]) -> String {
    match tokens {
        [] => "::serde::Value::Null".to_string(),
        [TokenTree::Ident(id)] if id.to_string() == "null" => "::serde::Value::Null".to_string(),
        [TokenTree::Group(g)] if g.delimiter() == Delimiter::Bracket => {
            let items: Vec<String> = split_commas(&g.stream().into_iter().collect::<Vec<_>>())
                .iter()
                .map(|item| json_expr(item))
                .collect();
            if items.is_empty() {
                "::serde::Value::Array(::std::vec::Vec::new())".to_string()
            } else {
                format!(
                    "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                    items.join(", ")
                )
            }
        }
        [TokenTree::Group(g)] if g.delimiter() == Delimiter::Brace => {
            let entries: Vec<String> = split_commas(&g.stream().into_iter().collect::<Vec<_>>())
                .iter()
                .map(|entry| {
                    let (key, value) = split_colon(entry);
                    let key_lit = match key {
                        [TokenTree::Literal(l)] => l.to_string(),
                        other => panic!(
                            "json! stub: object keys must be string literals, got `{}`",
                            render(other)
                        ),
                    };
                    format!(
                        "(::std::string::String::from({key_lit}), {})",
                        json_expr(value)
                    )
                })
                .collect();
            if entries.is_empty() {
                "::serde::Value::Object(::std::vec::Vec::new())".to_string()
            } else {
                format!(
                    "::serde::Value::Object(::std::vec::Vec::from([{}]))",
                    entries.join(", ")
                )
            }
        }
        expr => format!("::serde_json::__to_value(&({}))", render(expr)),
    }
}

/// Splits `tokens` on top-level commas (groups shield their contents);
/// ignores a trailing comma and drops empty segments.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for tt in tokens {
        if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        } else {
            cur.push(tt.clone());
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Splits an object entry at its first top-level `:` into (key, value).
fn split_colon(tokens: &[TokenTree]) -> (&[TokenTree], &[TokenTree]) {
    for (i, tt) in tokens.iter().enumerate() {
        if matches!(tt, TokenTree::Punct(p) if p.as_char() == ':') {
            return (&tokens[..i], &tokens[i + 1..]);
        }
    }
    panic!("json! stub: object entry without `:` — `{}`", render(tokens));
}

fn render(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .cloned()
        .collect::<TokenStream>()
        .to_string()
}

// ---------------------------------------------------------------------------
// Derive-input parsing
// ---------------------------------------------------------------------------

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

/// Field-level serde attributes accumulated while scanning `#[...]` runs.
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    skip_if: Option<String>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let kind = expect_ident(&tokens, &mut pos, "struct/enum keyword");
    let name = expect_ident(&tokens, &mut pos, "type name");
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }
    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("serde stub derive: `{name}` must have a brace-delimited body"),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = collect_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos, "field name");
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => panic!("serde stub derive: expected `:` after field `{name}`"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(pos) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            pos += 1;
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(Field {
            name,
            default: attrs.default,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let _ = collect_attrs(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos, "variant name");
        match tokens.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(other) => panic!(
                "serde stub derive: variant `{name}` carries data (`{other}`) — \
                 only unit variants are supported"
            ),
        }
        variants.push(name);
    }
    variants
}

/// Consumes a run of `#[...]` attributes, returning any serde field config.
fn collect_attrs(tokens: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        let group = match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g.stream(),
            _ => panic!("serde stub derive: `#` not followed by `[...]`"),
        };
        *pos += 1;
        let inner: Vec<TokenTree> = group.into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue; // doc comments, cfg, derive-helper noise
        }
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            _ => panic!("serde stub derive: malformed #[serde(...)] attribute"),
        };
        for arg in split_commas(&args.into_iter().collect::<Vec<_>>()) {
            match arg.as_slice() {
                [TokenTree::Ident(id)] if id.to_string() == "default" => attrs.default = true,
                [TokenTree::Ident(id), TokenTree::Punct(eq), TokenTree::Literal(path)]
                    if id.to_string() == "skip_serializing_if" && eq.as_char() == '=' =>
                {
                    let lit = path.to_string();
                    attrs.skip_if =
                        Some(lit.trim_matches('"').to_string());
                }
                other => panic!(
                    "serde stub derive: unsupported serde attribute `{}`",
                    render(other)
                ),
            }
        }
    }
    attrs
}

fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        // pub(crate) / pub(super): the restriction rides in a paren group.
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    let _ = collect_attrs(tokens, pos);
    skip_vis(tokens, pos);
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize, what: &str) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde stub derive: expected {what}, got {other:?}"),
    }
}
