//! Offline stand-in for `serde` (shadow builds). Unlike the real crate it
//! is tree-based, not streaming: [`Serialize`] renders into a JSON
//! [`Value`] and [`Deserialize`] reads back out of one. The derive macros
//! (re-exported from the sibling `serde_derive` stub) cover the attribute
//! subset this workspace uses: field-level `#[serde(default)]` and
//! `#[serde(skip_serializing_if = "path")]`, named-field structs, and
//! unit-variant enums (externally tagged as their name, like real serde).
//!
//! Struct fields serialize in declaration order; maps in iteration order —
//! both matching real `serde_json` output for the types in this workspace.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

pub mod value;
pub use value::{Number, Value};

/// Stand-in for real serde's `serde::de` module: generic code in the
/// workspace bounds deserializable payloads by `serde::de::DeserializeOwned`,
/// which for the tree-based stub is just an alias for [`Deserialize`].
pub mod de {
    /// Owned deserialization marker; blanket-implemented for every
    /// [`crate::Deserialize`] type (real serde: `for<'de> Deserialize<'de>`).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Serialization/deserialization error (message only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a tree.
    fn to_value(&self) -> Value;
}

/// Types readable back out of a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` from a tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// What a *missing* struct field deserializes to. Errors by default;
    /// `Option` overrides to `None` (matching real serde semantics).
    fn absent() -> Result<Self, Error> {
        Err(Error::msg("missing field"))
    }
}

/// Derive-internal: looks up `field` in an object's entry list.
pub fn __find<'a>(entries: &'a [(String, Value)], field: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == field).map(|(_, v)| v)
}

/// Derive-internal: deserializes a missing field, labelling the error.
pub fn __absent<T: Deserialize>(ty: &str, field: &str) -> Result<T, Error> {
    T::absent().map_err(|_| Error(format!("{ty}: missing field `{field}`")))
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::Number(Number::I(*self as i64))
                } else {
                    Value::Number(Number::U(*self as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| Error(format!("{u} out of range"))),
                    Value::Number(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("{i} out of range"))),
                    other => Err(Error(format!("expected integer, got {other}"))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(Error(format!("expected number, got {other}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Real serde borrows from the input with lifetime 'de; the
        // tree-based stub has no lifetimes, so intern by leaking. Only
        // registry metadata uses this, and only in test processes.
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(Into::into)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Result<Self, Error> {
        Ok(None)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {other}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output (real serde_json with a HashMap
        // is iteration-ordered; sorted is the stable choice).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {other}"))),
        }
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        // Matches real serde's {"secs": u64, "nanos": u32} encoding.
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                let secs = __find(entries, "secs")
                    .ok_or_else(|| Error::msg("Duration: missing `secs`"))?;
                let nanos = __find(entries, "nanos")
                    .ok_or_else(|| Error::msg("Duration: missing `nanos`"))?;
                Ok(Duration::new(
                    u64::from_value(secs)?,
                    u32::from_value(nanos)?,
                ))
            }
            other => Err(Error(format!("expected duration object, got {other}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => Ok(($($t::from_value(
                        items.get($n).ok_or_else(|| Error::msg("tuple too short"))?
                    )?,)+)),
                    other => Err(Error(format!("expected array, got {other}"))),
                }
            }
        }
    )*};
}

impl_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C));
