//! The JSON tree: [`Value`], its printers (compact + pretty), and parser.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed, or float — kept distinct so `u64`
/// counters and `f64` scalars round-trip byte-faithfully like real
/// `serde_json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Float.
    F(f64),
}

impl Number {
    /// The number as `f64` (lossy for big integers).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::U(u) => *u as f64,
            Number::I(i) => *i as f64,
            Number::F(f) => *f,
        }
    }
}

/// A parsed or built JSON document. Objects preserve insertion order (so
/// derived structs print their fields in declaration order, like real
/// `serde_json`).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered entry list.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::U(u)) => i64::try_from(*u).ok(),
            Value::Number(Number::I(i)) => Some(*i),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entry list, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => crate::__find(entries, key),
            _ => None,
        }
    }

    /// Derive/object helper: the entry list or a typed error.
    pub fn expect_object(&self, ty: &str) -> Result<&[(String, Value)], crate::Error> {
        match self {
            Value::Object(entries) => Ok(entries),
            other => Err(crate::Error(format!("{ty}: expected object, got {other}"))),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.extend(std::iter::repeat(' ').take(indent + STEP));
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.extend(std::iter::repeat(' ').take(indent));
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.extend(std::iter::repeat(' ').take(indent + STEP));
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.extend(std::iter::repeat(' ').take(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Compact rendering (what `serde_json::to_string` returns).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Two-space-indented rendering (`serde_json::to_string_pretty`).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Real serde_json always prints floats with a fractional
                // or exponent part; Rust's shortest Display drops ".0".
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => n.as_f64() == *other as f64,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_num!(u64, i64, u32, i32, usize, f64);

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Value, crate::Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(crate::Error(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), crate::Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(crate::Error(format!("expected `{lit}` at byte {pos}")))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, crate::Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(crate::Error::msg("unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(crate::Error(format!("bad array at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(crate::Error(format!("bad object at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, crate::Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(crate::Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(crate::Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| crate::Error::msg("bad \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| crate::Error::msg("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| crate::Error::msg("bad \\u escape"))?;
                        // Surrogate pairs are not expected in this
                        // workspace's artifacts; map lone surrogates to
                        // the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(crate::Error::msg("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Decode the next UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| crate::Error::msg("invalid UTF-8"))?;
                let c = rest.chars().next().unwrap_or('\u{fffd}');
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, crate::Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| crate::Error::msg("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(crate::Error(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(i) = stripped.parse::<u64>() {
                if i <= i64::MAX as u64 {
                    return Ok(Value::Number(Number::I(-(i as i64))));
                }
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U(u)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::F(f)))
        .map_err(|_| crate::Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let text = r#"{"a":1,"b":-2.5,"c":[true,null,"x\ny"],"d":{"k":18446744073709551615}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.render_compact(), text);
        assert_eq!(v["a"], 1u64);
        assert_eq!(v["b"], -2.5f64);
        assert_eq!(v["c"][2], "x\ny");
    }

    #[test]
    fn floats_always_carry_a_fraction() {
        let v = Value::Number(Number::F(5.0));
        assert_eq!(v.render_compact(), "5.0");
        let v = Value::Number(Number::F(0.1));
        assert_eq!(v.render_compact(), "0.1");
    }

    #[test]
    fn pretty_indents_by_two() {
        let v = parse(r#"{"a":[1],"b":{}}"#).unwrap();
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }
}
